PYTHON ?= python
PYTHONPATH := src

.PHONY: test chaos replication-chaos shard-chaos shard-replication-chaos serve demo bench bench-json bench-smoke bench-longrange throughput-budget throughput-budget-baseline trace-overhead metrics-smoke lint profile

# Where `make bench-json` writes its machine-readable metrics.
BENCH_OUT ?= BENCH_local.json
BENCH_SCALE ?= ci
BENCH_BASELINE ?= benchmarks/results/baseline_ci.json
BENCH_MAX_REGRESSION ?= 0.25

test: metrics-smoke replication-chaos
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Randomized fault-schedule runs; any failure replays deterministically
# with `python -m repro --chaos-seed N` using the seed pytest prints.
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/faults tests/replication -m chaos -q

# The Byzantine replicated-store corpus: ≥200 seeded runs over 3 and 5
# replicas with tamper/replay/drop/slow faults armed.  Any failure
# replays with `python -m repro --chaos-seed N --replicas 3`.
replication-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/replication/test_replication_chaos.py -q

# The sharded multi-enclave corpus: ≥200 seeded runs over 2/3/4-shard
# fleets with shard kills, slow shards, router crashes, and mid-stream
# two-phase rotation/ingest.  Any failure replays with
# `python -m repro --chaos-seed N --shards 2`.
shard-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/faults/test_chaos_sharded.py -q

# The composed corpus: sharded fleets where every shard fronts a
# three-replica group — Byzantine replica faults, shard kills, and
# mid-stream two-phase rotation at once.  Any failure replays with
# `python -m repro --chaos-seed N --shards 2 --replicas 3`.  The
# timeout is a hard ceiling so a wedged replica group fails the run
# instead of hanging it.
shard-replication-chaos:
	PYTHONPATH=$(PYTHONPATH) timeout 600 $(PYTHON) -m pytest tests/faults/test_chaos_composed.py -q

# The sharded fleet behind the JSON-lines TCP door (SIGTERM drains,
# checkpoints, and exits 0).
serve:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro --serve --shards 2

demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

# Deterministic downscaled benchmark → machine-readable JSON
# (p50/p95 latencies, storage reads/query, fake-tuple overhead, batch
# dedup).  Regenerate the committed CI baseline after an intentional
# volume change with: make bench-json BENCH_OUT=$(BENCH_BASELINE)
bench-json:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/report.py \
		--bench-json $(BENCH_OUT) --scale $(BENCH_SCALE)

# The CI gate: emit BENCH_pr.json and fail on >25% regression of any
# tracked (deterministic count) metric vs the committed baseline.
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/report.py \
		--bench-json BENCH_pr.json --scale $(BENCH_SCALE)
	$(PYTHON) benchmarks/check_regression.py \
		--baseline $(BENCH_BASELINE) --candidate BENCH_pr.json \
		--max-regression $(BENCH_MAX_REGRESSION)

# Exp 14: the hierarchical aggregate tree vs the bin path on a 30-day
# epoch — asserts ≥50× fewer rows/query and ≥10× wall-clock on the
# month-long window (DESIGN.md §17).
bench-longrange:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
		benchmarks/bench_exp14_longrange.py -q

# The per-stage throughput gate: decompose the query pipeline into
# fetch/verify/aggregate/decrypt via tracing spans on a packed and a
# scalar stack, and fail if any packed/scalar speedup ratio slides
# >25% below the committed budget (absolute rows/s stays
# informational — shared-runner speed is not a signal).  Regenerate
# after an intentional change with:
#   make throughput-budget-baseline
throughput-budget:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_stage_budget.py \
		--out STAGE_pr.json
	$(PYTHON) benchmarks/check_regression.py \
		--baseline benchmarks/results/stage_budget.json \
		--candidate STAGE_pr.json --max-regression 0.25

throughput-budget-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/bench_stage_budget.py \
		--budget --out benchmarks/results/stage_budget.json

# The tracing-cost gate: the same workload with the tracer off vs on,
# compared as a drift-cancelling paired ratio; >10% wall-time overhead
# fails.  Tracing is meant to stay on in production.
trace-overhead:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/trace_overhead.py \
		--baseline-out TRACE_off.json --candidate-out TRACE_on.json
	$(PYTHON) benchmarks/check_regression.py \
		--baseline TRACE_off.json --candidate TRACE_on.json \
		--max-regression 0.10

# cProfile the ingest + query hot paths; top-30 cumulative functions
# land in benchmarks/results/profile.txt (and on stdout).
profile:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/profile_ingest.py

# Tiny workload → Prometheus export → line-format validation.
metrics-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/telemetry/test_metrics_smoke.py -q

# Static checks (config in pyproject.toml).  The runtime toolchain does
# not require ruff, so skip politely where it is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff to enable)"; \
	fi
