PYTHON ?= python
PYTHONPATH := src

.PHONY: test chaos demo bench metrics-smoke

test: metrics-smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Randomized fault-schedule runs; any failure replays deterministically
# with `python -m repro --chaos-seed N` using the seed pytest prints.
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/faults -m chaos -q

demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

# Tiny workload → Prometheus export → line-format validation.
metrics-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/telemetry/test_metrics_smoke.py -q
