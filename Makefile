PYTHON ?= python
PYTHONPATH := src

.PHONY: test chaos replication-chaos demo bench metrics-smoke lint

test: metrics-smoke replication-chaos
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Randomized fault-schedule runs; any failure replays deterministically
# with `python -m repro --chaos-seed N` using the seed pytest prints.
chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/faults tests/replication -m chaos -q

# The Byzantine replicated-store corpus: ≥200 seeded runs over 3 and 5
# replicas with tamper/replay/drop/slow faults armed.  Any failure
# replays with `python -m repro --chaos-seed N --replicas 3`.
replication-chaos:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/replication/test_replication_chaos.py -q

demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

# Tiny workload → Prometheus export → line-format validation.
metrics-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest tests/telemetry/test_metrics_smoke.py -q

# Static checks (config in pyproject.toml).  The runtime toolchain does
# not require ruff, so skip politely where it is not installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff to enable)"; \
	fi
