"""Exception hierarchy for the Concealer reproduction.

Every error raised by the library derives from :class:`ConcealerError`
so callers can catch library failures with a single ``except`` clause.
The sub-classes mirror the subsystems: crypto, storage, enclave, and the
core query-processing pipeline.

Orthogonally to the subsystem axis, errors are classified by *retry
semantics* so recovery policy can be type-driven:

- :class:`TransientError` — the operation may succeed if repeated
  (possibly after recovery action, e.g. rebuilding a crashed enclave);
- :class:`PermanentError` — repeating the operation cannot help; the
  failure reflects tampering or a corrupted artifact that must be
  quarantined or restored from a known-good copy.

Both are mixins: concrete exceptions multiply inherit from their
subsystem class *and* a retry-semantics class, so existing
``except StorageError`` call sites keep working unchanged.
"""

from __future__ import annotations


class ConcealerError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TransientError(ConcealerError):
    """A fault that may clear on retry (after recovery, if needed)."""


class PermanentError(ConcealerError):
    """A fault retrying cannot fix (tampering, corrupted artifact)."""


class CryptoError(ConcealerError):
    """A cryptographic operation failed (bad key, malformed ciphertext)."""


class DecryptionError(CryptoError):
    """Ciphertext failed authentication or could not be decrypted."""


class KeyDerivationError(CryptoError):
    """Key material was missing or malformed during derivation."""


class StorageError(ConcealerError):
    """The storage engine rejected an operation."""


class TransientStorageError(StorageError, TransientError):
    """A storage read/write failed transiently; safe to retry.

    Raised *before* any state change, so a retried write never applies
    twice.  :class:`repro.faults.clock.RetryPolicy` targets this type.
    """


class DuplicateKeyError(StorageError):
    """An insert collided with an existing unique key."""


class ReplicationError(StorageError):
    """The replicated storage layer could not satisfy an operation."""


class ReplicaTimeout(ReplicationError, TransientError):
    """A single replica's read exceeded its per-attempt budget.

    Consumed by the failover loop in
    :class:`repro.replication.engine.ReplicatedStorageEngine`; only
    surfaces to callers when every replica is slow.
    """


class NoHealthyReplica(ReplicationError, TransientStorageError):
    """Every replica was skipped, failed, or timed out for a read.

    A :class:`TransientStorageError`: retrying after backoff lets open
    circuit breakers reach half-open and probe their replicas again.
    """


class RepairFenced(ReplicationError, TransientError):
    """Anti-entropy repair aborted because an epoch rewrite is in flight.

    A repair copying bins concurrently with a
    :class:`~repro.core.rotation.RotationJournal` rewrite could
    resurrect pre-rotation ciphertexts; the repairer re-checks the
    engine's rewrite generation before applying and backs off instead.
    """


class DeadlineExceeded(TransientError):
    """A query's deadline budget expired before the operation finished.

    Deliberately *not* a :class:`TransientStorageError`: retrying within
    the same request cannot help (the budget stays spent); the caller
    must re-issue the request with a fresh deadline.
    """


class ServiceOverloaded(TransientError):
    """The admission queue was full and the request was shed.

    Raised *before* any work happens, so a shed request observes
    nothing about the data and is safe to retry after backoff.
    """


class TableNotFoundError(StorageError):
    """A referenced table does not exist in the storage engine."""


class IndexNotFoundError(StorageError):
    """A referenced secondary index does not exist on the table."""


class EnclaveError(ConcealerError):
    """The enclave simulator rejected an operation."""


class EnclaveMemoryError(EnclaveError):
    """An in-enclave working set exceeded the simulated EPC budget."""


class AttestationError(EnclaveError):
    """Remote attestation of the enclave failed."""


class EnclaveCrashed(EnclaveError, TransientError):
    """The enclave was killed (AEX / power event) and lost sealed state.

    Transient in the operational sense: a fresh enclave can be
    re-attested and re-provisioned (see
    :class:`repro.faults.recovery.RecoveryCoordinator`), after which the
    failed operation can be repeated.
    """


class ShardError(ConcealerError):
    """The sharded service layer could not satisfy an operation."""


class ShardUnavailable(ShardError, TransientError):
    """The shard owning the touched cell-ids is isolated right now.

    Raised for point queries (and non-mergeable range aggregates) whose
    single owning shard is crashed, breaker-open, or past its deadline
    budget.  Transient: the router re-admits the shard after
    re-attestation + checkpoint restore, after which a re-issued
    request succeeds.  Carries ``shard_ids`` so callers (and the chaos
    oracle) know exactly which partitions were missing.
    """

    def __init__(self, message: str, shard_ids: tuple[int, ...] = ()):
        super().__init__(message)
        self.shard_ids = tuple(shard_ids)


class NoHealthyShard(ShardError, TransientError):
    """Every shard of the topology is isolated; nothing can be planned."""


class RouterFenced(ShardError, TransientError):
    """A cross-shard two-phase operation (epoch ingest, key rotation)
    holds the router fence; queries are rejected rather than risk a
    mixed-epoch or mixed-key answer.  Safe to retry once the fence
    lifts — no query work happened.
    """


class ShardMisrouted(ShardError):
    """A shard received a single-shard query for cell-ids it does not
    own — a router bug (or a tampered router); the shard fails loudly
    instead of answering from a partition that cannot hold the rows.
    """


class AuthenticationError(ConcealerError):
    """A user could not be authenticated against the registry."""


class AuthorizationError(ConcealerError):
    """An authenticated user requested data it is not entitled to."""


class IntegrityError(ConcealerError):
    """Hash-chain verification detected tampered, missing or injected rows."""


class IntegrityViolation(IntegrityError, PermanentError):
    """A structured integrity-verification failure report.

    Carries enough context for the service to quarantine the affected
    cell-id and for an operator to act on the report, instead of a bare
    exception string.  ``kind`` is one of ``"counter-gap"``,
    ``"missing-tag"``, ``"chain-mismatch"``, ``"missing-cell"``,
    ``"quarantined"``, or ``"undecryptable"``.
    """

    def __init__(
        self,
        message: str,
        *,
        epoch_id: int | None = None,
        cell_id: int | None = None,
        table: str | None = None,
        kind: str = "chain-mismatch",
    ):
        super().__init__(message)
        self.epoch_id = epoch_id
        self.cell_id = cell_id
        self.table = table
        self.kind = kind

    def report(self) -> dict:
        """A structured, serialisable view of the violation."""
        return {
            "message": str(self),
            "epoch_id": self.epoch_id,
            "cell_id": self.cell_id,
            "table": self.table,
            "kind": self.kind,
        }


class TelemetryError(ConcealerError):
    """The metrics registry rejected a registration or an update."""


class LeakageAuditError(ConcealerError):
    """A metric tagged public-size diverged between equal-public-size runs.

    Raised by :mod:`repro.telemetry.audit` when the volume-hiding
    contract encoded in the secrecy tags is violated — either a genuine
    volume leak, or a data-dependent metric mislabeled ``public-size``.
    """


class QueryError(ConcealerError):
    """A query was malformed or referenced values outside the data domain."""


class EpochError(ConcealerError):
    """An epoch package was malformed, duplicated, or out of order."""


class BinningError(ConcealerError):
    """Bin-packing could not satisfy its size or disjointness constraints."""
