"""Exception hierarchy for the Concealer reproduction.

Every error raised by the library derives from :class:`ConcealerError`
so callers can catch library failures with a single ``except`` clause.
The sub-classes mirror the subsystems: crypto, storage, enclave, and the
core query-processing pipeline.
"""

from __future__ import annotations


class ConcealerError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CryptoError(ConcealerError):
    """A cryptographic operation failed (bad key, malformed ciphertext)."""


class DecryptionError(CryptoError):
    """Ciphertext failed authentication or could not be decrypted."""


class KeyDerivationError(CryptoError):
    """Key material was missing or malformed during derivation."""


class StorageError(ConcealerError):
    """The storage engine rejected an operation."""


class DuplicateKeyError(StorageError):
    """An insert collided with an existing unique key."""


class TableNotFoundError(StorageError):
    """A referenced table does not exist in the storage engine."""


class IndexNotFoundError(StorageError):
    """A referenced secondary index does not exist on the table."""


class EnclaveError(ConcealerError):
    """The enclave simulator rejected an operation."""


class EnclaveMemoryError(EnclaveError):
    """An in-enclave working set exceeded the simulated EPC budget."""


class AttestationError(EnclaveError):
    """Remote attestation of the enclave failed."""


class AuthenticationError(ConcealerError):
    """A user could not be authenticated against the registry."""


class AuthorizationError(ConcealerError):
    """An authenticated user requested data it is not entitled to."""


class IntegrityError(ConcealerError):
    """Hash-chain verification detected tampered, missing or injected rows."""


class QueryError(ConcealerError):
    """A query was malformed or referenced values outside the data domain."""


class EpochError(ConcealerError):
    """An epoch package was malformed, duplicated, or out of order."""


class BinningError(ConcealerError):
    """Bin-packing could not satisfy its size or disjointness constraints."""
