"""Fault injection, retry, quarantine, and crash recovery.

Concealer's threat model lets a malicious service provider drop, tamper
with, or replay stored tuples, and real SGX enclaves are killed by
asynchronous exits and must restore sealed state after restart.  This
package gives the reproduction a failure model:

- :mod:`repro.faults.injector` — deterministic, seed-driven
  :class:`FaultInjector` consulted at named fault sites in the storage
  engine and enclave; schedules record and replay byte-identically.
- :mod:`repro.faults.clock` — injectable clocks and the typed
  :class:`RetryPolicy` (capped exponential backoff, no real sleeps in
  tests).
- :mod:`repro.faults.quarantine` — :class:`QuarantineLog` for cells
  whose hash-chain verification failed.
- :mod:`repro.faults.recovery` — :class:`RecoveryCoordinator`:
  re-attest + re-provision a crashed enclave, restore storage from an
  integrity-checked checkpoint.
- :mod:`repro.faults.chaos` — the chaos harness behind ``make chaos``
  and ``python -m repro --chaos-seed N``.

``recovery`` and ``chaos`` import :mod:`repro.core` and are therefore
*not* imported here (core itself depends on the leaf modules above);
import them explicitly.
"""

from repro.faults.clock import RetryPolicy, SystemClock, VirtualClock
from repro.faults.injector import (
    FAULT_SITES,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    NULL_INJECTOR,
)
from repro.faults.quarantine import QuarantineLog

__all__ = [
    "FAULT_SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultSpec",
    "NULL_INJECTOR",
    "QuarantineLog",
    "RetryPolicy",
    "SystemClock",
    "VirtualClock",
]
