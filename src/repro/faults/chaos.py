"""The chaos harness: randomized fault schedules over real workloads.

One *chaos run* builds a provisioned provider/service stack whose
storage engine and enclave share a seeded :class:`FaultInjector`, then
executes a seeded sequence of operations (epoch ingestion, point
queries, range queries, checkpoints) while faults fire.  Every
operation's outcome is checked against a cleartext oracle computed from
the plaintext records, and classified:

- **ok** — an answer was produced and it matches the oracle;
- **typed failure** — a :class:`~repro.exceptions.ConcealerError`
  subclass was raised (the run *failed loudly*); crashed enclaves are
  then recovered through :class:`RecoveryCoordinator` and the run
  continues;
- **silent wrong** — an answer was produced that does *not* match the
  oracle.  This is the one outcome the system must never exhibit; the
  chaos tests and ``python -m repro --chaos-seed N`` fail on it.

Runs are deterministic functions of their seed: the injector's decision
stream, the workload RNG, and the virtual clock make a failing schedule
replay byte-identically (compare :attr:`ChaosReport.schedule`).

Tamper faults (corrupt/drop/duplicate) are only detectable with
hash-chain verification enabled, so the harness always runs with
``verify=True`` — without it, a malicious host *can* silently skew
aggregates, which is precisely the paper's argument for the tags.
"""

from __future__ import annotations

import hashlib
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.core.provider import DataProvider
from repro.core.grid import GridSpec
from repro.core.queries import PointQuery, RangeQuery
from repro.core.schema import WIFI_SCHEMA
from repro.core.service import ServiceConfig, ServiceProvider
from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.exceptions import ConcealerError, EnclaveCrashed
from repro.faults.clock import VirtualClock
from repro.faults.injector import FaultInjector, FaultSpec
from repro.faults.recovery import RecoveryCoordinator
from repro.replication.byzantine import ByzantineReplica
from repro.replication.engine import ReplicatedStorageEngine, ReplicationPolicy
from repro.storage.checkpoint import restore_engine
from repro.storage.engine import StorageEngine

MASTER_KEY = bytes(range(32, 64))
EPOCH_DURATION = 240
TIME_STEP = 60
_LOCATIONS = tuple(f"ap{i}" for i in range(4))
_DEVICES = tuple(f"dev{i}" for i in range(6))


def default_specs() -> list[FaultSpec]:
    """The standard chaos mix: every fault site armed, firings capped."""
    return [
        FaultSpec("storage.read.transient", probability=0.004, max_fires=3),
        FaultSpec("storage.write.transient", probability=0.02, max_fires=2),
        FaultSpec("storage.row.corrupt", probability=0.10, max_fires=2),
        FaultSpec("storage.row.drop", probability=0.10, max_fires=2),
        FaultSpec("storage.row.duplicate", probability=0.10, max_fires=2),
        FaultSpec("storage.checkpoint.torn", probability=0.25, max_fires=1),
        FaultSpec("enclave.epc.exhaust", probability=0.02, max_fires=1),
        FaultSpec("enclave.kill.query", probability=0.04, max_fires=2),
        FaultSpec("enclave.kill.rotation", probability=0.0, max_fires=1),
        FaultSpec("enclave.kill.rewrite", probability=0.02, max_fires=1),
        FaultSpec("enclave.kill.checkpoint", probability=0.15, max_fires=1),
    ]


def byzantine_specs() -> list[FaultSpec]:
    """The replicated chaos mix: the standard faults plus a Byzantine
    storage adversary (replica-targeted tamper, stale replay, bin
    suppression, stragglers) and mid-rotation enclave kills."""
    specs = [
        spec
        if spec.site != "enclave.kill.rotation"
        else FaultSpec("enclave.kill.rotation", probability=0.05, max_fires=1)
        for spec in default_specs()
    ]
    specs += [
        FaultSpec("replica.tamper", probability=0.10, max_fires=3),
        FaultSpec("replica.replay.stale", probability=0.08, max_fires=2),
        FaultSpec("replica.bin.drop", probability=0.08, max_fires=2),
        FaultSpec("replica.slow", probability=0.05, max_fires=2),
    ]
    return specs


@dataclass
class ChaosOutcome:
    """One operation's fate under the fault schedule."""

    op: str
    ok: bool
    expected: object = None
    answer: object = None
    error: str | None = None
    recovered: bool = False

    @property
    def silent_wrong(self) -> bool:
        """An answer was returned and it disagrees with the oracle."""
        return self.error is None and not self.ok


@dataclass
class ChaosReport:
    """Everything one chaos run observed, replayable from its seed."""

    seed: int
    outcomes: list[ChaosOutcome] = field(default_factory=list)
    schedule: bytes = b""
    faults_fired: int = 0
    recoveries: int = 0
    # The run's isolated metrics registry.  Excluded from comparison
    # (and from fingerprint()): replay determinism is about outcomes and
    # the fault schedule, not about observability internals like backoff
    # float sums.
    telemetry: object = field(default=None, compare=False, repr=False)
    # Sharded runs also keep the run-scoped span buffer (local trace
    # roots) and the burn-rate alerts evaluated at the end of the op
    # stream.  Same rule: observability rides along, never fingerprints.
    traces: list = field(default=None, compare=False, repr=False)
    slo_alerts: list = field(default_factory=list, compare=False, repr=False)

    @property
    def silent_wrong(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if o.silent_wrong]

    @property
    def failed_loudly(self) -> list[ChaosOutcome]:
        return [o for o in self.outcomes if o.error is not None]

    def fingerprint(self) -> tuple:
        """Canonical run digest for replay-determinism assertions."""
        return (
            self.schedule,
            tuple(
                (o.op, o.ok, repr(o.answer), o.error, o.recovered)
                for o in self.outcomes
            ),
        )

    def summary(self) -> str:
        return (
            f"seed={self.seed}: {len(self.outcomes)} ops, "
            f"{sum(o.ok for o in self.outcomes)} ok, "
            f"{len(self.failed_loudly)} loud failures, "
            f"{len(self.silent_wrong)} SILENT WRONG, "
            f"{self.faults_fired} faults fired, "
            f"{self.recoveries} recoveries"
        )


def _epoch_records(epoch_start: int, rng: random.Random) -> list[tuple]:
    """A tiny deterministic WiFi epoch derived from the workload RNG."""
    return [
        (_LOCATIONS[rng.randrange(len(_LOCATIONS))], epoch_start + t, device)
        for t in range(0, EPOCH_DURATION, TIME_STEP)
        for device in _DEVICES
    ]


def _point_truth(records, location, timestamp) -> int:
    return sum(1 for r in records if r[0] == location and r[1] == timestamp)


def _range_truth(records, location, t0, t1) -> int:
    return sum(1 for r in records if r[0] == location and t0 <= r[1] <= t1)


class ChaosRun:
    """One seeded stack + fault schedule; drives ops and classifies them."""

    def __init__(
        self,
        seed: int,
        specs: list[FaultSpec] | None = None,
        workdir: str | Path | None = None,
        replicas: int = 1,
    ):
        self.seed = seed
        self.replicas = replicas
        self.workload_rng = random.Random(f"chaos-workload-{seed}")
        if specs is None:
            specs = byzantine_specs() if replicas > 1 else default_specs()
        self.injector = FaultInjector(seed, specs)
        self.report = ChaosReport(seed=seed)
        self._tmp = None
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="concealer-chaos-")
            workdir = self._tmp.name
        self.workdir = Path(workdir)

        spec = GridSpec(
            dimension_sizes=(len(_LOCATIONS), EPOCH_DURATION // TIME_STEP),
            cell_id_count=16,
            epoch_duration=EPOCH_DURATION,
        )
        self.provider = DataProvider(
            WIFI_SCHEMA,
            spec,
            first_epoch_id=0,
            master_key=MASTER_KEY,
            time_granularity=TIME_STEP,
            rng=random.Random(f"chaos-provider-{seed}"),
        )
        self.clock = VirtualClock()
        self._master = MASTER_KEY
        self._rotations = 0
        if replicas > 1:
            # N-replica Byzantine setup: replica 0's inner engine keeps
            # the shared injector (classic storage faults still fire);
            # every replica's *response channel* is adversarial, driven
            # by the same injector so runs replay deterministically.
            members = []
            for rid in range(replicas):
                inner = StorageEngine(
                    fault_injector=self.injector if rid == 0 else None
                )
                members.append(
                    ByzantineReplica(
                        inner, rid, fault_injector=self.injector, clock=self.clock
                    )
                )
            engine = ReplicatedStorageEngine(
                members,
                clock=self.clock,
                policy=ReplicationPolicy(attempt_timeout=2.0),
            )
            config = ServiceConfig(
                verify=True, deadline_seconds=90.0, retry_jitter=0.2,
                bin_cache_bins=12, batch_workers=1,
            )
            retry_rng = random.Random(f"chaos-retry-{seed}")
        else:
            engine = StorageEngine(fault_injector=self.injector)
            # Batching armed: the enclave bin cache is live for every
            # op (so faults race cache fills and invalidations) and
            # prefetch is sequential so schedules replay exactly.
            config = ServiceConfig(verify=True, bin_cache_bins=12, batch_workers=1)
            retry_rng = None
        self.service = ServiceProvider(
            WIFI_SCHEMA,
            config,
            engine=engine,
            enclave=Enclave(EnclaveConfig(), fault_injector=self.injector),
            clock=self.clock,
            retry_rng=retry_rng,
        )
        self.provider.provision_enclave(self.service.enclave)
        self.service.install_registry(self.provider.sealed_registry())
        self.coordinator = RecoveryCoordinator(
            self.provider, self.service, self.workdir / "chaos.ckpt"
        )
        # Plaintext oracle state: epoch id -> records that truly landed.
        self.oracle: dict[int, list[tuple]] = {}

    # ------------------------------------------------------------------ ops

    def _attempt(self, op: str, thunk, expected=None) -> ChaosOutcome:
        """Run one operation; classify; recover a crashed enclave."""
        outcome = ChaosOutcome(op=op, ok=False, expected=expected)
        try:
            outcome.answer = thunk()
        except ConcealerError as error:
            outcome.error = type(error).__name__
            if isinstance(error, EnclaveCrashed) or self.service.enclave.crashed:
                self.coordinator.recover()
                outcome.recovered = True
                self.report.recoveries += 1
        else:
            outcome.ok = outcome.answer == expected
        self.report.outcomes.append(outcome)
        return outcome

    def ingest(self, epoch_id: int) -> ChaosOutcome:
        """Land one epoch; the oracle only counts it if ingestion succeeds."""
        records = _epoch_records(epoch_id, self.workload_rng)

        def run():
            package = self.provider.encrypt_epoch(records, epoch_id)
            self.service.ingest_epoch(package)
            self.oracle[epoch_id] = records
            return self.service.engine.row_count(f"epoch_{epoch_id}")

        # Expected row count is unknowable up front (fakes are seeded
        # provider-side); success is simply "all rows landed".
        outcome = self._attempt("ingest", run)
        if outcome.error is None:
            outcome.ok = outcome.answer >= len(records)
        return outcome

    def point_query(self) -> ChaosOutcome:
        epoch_id, records = self._pick_epoch()
        if records is None:
            return self._skip("point")
        location, timestamp, _ = records[self.workload_rng.randrange(len(records))]
        expected = _point_truth(records, location, timestamp)
        return self._attempt(
            "point",
            lambda: self.service.execute_point(
                PointQuery(index_values=(location,), timestamp=timestamp)
            )[0],
            expected,
        )

    def range_query(self) -> ChaosOutcome:
        epoch_id, records = self._pick_epoch()
        if records is None:
            return self._skip("range")
        location = _LOCATIONS[self.workload_rng.randrange(len(_LOCATIONS))]
        t0 = epoch_id + TIME_STEP * self.workload_rng.randrange(2)
        t1 = t0 + TIME_STEP * (1 + self.workload_rng.randrange(2))
        method = ("multipoint", "ebpb", "winsecrange")[
            self.workload_rng.randrange(3)
        ]
        expected = _range_truth(records, location, t0, t1)
        return self._attempt(
            "range",
            lambda: self.service.execute_range(
                RangeQuery(
                    index_values=(location,), time_start=t0, time_end=t1
                ),
                method=method,
            )[0],
            expected,
        )

    def batch_query(self) -> ChaosOutcome:
        """A shared-fetch batch with deliberate bin overlap.

        Five point queries over two repeated probes plus one multipoint
        range — so the planner genuinely deduplicates — executed as one
        ``execute_batch``.  A fault mid-batch must fail the *whole*
        batch loudly (one answer silently skewed while the rest verify
        would be the worst possible outcome).
        """
        epoch_id, records = self._pick_epoch()
        if records is None:
            return self._skip("batch")
        rng = self.workload_rng
        probes = []
        for _ in range(2):
            location, timestamp, _ = records[rng.randrange(len(records))]
            probes.append((location, timestamp))
        queries: list = []
        expected: list = []
        for index in range(5):
            location, timestamp = probes[index % len(probes)]
            queries.append(
                PointQuery(index_values=(location,), timestamp=timestamp)
            )
            expected.append(_point_truth(records, location, timestamp))
        location = _LOCATIONS[rng.randrange(len(_LOCATIONS))]
        t0 = epoch_id
        t1 = t0 + TIME_STEP
        queries.append(
            (
                RangeQuery(index_values=(location,), time_start=t0, time_end=t1),
                "multipoint",
            )
        )
        expected.append(_range_truth(records, location, t0, t1))
        return self._attempt(
            "batch",
            lambda: [
                answer for answer, _ in self.service.execute_batch(queries)
            ],
            expected,
        )

    def checkpoint_cycle(self) -> ChaosOutcome:
        """Checkpoint, then restore into a scratch engine and compare."""

        def run():
            path = self.coordinator.checkpoint()
            restored = restore_engine(path)
            return sorted(restored.table_names())

        expected = sorted(self.service.engine.table_names())
        return self._attempt("checkpoint", run, expected)

    def rotate_keys(self) -> ChaosOutcome:
        """Rotate the master key mid-run (replicated schedules only).

        The next key is a deterministic function of the seed and the
        rotation count, so schedules replay.  A mid-rotation enclave
        kill rolls the rewrite back (journal) and recovery re-attests —
        the *old* key stays live, which the oracle checks implicitly by
        the following queries still answering correctly.
        """
        from repro.core.rotation import rotate_service_keys, rotation_token

        self._rotations += 1
        new_master = hashlib.sha256(
            b"chaos-rotation|%d|%d" % (self.seed, self._rotations)
        ).digest()

        def run():
            token = rotation_token(self._master, new_master)
            rotated = rotate_service_keys(self.service, new_master, token)
            self.provider.adopt_master(new_master)
            self._master = new_master
            return rotated

        outcome = self._attempt("rotate", run)
        if outcome.error is None:
            outcome.ok = True
        return outcome

    def repair(self) -> list:
        """One anti-entropy pass; no-op for unreplicated runs."""
        return self.coordinator.repair_replicas()

    def _pick_epoch(self):
        if not self.oracle:
            return None, None
        epoch_id = sorted(self.oracle)[
            self.workload_rng.randrange(len(self.oracle))
        ]
        return epoch_id, self.oracle[epoch_id]

    def _skip(self, op: str) -> ChaosOutcome:
        outcome = ChaosOutcome(op=f"{op}-skipped", ok=True)
        self.report.outcomes.append(outcome)
        return outcome

    # ------------------------------------------------------------------ run

    def run(self, ops: int = 12) -> ChaosReport:
        """Execute the seeded schedule: ingest, then a mixed op stream.

        The whole run executes under a fresh scoped registry, so the
        report's ``telemetry`` (retry counts, recoveries, fault fires)
        covers exactly this run and nothing ambient.
        """
        with telemetry.scoped_registry() as registry:
            try:
                self.ingest(0)
                for index in range(ops):
                    # A second epoch lands part-way through (insert workload).
                    if index == ops // 2 and EPOCH_DURATION not in self.oracle:
                        self.ingest(EPOCH_DURATION)
                        continue
                    # Replicated schedules rotate keys mid-stream — with
                    # replica faults armed this exercises failover during
                    # and after an epoch rewrite (the repair fence).
                    if self.replicas > 1 and index == max(1, (2 * ops) // 3):
                        self.rotate_keys()
                        continue
                    draw = self.workload_rng.random()
                    if draw < 0.40:
                        self.point_query()
                    elif draw < 0.75:
                        self.range_query()
                    elif draw < 0.88:
                        self.batch_query()
                    else:
                        self.checkpoint_cycle()
                    if self.replicas > 1 and index % 4 == 3:
                        self.repair()
                if self.replicas > 1:
                    self.repair()
            finally:
                self.report.schedule = self.injector.encode_schedule()
                self.report.faults_fired = len(self.injector.fired)
                self.report.telemetry = registry
                if self._tmp is not None:
                    self._tmp.cleanup()
        return self.report


def run_chaos(
    seed: int,
    ops: int = 12,
    specs: list[FaultSpec] | None = None,
    workdir: str | Path | None = None,
    replicas: int = 1,
    shards: int = 1,
) -> ChaosReport:
    """Run one seeded chaos schedule end to end and return its report.

    ``replicas > 1`` switches to the Byzantine-replicated stack: N
    engines behind verify-then-failover reads, replica fault sites
    armed (:func:`byzantine_specs`), a mid-run key rotation, and
    periodic anti-entropy repair.

    ``shards > 1`` switches to the sharded fleet instead (see
    :mod:`repro.faults.chaos_sharded`): shard kills, stalls, router
    crashes, two-phase ingest/rotation, and partial-result checking
    against a per-shard oracle.

    ``shards > 1`` *and* ``replicas > 1`` compose: every shard fronts
    its own Byzantine-wrapped replica group, so replica tamper/replay/
    drop/stall faults race shard kills, router crashes, and the
    mid-stream two-phase rotation in one schedule — the full gauntlet.
    """
    if shards > 1:
        from repro.faults.chaos_sharded import ShardedChaosRun

        return ShardedChaosRun(
            seed, specs=specs, workdir=workdir, shards=shards, replicas=replicas
        ).run(ops=ops)
    return ChaosRun(seed, specs=specs, workdir=workdir, replicas=replicas).run(
        ops=ops
    )
