"""Crash recovery: rebuild a killed enclave, restore checkpointed storage.

A real SGX enclave killed by an asynchronous exit or power event loses
its entire EPC — keys, unsealed registry, decrypted metadata vectors.
Recovery mirrors the original Phase-0 handshake:

1. the host constructs a **fresh enclave instance** (same code identity,
   so its measurement matches the published one);
2. the data provider **re-attests** it (challenge nonce → quote →
   verification against the published measurement) and re-provisions
   ``s_k`` plus the epoch parameters — :meth:`DataProvider.provision_enclave`
   is exactly this handshake;
3. the sealed **registry is re-shipped** and re-opened inside the new
   enclave;
4. per-epoch **contexts rebuild lazily** from the stored (encrypted)
   epoch packages on the next query — the metadata vectors live in the
   packages, not only in enclave memory, which is what makes the design
   restartable.

Storage recovery is orthogonal: if the host also lost its DBMS, the
engine is restored from the latest integrity-checked checkpoint
(:mod:`repro.storage.checkpoint`) and re-adopted by the service.
"""

from __future__ import annotations

from pathlib import Path

from repro import telemetry
from repro.core.provider import DataProvider
from repro.core.service import ServiceProvider
from repro.enclave.enclave import Enclave
from repro.exceptions import StorageError
from repro.storage.checkpoint import checkpoint_engine, restore_engine


def _count_recovery(component: str) -> None:
    telemetry.counter(
        "concealer_recoveries_total",
        "completed crash recoveries, by component",
        labels=("component",),
    ).labels(component=component).inc()


class RecoveryCoordinator:
    """Drives enclave and storage recovery for one (provider, service) pair.

    >>> # coordinator = RecoveryCoordinator(provider, service, path)
    >>> # coordinator.checkpoint()            # periodic durability point
    >>> # ... enclave dies mid-query ...
    >>> # coordinator.recover()               # service answers again
    """

    def __init__(
        self,
        provider: DataProvider,
        service: ServiceProvider,
        checkpoint_path: str | Path | None = None,
    ):
        self.provider = provider
        self.service = service
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None

    # ----------------------------------------------------------- durability

    def checkpoint(self) -> Path:
        """Snapshot the service's storage engine to the checkpoint path.

        The enclave may be killed mid-checkpoint (a chaos kill point):
        the snapshot write itself is host-side and atomic, so either the
        previous snapshot survives intact or the new one replaces it
        whole — never a torn file (unless the torn-write fault is
        armed, in which case restore fails loudly instead).
        """
        if self.checkpoint_path is None:
            raise StorageError("no checkpoint path configured")
        if not self.service.enclave.crashed:
            self.service.enclave.kill_point("enclave.kill.checkpoint")
        # A replicated engine nominates a healthy replica (unwrapped
        # from any Byzantine response channel) so the checkpoint
        # captures trustworthy *stored* state, not served state.
        engine = self.service.engine
        source = getattr(engine, "checkpoint_source", lambda: engine)()
        return checkpoint_engine(
            source,
            self.checkpoint_path,
            fault_injector=source.fault_injector,
        )

    # ------------------------------------------------------------- recovery

    def recover_enclave(self) -> Enclave:
        """Re-attest and re-provision a replacement for a dead enclave.

        The replacement inherits the old instance's config (code
        identity → same measurement) and fault injector (the chaos
        schedule keeps running across recoveries).  The service drops
        its cached contexts and unsealed registry; both rebuild from
        host-stored ciphertext (epoch packages, sealed registry blob).
        """
        old = self.service.enclave
        fresh = Enclave(old.config, fault_injector=old.fault_injector)
        self.service.adopt_enclave(fresh)
        self.provider.provision_enclave(fresh)
        self.service.install_registry(self.provider.sealed_registry())
        _count_recovery("enclave")
        return fresh

    def recover_storage(self) -> None:
        """Restore storage from the latest checkpoint and re-adopt it.

        For a plain engine the restored instance simply replaces the
        old one.  For a **replicated** engine the group itself must
        survive recovery — swapping in the plain restored engine would
        silently strip the shard of its failover/quarantine machinery —
        so the checkpoint is instead installed into *every* replica via
        :meth:`~repro.storage.engine.StorageEngine.rebuild_table`
        (preserving row ids, so physical addresses stay aligned),
        stale replica tables are dropped, quarantines clear (every
        replica now holds checkpoint truth), per-replica breakers
        reset, and the *same* group object is re-adopted so the bin
        cache and trapdoor table flush.
        """
        if self.checkpoint_path is None:
            raise StorageError("no checkpoint path configured")
        restored = restore_engine(self.checkpoint_path)
        engine = self.service.engine
        if getattr(engine, "supports_replicated_reads", False):
            tables = restored.table_names()
            for replica in engine.replicas:
                target = getattr(replica, "inner", replica)
                for stale in set(target.table_names()) - set(tables):
                    target.drop_table(stale)
                for table in tables:
                    target.rebuild_table(
                        table,
                        restored.column_names(table),
                        restored.snapshot_rows(table),
                        restored.indexed_columns(table),
                    )
            for replica_id, table in list(engine.quarantine.tables()):
                engine.quarantine.clear(replica_id, table)
            for breaker in engine.breakers:
                breaker.reset()
            self.service.adopt_engine(engine)
        else:
            self.service.adopt_engine(restored)
        _count_recovery("storage")

    def master_source(self, table: str):
        """Rebuild one table's encrypted rows from the DP's epoch package.

        The anti-entropy repairer's last resort when no healthy peer
        holds the table.  Declines (returns ``None``) once a key
        rotation has run: the retained packages hold *pre-rotation*
        ciphertexts, and re-installing them would fail verification
        under the rotated keys — those tables must re-sync from a peer
        or be re-shipped by the data provider.
        """
        from repro.storage.table import Row

        if getattr(self.service.engine, "rewrite_generation", 0) > 0:
            return None
        for epoch_id, package in self.service._packages.items():
            if self.service._table_name(epoch_id) != table:
                continue
            rows = [
                Row(row_id=position, columns=tuple(row.as_columns()))
                for position, row in enumerate(package.rows)
            ]
            return (package.column_names, rows, ["index_key"])
        return None

    def repair_replicas(self, fence=None) -> list:
        """One anti-entropy pass over the service's replicated engine.

        No-op (empty list) for unreplicated engines; otherwise each
        quarantined (replica, table) re-syncs from a healthy peer or,
        failing that, from this coordinator's :meth:`master_source`.
        ``fence`` is an optional zero-arg callable consulted per
        repair: in a sharded fleet it reflects the *cross-shard*
        two-phase journal, declining repairs while any shard sits
        between prepare and commit (this shard's own engine generation
        cannot see that window).
        """
        from repro.replication.repair import AntiEntropyRepairer

        engine = self.service.engine
        if not getattr(engine, "supports_replicated_reads", False):
            return []
        repairer = AntiEntropyRepairer(
            engine, master_source=self.master_source, fence=fence
        )
        return repairer.run_once()

    def recover(self, restore_storage: bool = False) -> dict:
        """Recover whatever is broken; returns a summary of actions taken.

        ``restore_storage=True`` additionally rolls the engine back to
        the last checkpoint (for host restarts, not just enclave
        crashes).
        """
        actions: dict[str, bool] = {"enclave": False, "storage": False}
        if restore_storage:
            self.recover_storage()
            actions["storage"] = True
        if self.service.enclave.crashed or not self.service.enclave.provisioned:
            self.recover_enclave()
            actions["enclave"] = True
        return actions
