"""Deterministic, seed-driven fault injection.

A :class:`FaultInjector` is consulted at named *fault sites* scattered
through the storage engine, the enclave simulator, and the core
pipeline.  Each consultation draws from a seeded RNG, so a fault
schedule is a pure function of ``(seed, specs, workload)`` — any chaos
failure observed in CI replays byte-identically from its seed.

Design rules:

- **No global state.**  An injector is an explicit collaborator passed
  to the components it may perturb; production code defaults to
  :data:`NULL_INJECTOR`, whose :meth:`~FaultInjector.fire` is a cheap
  constant ``None``.
- **Record everything.**  Every *fired* fault is appended to
  :attr:`FaultInjector.fired`; :meth:`FaultInjector.encode_schedule`
  serialises the log canonically, and
  :meth:`FaultInjector.from_schedule` rebuilds an injector that fires
  at exactly those (site, invocation-index) points — replay does not
  even need the original probabilities.
- **Faults raise before state changes** wherever possible, so a retried
  operation never half-applies.

Known fault sites (the strings components consult):

==============================  =============================================
``storage.read.transient``      :class:`TransientStorageError` from a row read
``storage.write.transient``     :class:`TransientStorageError` before a write
``storage.row.corrupt``         flip bytes of one fetched row (tampering)
``storage.row.drop``            drop one fetched row (deletion attack)
``storage.row.duplicate``       duplicate one fetched row (replay attack)
``storage.tree.corrupt``        flip bytes of one fetched aggregate-tree
                                node (tampering on the tree read path)
``storage.checkpoint.torn``     truncate a checkpoint mid-write
``enclave.epc.exhaust``         spurious EPC exhaustion in ``charge_memory``
``enclave.kill.query``          kill the enclave mid-query fetch
``enclave.kill.rotation``       kill the enclave mid-key-rotation
``enclave.kill.rewrite``        kill the enclave mid-§6-bin-rewrite
``enclave.kill.checkpoint``     kill the enclave mid-checkpoint
``replica.tamper``              corrupt one row of a replica's response
``replica.replay.stale``        replica serves a remembered stale batch
``replica.bin.drop``            replica drops rows from a fetched bin
``replica.slow``                replica stalls past its attempt budget
``shard.kill``                  kill one shard's enclave at a dispatch or
                                mid-cross-shard-ingest boundary
``shard.slow``                  a shard stalls past its dispatch budget
``router.crash``                the sharded query router process dies
==============================  =============================================

The ``replica.*`` sites model a *Byzantine* storage replica (see
:mod:`repro.replication.byzantine`): unlike the ``storage.row.*``
tampering sites, they fire inside one replica's response path, so a
verification failure there is recoverable by failing over to a healthy
peer rather than fatal to the query.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro import telemetry

FAULT_SITES = (
    "storage.read.transient",
    "storage.write.transient",
    "storage.row.corrupt",
    "storage.row.drop",
    "storage.row.duplicate",
    "storage.tree.corrupt",
    "storage.checkpoint.torn",
    "enclave.epc.exhaust",
    "enclave.kill.query",
    "enclave.kill.rotation",
    "enclave.kill.rewrite",
    "enclave.kill.checkpoint",
    "replica.tamper",
    "replica.replay.stale",
    "replica.bin.drop",
    "replica.slow",
    "shard.kill",
    "shard.slow",
    "router.crash",
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: *where* it may fire, *how often*, *how many times*.

    ``probability`` is evaluated on every consultation of ``site``;
    ``max_fires`` caps the total number of firings (``None`` =
    unbounded), which keeps chaos runs from degenerating into
    every-operation-fails.
    """

    site: str
    probability: float = 0.0
    max_fires: int | None = 1

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired: ``site`` at its N-th consultation."""

    site: str
    index: int


@dataclass
class _SiteState:
    spec: FaultSpec
    fires: int = 0


def _count_fire(site: str) -> None:
    """Count one fired fault (consultations that pass are not counted —
    the hot path stays a dict lookup plus an RNG draw)."""
    telemetry.counter(
        "concealer_faults_fired_total",
        "injected faults that actually fired, by site",
        labels=("site",),
    ).labels(site=site).inc()
    # Stamp the active span so an assembled trace shows exactly where a
    # chaos schedule bit: the failed subtree carries both the typed
    # error (from span error recording) and the fault site that caused
    # it.  Fault sites are schedule-derived, never plaintext-derived.
    telemetry.annotate(fault_site=site)


class FaultInjector:
    """Seeded decision-maker for every fault site.

    >>> injector = FaultInjector(7, [FaultSpec("storage.read.transient",
    ...                                        probability=1.0)])
    >>> injector.fire("storage.read.transient").site
    'storage.read.transient'
    >>> injector.fire("storage.read.transient") is None  # max_fires=1 spent
    True
    """

    def __init__(self, seed: int = 0, specs: list[FaultSpec] | tuple = ()):
        self.seed = seed
        self._rng = random.Random(seed)
        self._sites: dict[str, _SiteState] = {}
        self._counters: dict[str, int] = {}
        self._forced: set[tuple[str, int]] = set()
        self.fired: list[FaultEvent] = []
        for spec in specs:
            self.arm(spec)

    # ---------------------------------------------------------------- arming

    def arm(self, spec: FaultSpec) -> None:
        """Arm (or replace) the fault spec for one site."""
        self._sites[spec.site] = _SiteState(spec)

    def disarm(self, site: str) -> None:
        """Stop firing at a site; consultations still advance its counter."""
        self._sites.pop(site, None)

    @classmethod
    def from_schedule(cls, events: list[FaultEvent]) -> "FaultInjector":
        """An injector that fires at exactly the recorded points.

        Replay mode: probabilities are ignored; the N-th consultation of
        a site fires iff ``FaultEvent(site, N)`` is in ``events``.
        """
        injector = cls(seed=0)
        injector._forced = {(e.site, e.index) for e in events}
        return injector

    # ---------------------------------------------------------------- firing

    def fire(self, site: str) -> FaultSpec | None:
        """Consult one site; returns the spec if the fault fires.

        Every consultation advances the site's invocation counter and —
        in probabilistic mode — draws from the seeded RNG whether or not
        a spec is armed, so arming a *different* site never perturbs
        this site's schedule relative to a replay.
        """
        index = self._counters.get(site, 0)
        self._counters[site] = index + 1

        if self._forced:
            if (site, index) in self._forced:
                self.fired.append(FaultEvent(site, index))
                _count_fire(site)
                return FaultSpec(site, probability=1.0, max_fires=None)
            return None

        state = self._sites.get(site)
        if state is None:
            return None
        if state.spec.max_fires is not None and state.fires >= state.spec.max_fires:
            return None
        if self._site_rng(site, index).random() >= state.spec.probability:
            return None
        state.fires += 1
        self.fired.append(FaultEvent(site, index))
        _count_fire(site)
        return state.spec

    def _site_rng(self, site: str, index: int) -> random.Random:
        """A per-(site, index) RNG derived from the seed.

        Deriving per-consultation keeps a site's decisions independent
        of interleaving with other sites: the N-th draw at a site is the
        same whether or not other sites were consulted in between.
        """
        return random.Random(f"{self.seed}/{site}/{index}")

    # ------------------------------------------------------------- tampering

    def corrupt_bytes(self, data: bytes, site: str = "storage.row.corrupt") -> bytes:
        """Deterministically flip one byte of ``data`` (same seed → same flip)."""
        if not data:
            return data
        rng = self._site_rng(site, self._counters.get(site, 0))
        position = rng.randrange(len(data))
        flipped = data[position] ^ (1 + rng.randrange(255))
        return data[:position] + bytes([flipped]) + data[position + 1:]

    def choose(self, count: int, site: str) -> int:
        """Deterministically pick a victim index in ``range(count)``."""
        rng = self._site_rng(site, self._counters.get(site, 0))
        return rng.randrange(count)

    # --------------------------------------------------------------- records

    def consultations(self, site: str) -> int:
        """How many times a site has been consulted so far."""
        return self._counters.get(site, 0)

    def encode_schedule(self) -> bytes:
        """Canonical serialisation of the fired-fault log.

        Two runs with equal schedules encode to equal bytes — the
        property the chaos tests assert for seeded replay.
        """
        lines = [f"{event.site}@{event.index}" for event in self.fired]
        return ("\n".join(lines)).encode("ascii")

    @staticmethod
    def decode_schedule(blob: bytes) -> list[FaultEvent]:
        """Inverse of :meth:`encode_schedule`."""
        events = []
        for line in blob.decode("ascii").splitlines():
            if not line:
                continue
            site, _, index = line.rpartition("@")
            events.append(FaultEvent(site, int(index)))
        return events


class _NullInjector(FaultInjector):
    """The disarmed default: ``fire`` is a constant ``None``."""

    def __init__(self):
        super().__init__(seed=0)

    def fire(self, site: str) -> None:  # noqa: ARG002 - site unused by design
        return None

    def arm(self, spec: FaultSpec) -> None:
        raise ValueError(
            "NULL_INJECTOR is shared and immutable; construct a FaultInjector"
        )


NULL_INJECTOR = _NullInjector()
