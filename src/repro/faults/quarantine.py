"""Quarantine bookkeeping for integrity-violating cells.

When hash-chain verification fails for a cell-id, the service must not
keep serving (possibly tampered) answers from it: the cell is recorded
here, later queries that would touch it fail fast with a structured
:class:`~repro.exceptions.IntegrityViolation`, and operators read the
accumulated reports to decide on re-shipping the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import IntegrityViolation


@dataclass
class QuarantineLog:
    """Cells whose verifiable tags failed, plus their violation reports."""

    _cells: set = field(default_factory=set)
    _reports: list = field(default_factory=list)

    def record(self, violation: IntegrityViolation) -> None:
        """File one violation; quarantines its (epoch, cell) if known."""
        if violation.epoch_id is not None and violation.cell_id is not None:
            self._cells.add((violation.epoch_id, violation.cell_id))
        self._reports.append(violation.report())

    def is_quarantined(self, epoch_id: int, cell_id: int) -> bool:
        """Whether a cell has a standing unresolved violation."""
        return (epoch_id, cell_id) in self._cells

    def check(self, epoch_id: int, cell_id: int) -> None:
        """Fail fast if a query would touch a quarantined cell."""
        if self.is_quarantined(epoch_id, cell_id):
            raise IntegrityViolation(
                f"cell {cell_id} of epoch {epoch_id} is quarantined after an "
                "earlier integrity violation; re-ship the epoch to clear it",
                epoch_id=epoch_id,
                cell_id=cell_id,
                kind="quarantined",
            )

    def clear(self, epoch_id: int | None = None) -> None:
        """Lift quarantine (for every epoch, or one re-shipped epoch)."""
        if epoch_id is None:
            self._cells.clear()
        else:
            self._cells = {c for c in self._cells if c[0] != epoch_id}

    def reports(self) -> list[dict]:
        """Every violation filed so far (structured dicts, oldest first)."""
        return list(self._reports)

    def __len__(self) -> int:
        return len(self._cells)
