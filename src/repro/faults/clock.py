"""Injectable time and type-driven retry with capped exponential backoff.

Retrying transient storage faults must not make the test suite sleep:
the retry policy talks to a :class:`Clock` protocol object, and tests
substitute :class:`VirtualClock`, whose ``sleep`` merely advances a
counter (and records the requested delays for assertions).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro import telemetry
from repro.exceptions import TransientStorageError


class SystemClock:
    """Real wall-clock time (production default)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


@dataclass
class VirtualClock:
    """A clock whose time only moves when someone sleeps on it."""

    current: float = 0.0
    sleeps: list[float] = field(default_factory=list)

    def now(self) -> float:
        return self.current

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.current += seconds


@dataclass
class RetryPolicy:
    """Capped exponential backoff over a typed exception class.

    ``call`` runs ``fn`` up to ``attempts`` times, sleeping
    ``min(base_delay * multiplier**k, max_delay)`` between tries, and
    re-raises the last error once the budget is spent.  Only exceptions
    matching ``retry_on`` are retried — anything else (integrity
    violations, crashes needing recovery) propagates immediately, which
    is the whole point of the transient/permanent split.

    ``jitter`` spreads the backoff by up to that fraction of the delay
    (full-jitter style, so concurrent retriers decorrelate).  The draws
    come from ``rng``, an *explicitly threaded* seeded
    :class:`random.Random` — never the process-global RNG — so a chaos
    replay of a retry schedule is byte-deterministic.
    """

    attempts: int = 4
    base_delay: float = 0.01
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.0
    retry_on: type | tuple = TransientStorageError
    clock: SystemClock | VirtualClock = field(default_factory=SystemClock)
    rng: random.Random | None = None

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.jitter > 0.0 and self.rng is None:
            # A fixed-seed fallback keeps un-threaded callers
            # deterministic too; chaos harnesses thread their own.
            self.rng = random.Random(0)

    def delays(self) -> list[float]:
        """The jitter-free backoff sequence this policy sleeps through."""
        return [
            min(self.base_delay * self.multiplier ** k, self.max_delay)
            for k in range(self.attempts - 1)
        ]

    def _delay(self, attempt: int) -> float:
        delay = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
        if self.jitter > 0.0:
            assert self.rng is not None
            delay *= 1.0 - self.jitter * self.rng.random()
        return delay

    def call(self, fn, deadline=None):
        """Run ``fn`` under the policy; returns its value or re-raises.

        ``deadline`` (anything with ``check(site)``, e.g.
        :class:`repro.replication.deadline.Deadline`) is consulted
        before every retry sleep: a spent budget raises
        :class:`~repro.exceptions.DeadlineExceeded` instead of burning
        backoff time on an answer nobody is waiting for.
        """
        last: BaseException | None = None
        for attempt in range(self.attempts):
            try:
                return fn()
            except self.retry_on as error:  # type: ignore[misc]
                # Only the failure path pays for telemetry; the happy
                # path above is a bare call.
                last = error
                telemetry.counter(
                    "concealer_retry_attempts_total",
                    "attempts that failed with a retryable error",
                ).inc()
                # Stamp the active query span (if any) so an assembled
                # trace shows *which* stage burned retry budget.
                telemetry.annotate(
                    retry_attempts=attempt + 1,
                    retry_error=type(error).__name__,
                )
                if attempt == self.attempts - 1:
                    break
                if deadline is not None:
                    deadline.check("retry.backoff")
                delay = self._delay(attempt)
                telemetry.counter(
                    "concealer_retry_backoff_seconds_total",
                    "total backoff slept between retries",
                ).inc(delay)
                self.clock.sleep(delay)
        assert last is not None
        raise last
