"""Chaos over the sharded fleet: kills, stalls, and router crashes.

Extends the single-stack harness (:mod:`repro.faults.chaos`) to the
N-shard service: the same seeded injector now also drives shard kills
at dispatch and two-phase boundaries (``shard.kill``), shard stalls
that burn a dispatch budget (``shard.slow``), and front-door restarts
(``router.crash``), on top of every classic storage/enclave fault —
all shards share the injector and the virtual clock, so a schedule
still replays byte-identically from its seed.

The oracle knows the *per-shard* truth: records are partitioned at
ingest time with the same keyed grid + public topology the provider
uses, so a :class:`~repro.sharding.results.PartialResult` is checked
against the truth **restricted to the shards that served it** — a
partial answer claiming shards it did not serve, or a full answer
missing a healthy shard's rows, is classified silently wrong exactly
like a wrong scalar.

Outcome classes (superset of the single-stack harness):

- **ok** — full answer matching full truth;
- **ok (partial)** — a ``PartialResult`` whose answer matches the
  served-shard-restricted truth and whose missing set is honest;
- **typed failure** — a :class:`~repro.exceptions.ConcealerError`;
  isolated shards are then (sometimes) healed and the run continues;
- **silent wrong** — any produced answer disagreeing with its oracle.

Every run ends with a **full heal + verification sweep**: all shards
must re-admit and a wildcard count per epoch must come back complete
and correct — the acceptance check that killed shards recover rather
than merely staying politely isolated.
"""

from __future__ import annotations

import hashlib
import random
import tempfile
from pathlib import Path

from repro import telemetry
from repro.core.grid import GridSpec
from repro.core.provider import DataProvider
from repro.core.queries import PointQuery, RangeQuery
from repro.core.schema import WIFI_SCHEMA
from repro.exceptions import ConcealerError
from repro.faults.chaos import (
    EPOCH_DURATION,
    MASTER_KEY,
    TIME_STEP,
    _LOCATIONS,
    _point_truth,
    _range_truth,
    ChaosOutcome,
    ChaosReport,
    _epoch_records,
    default_specs,
)
from repro.faults.clock import VirtualClock
from repro.faults.injector import FaultInjector, FaultSpec
from repro.replication.byzantine import ByzantineReplica
from repro.replication.engine import ReplicatedStorageEngine, ReplicationPolicy
from repro.storage.engine import StorageEngine
from repro.telemetry.slo import SLOMonitor
from repro.sharding.coordinator import ingest_epoch_sharded, rotate_sharded_keys
from repro.sharding.results import PartialResult
from repro.sharding.service import ShardedConfig, ShardedService


def sharded_specs() -> list[FaultSpec]:
    """The sharded chaos mix: classic faults + shard/router sites.

    ``enclave.kill.rotation`` is armed (it fires inside a shard's
    phase-1 rewrite, exercising the cross-shard abort), and the three
    sharding sites join the stream.  Probabilities are tuned so a
    typical schedule fires a couple of faults without degenerating
    into everything-always-fails.
    """
    specs = [
        spec
        if spec.site != "enclave.kill.rotation"
        else FaultSpec("enclave.kill.rotation", probability=0.05, max_fires=1)
        for spec in default_specs()
    ]
    specs += [
        FaultSpec("shard.kill", probability=0.05, max_fires=2),
        FaultSpec("shard.slow", probability=0.05, max_fires=2),
        FaultSpec("router.crash", probability=0.05, max_fires=1),
    ]
    return specs


def composed_specs() -> list[FaultSpec]:
    """The composed mix: sharded sites *plus* a Byzantine storage
    adversary inside every shard's replica group.

    This is the full gauntlet — replica-targeted tamper/stale-replay/
    bin-drop/stragglers racing shard kills, router crashes, and a
    mid-stream two-phase rotation.  The oracle contract is unchanged:
    zero silent-wrong, with in-shard failover expected to absorb most
    replica faults before the router ever sees a degraded shard.
    """
    specs = sharded_specs()
    specs += [
        FaultSpec("replica.tamper", probability=0.10, max_fires=3),
        FaultSpec("replica.replay.stale", probability=0.08, max_fires=2),
        FaultSpec("replica.bin.drop", probability=0.08, max_fires=2),
        FaultSpec("replica.slow", probability=0.05, max_fires=2),
    ]
    return specs


class ShardedChaosRun:
    """One seeded N-shard fleet + fault schedule, with a per-shard oracle."""

    def __init__(
        self,
        seed: int,
        specs: list[FaultSpec] | None = None,
        workdir: str | Path | None = None,
        shards: int = 2,
        replicas: int = 1,
    ):
        self.seed = seed
        self.shard_count = shards
        self.replicas = replicas
        self.workload_rng = random.Random(f"chaos-workload-{seed}")
        if specs is None:
            specs = composed_specs() if replicas > 1 else sharded_specs()
        self.injector = FaultInjector(seed, specs)
        self.report = ChaosReport(seed=seed)
        self._tmp = None
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="concealer-chaos-")
            workdir = self._tmp.name
        self.workdir = Path(workdir)

        spec = GridSpec(
            dimension_sizes=(len(_LOCATIONS), EPOCH_DURATION // TIME_STEP),
            cell_id_count=16,
            epoch_duration=EPOCH_DURATION,
        )
        self.provider = DataProvider(
            WIFI_SCHEMA,
            spec,
            first_epoch_id=0,
            master_key=MASTER_KEY,
            time_granularity=TIME_STEP,
            rng=random.Random(f"chaos-provider-{seed}"),
        )
        self.clock = VirtualClock()
        self.config = ShardedConfig(
            shards=shards,
            replicas=replicas,
            deadline_seconds=60.0,
            bin_cache_bins=12,
            breaker_reset_seconds=1e9,  # re-admission only via heal()
        )
        self.sharded = ShardedService.build(
            self.provider,
            self.config,
            self.workdir,
            clock=self.clock,
            fault_injector=self.injector,
            retry_rng_seed=f"chaos-retry-{seed}",
            engine_factory=(
                self._byzantine_group if replicas > 1 else None
            ),
        )
        self._master = MASTER_KEY
        self._rotations = 0
        # SLO monitor on the fleet's virtual clock: a shard.slow burns
        # its dispatch budget in *virtual* seconds, so the latency
        # objective trips deterministically on replay.
        self.slo = SLOMonitor(clock=self.clock)
        # Plaintext oracle: epoch -> records; epoch -> per-shard records.
        # Partitions are captured at ingest (grid keys never change for
        # an ingested epoch, so ownership is stable across rotations).
        self.oracle: dict[int, list[tuple]] = {}
        self.oracle_parts: dict[int, list[list[tuple]]] = {}

    def _byzantine_group(self, shard_id: int) -> ReplicatedStorageEngine:
        """One shard's replica group with adversarial response channels.

        Mirrors the single-stack replicated setup: replica 0's *inner*
        engine keeps the shared injector (classic storage faults still
        fire inside exactly one replica per shard), and every replica's
        response channel is Byzantine, driven by the same injector and
        clock so the composed schedule replays byte-identically.
        Replica ids restart at 0 per shard — each shard's group is its
        own failure domain.
        """
        members = []
        for rid in range(self.replicas):
            inner = StorageEngine(
                fault_injector=self.injector if rid == 0 else None
            )
            members.append(
                ByzantineReplica(
                    inner, rid, fault_injector=self.injector, clock=self.clock
                )
            )
        return ReplicatedStorageEngine(
            members,
            clock=self.clock,
            policy=ReplicationPolicy(attempt_timeout=2.0),
        )

    # ------------------------------------------------------------------- ops

    def _attempt(self, op: str, thunk, expected=None) -> ChaosOutcome:
        """Run one op; classify; sometimes heal after typed failures.

        Healing is deliberately *probabilistic* (seeded): immediate
        healing would mask the isolated-shard behaviours this harness
        exists to exercise (partial results, point-to-dead-owner), so
        roughly half the failures leave the fleet degraded for a while.
        """
        outcome = ChaosOutcome(op=op, ok=False, expected=expected)
        started = self.clock.now()
        try:
            outcome.answer = thunk()
        except ConcealerError as error:
            outcome.error = type(error).__name__
            self.slo.record(self.clock.now() - started, ok=False)
            if self.workload_rng.random() < 0.5:
                outcome.recovered = self._heal()
        else:
            outcome.ok = outcome.answer == expected
            self.slo.record(self.clock.now() - started, ok=True)
        self.report.outcomes.append(outcome)
        return outcome

    def _heal(self) -> bool:
        actions = self.sharded.heal()
        readmitted = sum(a["readmitted"] for a in actions.values())
        self.report.recoveries += readmitted
        return readmitted > 0

    def ingest(self, epoch_id: int) -> ChaosOutcome:
        """Two-phase epoch landing; on rollback, heal and retry once.

        The oracle only counts an epoch once the *whole fleet* landed
        it — a rollback leaves both the fleet and the oracle unchanged,
        so a shard serving a half-ingested epoch would show up as
        silent wrongness on later queries.
        """
        records = _epoch_records(epoch_id, self.workload_rng)

        def run():
            counts = ingest_epoch_sharded(self.sharded, records, epoch_id)
            self.oracle[epoch_id] = records
            self.oracle_parts[epoch_id] = self.provider.partition_records(
                records, epoch_id, self.sharded.topology
            )
            return sum(counts.values())

        outcome = self._attempt("ingest", run)
        if outcome.error is None:
            outcome.ok = outcome.answer >= len(records)
        elif epoch_id not in self.oracle:
            self._heal()
            retry = self._attempt("ingest-retry", run)
            if retry.error is None:
                retry.ok = retry.answer >= len(records)
        return outcome

    def point_query(self) -> ChaosOutcome:
        epoch_id, records = self._pick_epoch()
        if records is None:
            return self._skip("point")
        location, timestamp, _ = records[self.workload_rng.randrange(len(records))]
        expected = _point_truth(records, location, timestamp)
        return self._attempt(
            "point",
            lambda: self.sharded.execute_point(
                PointQuery(index_values=(location,), timestamp=timestamp)
            )[0],
            expected,
        )

    def range_query(self) -> ChaosOutcome:
        """A wildcard-location range count, scattered across shards.

        The location slot is a wildcard over several locations so the
        covered cell-ids genuinely span shards.  A full answer is
        checked against full truth; a partial answer against the truth
        restricted to exactly its served shards.
        """
        epoch_id, records = self._pick_epoch()
        if records is None:
            return self._skip("range")
        rng = self.workload_rng
        width = 2 + rng.randrange(len(_LOCATIONS) - 1)
        start = rng.randrange(len(_LOCATIONS))
        locations = tuple(
            _LOCATIONS[(start + i) % len(_LOCATIONS)] for i in range(width)
        )
        t0 = epoch_id + TIME_STEP * rng.randrange(2)
        t1 = t0 + TIME_STEP * (1 + rng.randrange(2))
        method = ("multipoint", "ebpb", "winsecrange")[rng.randrange(3)]
        query = RangeQuery(
            index_values=(locations,), time_start=t0, time_end=t1
        )
        expected = sum(
            _range_truth(records, location, t0, t1) for location in locations
        )

        outcome = ChaosOutcome(op="range", ok=False, expected=expected)
        started = self.clock.now()
        try:
            answer = self.sharded.execute_range(query, method=method)[0]
        except ConcealerError as error:
            outcome.error = type(error).__name__
            self.slo.record(self.clock.now() - started, ok=False)
            if self.workload_rng.random() < 0.5:
                outcome.recovered = self._heal()
        else:
            self.slo.record(self.clock.now() - started, ok=True)
            if isinstance(answer, PartialResult):
                outcome.op = "range-partial"
                outcome.expected = self._partial_truth(
                    epoch_id, answer.served_shards, locations, t0, t1
                )
                outcome.answer = answer.answer
                honest = set(answer.served_shards).isdisjoint(
                    answer.missing_shards
                )
                outcome.ok = honest and outcome.answer == outcome.expected
            else:
                outcome.answer = answer
                outcome.ok = answer == expected
        self.report.outcomes.append(outcome)
        return outcome

    def _partial_truth(
        self, epoch_id, served_shards, locations, t0, t1
    ) -> int:
        parts = self.oracle_parts[epoch_id]
        return sum(
            _range_truth(parts[shard_id], location, t0, t1)
            for shard_id in served_shards
            for location in locations
        )

    def checkpoint_cycle(self) -> ChaosOutcome:
        """Checkpoint the fleet; verify one shard's archive restores."""
        from repro.storage.checkpoint import restore_engine

        victim = self.workload_rng.randrange(self.shard_count)

        def run():
            paths = self.sharded.checkpoint_all()
            restored = restore_engine(paths[victim])
            return sorted(restored.table_names())

        expected = sorted(
            self.sharded.shards[victim].service.engine.table_names()
        )
        return self._attempt("checkpoint", run, expected)

    def rotate_keys(self) -> ChaosOutcome:
        """Two-phase cross-shard rotation; failures converge on the old
        key fleet-wide (which later queries verify implicitly)."""
        from repro.core.rotation import rotation_token

        self._rotations += 1
        new_master = hashlib.sha256(
            b"chaos-sharded-rotation|%d|%d" % (self.seed, self._rotations)
        ).digest()

        def run():
            token = rotation_token(self._master, new_master)
            rotated = rotate_sharded_keys(self.sharded, new_master, token)
            self._master = new_master
            return rotated

        outcome = self._attempt("rotate", run)
        if outcome.error is None:
            outcome.ok = True
        return outcome

    def router_crash(self) -> ChaosOutcome:
        """The front-door process dies and restarts.

        Shard state (host-side storage, enclaves) survives — only the
        router object, its fence, and its plan caches are lost.  The
        rebuilt router must serve correct answers immediately, which
        the following ops check against the unchanged oracle.
        """
        self.sharded = ShardedService(
            self.provider,
            self.sharded.topology,
            self.sharded.shards,
            clock=self.clock,
            config=self.config,
            fault_injector=self.injector,
        )
        outcome = ChaosOutcome(op="router-restart", ok=True)
        self.report.outcomes.append(outcome)
        return outcome

    def _pick_epoch(self):
        if not self.oracle:
            return None, None
        epoch_id = sorted(self.oracle)[
            self.workload_rng.randrange(len(self.oracle))
        ]
        return epoch_id, self.oracle[epoch_id]

    def _skip(self, op: str) -> ChaosOutcome:
        outcome = ChaosOutcome(op=f"{op}-skipped", ok=True)
        self.report.outcomes.append(outcome)
        return outcome

    def final_verify(self) -> None:
        """Heal everything, then demand complete, correct epoch counts.

        This is the re-admission acceptance check: after the run's
        crashes, every shard must recover (re-attest, restore, probe)
        and a wildcard count per epoch must be a *full* (non-partial)
        answer equal to the epoch's true record count.  The injector is
        disarmed first — this sweep measures recovery, not tolerance of
        yet more faults (disarming is deterministic, so replay holds).
        """
        from repro.faults.injector import FAULT_SITES

        for site in FAULT_SITES:
            self.injector.disarm(site)
        self._heal()
        for epoch_id, records in sorted(self.oracle.items()):
            outcome = ChaosOutcome(
                op="final-verify", ok=False, expected=len(records)
            )
            try:
                answer = self.sharded.execute_range(
                    RangeQuery(
                        index_values=(_LOCATIONS,),
                        time_start=epoch_id,
                        time_end=epoch_id + EPOCH_DURATION - 1,
                    ),
                    method="ebpb",
                )[0]
            except ConcealerError as error:
                outcome.error = type(error).__name__
            else:
                outcome.answer = answer
                # A PartialResult here means a shard failed to re-admit:
                # answer != expected (comparing PartialResult to int),
                # so it is classified as not-ok below.
                outcome.ok = answer == len(records)
            self.report.outcomes.append(outcome)

    # ------------------------------------------------------------------- run

    def run(self, ops: int = 12) -> ChaosReport:
        """Execute the seeded schedule over the fleet.

        Spans are captured into a run-scoped tracer (kept on the
        report, like the registry) and the SLO monitor is evaluated
        once at the end of the op stream — *before* the final heal
        sweep, so the alerts describe the faulted workload, not the
        recovery.  Neither feeds ``fingerprint()``: replay determinism
        is about outcomes and the schedule.
        """
        with telemetry.scoped_registry() as registry, \
                telemetry.scoped_tracer(clock=self.clock) as tracer:
            try:
                self.ingest(0)
                for index in range(ops):
                    if self.injector.fire("router.crash") is not None:
                        self.router_crash()
                    if index == ops // 2 and EPOCH_DURATION not in self.oracle:
                        self.ingest(EPOCH_DURATION)
                        continue
                    if index == max(1, (2 * ops) // 3):
                        self.rotate_keys()
                        continue
                    draw = self.workload_rng.random()
                    if draw < 0.35:
                        self.point_query()
                    elif draw < 0.85:
                        self.range_query()
                    else:
                        self.checkpoint_cycle()
                    # Replicated fleets run periodic anti-entropy repair
                    # (fenced against the cross-shard journal) just like
                    # a production repair cron would.
                    if self.replicas > 1 and index % 4 == 3:
                        self.sharded.repair_replicas()
                if self.replicas > 1:
                    self.sharded.repair_replicas()
                self.report.slo_alerts = list(self.slo.evaluate())
                self.final_verify()
            finally:
                self.report.schedule = self.injector.encode_schedule()
                self.report.faults_fired = len(self.injector.fired)
                self.report.telemetry = registry
                self.report.traces = tracer.traces()
                if self._tmp is not None:
                    self._tmp.cleanup()
        return self.report
