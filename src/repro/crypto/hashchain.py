"""Hash chains and verifiable tags (§3, Algorithm 1 lines 16–21).

For every cell-id, the data provider chains the encrypted column values
of the tuples sharing that cell-id:

    h_1 = H(E(v_1))
    h_2 = H(E(v_2) || h_1)
    ...
    h_p = H(E(v_p) || h_{p-1})

The final digest ``h_p``, encrypted with the randomized cipher, is the
*verifiable tag* shipped to the service provider.  During query
execution the enclave recomputes the chain over the rows it fetched and
compares against the decrypted tag — any injected, deleted, reordered or
modified row changes the digest (STEP 4 of Algorithm 2).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.crypto.nondet import RandomizedCipher
from repro.exceptions import IntegrityError

DIGEST_BYTES = 32


def chain_digest(ciphertexts: Iterable[bytes]) -> bytes:
    """Fold an ordered sequence of ciphertexts into one chained digest.

    An empty sequence yields the digest of the empty chain marker, so a
    cell-id with zero tuples still has a well-defined tag.
    """
    digest = hashlib.sha256(b"concealer-chain-init").digest()
    for ciphertext in ciphertexts:
        digest = hashlib.sha256(ciphertext + digest).digest()
    return digest


class HashChain:
    """Incremental builder for one cell-id's hash chain.

    >>> chain = HashChain()
    >>> chain.extend([b"a", b"b"])
    >>> chain.digest() == chain_digest([b"a", b"b"])
    True
    """

    __slots__ = ("_digest", "_length")

    def __init__(self):
        self._digest = hashlib.sha256(b"concealer-chain-init").digest()
        self._length = 0

    def update(self, ciphertext: bytes) -> None:
        """Append one ciphertext to the chain."""
        self._digest = hashlib.sha256(ciphertext + self._digest).digest()
        self._length += 1

    def extend(self, ciphertexts: Iterable[bytes]) -> None:
        """Append each ciphertext in order."""
        for ciphertext in ciphertexts:
            self.update(ciphertext)

    def digest(self) -> bytes:
        """The current chained digest."""
        return self._digest

    def __len__(self) -> int:
        return self._length


@dataclass(frozen=True)
class VerifiableTag:
    """The encrypted per-cell-id tags shipped by the data provider.

    One chained digest per verified column (the paper chains the
    location, observation and full-tuple ciphertext columns separately —
    ``Ehl``, ``Eho``, ``Ehr``).
    """

    cell_id: int
    encrypted_digests: tuple[bytes, ...]

    @classmethod
    def seal(
        cls,
        cell_id: int,
        column_chains: Sequence[bytes],
        cipher: RandomizedCipher,
    ) -> "VerifiableTag":
        """Encrypt the final digests of each column chain into a tag."""
        return cls(
            cell_id=cell_id,
            encrypted_digests=tuple(cipher.encrypt(d) for d in column_chains),
        )

    def verify(self, column_chains: Sequence[bytes], cipher: RandomizedCipher) -> None:
        """Check recomputed digests against the sealed tag.

        Raises :class:`IntegrityError` if the number of columns differs
        or any digest mismatches — i.e. the service provider tampered
        with, dropped, or injected rows for this cell-id.
        """
        if len(column_chains) != len(self.encrypted_digests):
            raise IntegrityError(
                f"cell {self.cell_id}: expected {len(self.encrypted_digests)} "
                f"column digests, got {len(column_chains)}"
            )
        for index, sealed in enumerate(self.encrypted_digests):
            expected = cipher.decrypt(sealed)
            if not _hmac.compare_digest(expected, column_chains[index]):
                raise IntegrityError(
                    f"cell {self.cell_id}: column {index} hash chain mismatch "
                    "(rows tampered, reordered, injected or deleted)"
                )
