"""Key derivation for epochs and rewrites.

§3 of the paper: encrypting with a single key across epochs would make
the same (value, time-bucket) pair produce identical ciphertexts in
different epochs, so Concealer derives a fresh key per epoch,

    k = s_k || eid

where ``s_k`` is the long-term secret shared between the data provider
and the enclave and ``eid`` is the epoch id (the epoch's starting
timestamp).  We realise the concatenation as an HKDF-style PRF call so
that keys remain fixed-length.

§6 (footnote 7) adds a rewrite counter: when the enclave re-encrypts the
rows of a round after a multi-epoch query, it uses

    k = s_k || eid || counter

with a per-round counter incremented on every rewrite — this is what
gives the scheme forward privacy across rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.prf import KEY_BYTES, Prf
from repro.exceptions import KeyDerivationError


def derive_epoch_key(master_key: bytes, epoch_id: int) -> bytes:
    """Derive the per-epoch encryption key ``k = KDF(s_k, eid)``."""
    if not isinstance(epoch_id, int) or epoch_id < 0:
        raise KeyDerivationError(f"epoch id must be a non-negative int, got {epoch_id!r}")
    return Prf(master_key)(b"epoch-key", epoch_id)


def derive_rewrite_key(master_key: bytes, epoch_id: int, counter: int) -> bytes:
    """Derive the §6 rewrite key ``k = KDF(s_k, eid, counter)``.

    ``counter == 0`` corresponds to the original upload key, so
    ``derive_rewrite_key(sk, eid, 0) == derive_epoch_key(sk, eid)``.
    """
    if counter < 0:
        raise KeyDerivationError("rewrite counter must be non-negative")
    if counter == 0:
        return derive_epoch_key(master_key, epoch_id)
    return Prf(master_key)(b"rewrite-key", epoch_id, counter)


@dataclass
class EpochKeySchedule:
    """Tracks the active key for each epoch held by the enclave.

    The enclave learns only the first epoch id and the epoch duration
    (§3); all later epoch ids are derived arithmetically.  The schedule
    also tracks the per-epoch rewrite counter (§6, footnote 7) so the
    enclave always decrypts with the key of the *latest* rewrite.
    """

    master_key: bytes
    first_epoch_id: int
    epoch_duration: int
    _rewrite_counters: dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        if len(self.master_key) != KEY_BYTES:
            raise KeyDerivationError(f"master key must be {KEY_BYTES} bytes")
        if self.epoch_duration <= 0:
            raise KeyDerivationError("epoch duration must be positive")

    def epoch_id_for_time(self, timestamp: int) -> int:
        """Map a timestamp to the id (start time) of its containing epoch."""
        if timestamp < self.first_epoch_id:
            raise KeyDerivationError(
                f"timestamp {timestamp} precedes first epoch {self.first_epoch_id}"
            )
        offset = (timestamp - self.first_epoch_id) // self.epoch_duration
        return self.first_epoch_id + offset * self.epoch_duration

    def current_key(self, epoch_id: int) -> bytes:
        """The key under which the rows of ``epoch_id`` are encrypted *now*."""
        counter = self._rewrite_counters.get(epoch_id, 0)
        return derive_rewrite_key(self.master_key, epoch_id, counter)

    def rewrite_counter(self, epoch_id: int) -> int:
        """The number of §6 rewrites applied to this epoch so far."""
        return self._rewrite_counters.get(epoch_id, 0)

    def advance_rewrite(self, epoch_id: int) -> bytes:
        """Bump the rewrite counter and return the *new* key for the epoch."""
        self._rewrite_counters[epoch_id] = self._rewrite_counters.get(epoch_id, 0) + 1
        return self.current_key(epoch_id)
