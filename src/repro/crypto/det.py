"""Deterministic authenticated encryption — the paper's ``E_k``.

Concealer's central trick (§3) is a *variant of deterministic
encryption*: plain DET would leak the frequency of each value, so every
plaintext is concatenated with its timestamp (``E_k(l || t)``), which
makes each ciphertext unique across the relation while keeping the
scheme deterministic — the enclave can regenerate the exact ciphertext
of any (value, time) pair to use it as an index key or a filter.

The construction here is SIV-style:

    tag = HMAC(k_mac, plaintext)            # synthetic IV, 16 bytes kept
    ct  = CTR-stream(k_enc, nonce=tag) XOR plaintext
    output = tag || ct

Equal plaintexts give equal ciphertexts (deterministic); the tag doubles
as an authentication check on decryption.  Ciphertext length is
``plaintext length + 16`` bytes.
"""

from __future__ import annotations

import hmac as _hmac

from repro.crypto.prf import KEY_BYTES, Prf
from repro.crypto.stream import stream_xor
from repro.exceptions import DecryptionError, KeyDerivationError

TAG_BYTES = 16


class DeterministicCipher:
    """The paper's deterministic encryption function ``E_k``.

    >>> cipher = DeterministicCipher(b"\\x01" * 32)
    >>> ct = cipher.encrypt(b"l1|t1")
    >>> ct == cipher.encrypt(b"l1|t1")   # deterministic
    True
    >>> cipher.decrypt(ct)
    b'l1|t1'
    """

    __slots__ = ("_k_mac", "_k_enc")

    def __init__(self, key: bytes):
        if not isinstance(key, bytes) or len(key) != KEY_BYTES:
            raise KeyDerivationError(f"cipher key must be {KEY_BYTES} bytes")
        prf = Prf(key)
        self._k_mac = prf.derive_key("det-mac")
        self._k_enc = prf.derive_key("det-enc")

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt deterministically; equal inputs yield equal outputs."""
        if not isinstance(plaintext, bytes):
            raise TypeError("plaintext must be bytes")
        tag = Prf(self._k_mac)(plaintext)[:TAG_BYTES]
        body = stream_xor(self._k_enc, tag, plaintext)
        return tag + body

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`DecryptionError` on tamper."""
        if len(ciphertext) < TAG_BYTES:
            raise DecryptionError("ciphertext shorter than authentication tag")
        tag, body = ciphertext[:TAG_BYTES], ciphertext[TAG_BYTES:]
        plaintext = stream_xor(self._k_enc, tag, body)
        expected = Prf(self._k_mac)(plaintext)[:TAG_BYTES]
        if not _hmac.compare_digest(tag, expected):
            raise DecryptionError("ciphertext failed authentication")
        return plaintext

    def encrypt_str(self, text: str) -> bytes:
        """Convenience wrapper: encrypt a UTF-8 string."""
        return self.encrypt(text.encode("utf-8"))

    def decrypt_str(self, ciphertext: bytes) -> str:
        """Convenience wrapper: decrypt to a UTF-8 string."""
        return self.decrypt(ciphertext).decode("utf-8")
