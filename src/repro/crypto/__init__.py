"""Cryptographic substrate for the Concealer reproduction.

The paper encrypts with AES-256 inside an SGX enclave.  This offline
reproduction uses only the Python standard library, so the package
provides equivalent symmetric primitives built on SHA-256 / HMAC-SHA256:

- :mod:`repro.crypto.prf` — a pseudo-random function and helpers to hash
  values into integer ranges (the paper's hash function ``H`` used for
  grid placement).
- :mod:`repro.crypto.stream` — a counter-mode stream cipher keyed by a
  PRF, the substitute for AES-CTR.
- :mod:`repro.crypto.det` — deterministic authenticated encryption
  (SIV-style): the paper's ``E_k``.  Determinism is what makes the
  encrypted ``Index`` column usable as a stock DBMS index key.
- :mod:`repro.crypto.nondet` — randomized authenticated encryption: the
  paper's ``E_nd``, used for the ``cell_id[]`` / ``c_tuple[]`` vectors
  and the verifiable tags.
- :mod:`repro.crypto.keys` — per-epoch key derivation
  (``k = KDF(s_k, eid)``) and re-encryption keys for the §6 rewrite.
- :mod:`repro.crypto.hashchain` — the §3 hash chains and encrypted
  verifiable tags.

All ciphertexts are ``bytes``; all keys are 32-byte secrets.
"""

from repro.crypto.det import DeterministicCipher
from repro.crypto.hashchain import HashChain, chain_digest
from repro.crypto.keys import EpochKeySchedule, derive_epoch_key, derive_rewrite_key
from repro.crypto.nondet import RandomizedCipher
from repro.crypto.prf import Prf, hash_to_range
from repro.crypto.stream import keystream, stream_xor

__all__ = [
    "DeterministicCipher",
    "EpochKeySchedule",
    "HashChain",
    "Prf",
    "RandomizedCipher",
    "chain_digest",
    "derive_epoch_key",
    "derive_rewrite_key",
    "hash_to_range",
    "keystream",
    "stream_xor",
]
