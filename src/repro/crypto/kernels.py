"""Batch crypto kernels — vectorized drop-ins for the scalar primitives.

Every query and every epoch ingest bottoms out in per-tuple crypto:
one DET trapdoor per ``(cell-id, counter)`` slot, one DET/randomized
encryption per row column at ingest, one chain fold per fetched row at
verify.  The scalar modules (:mod:`repro.crypto.prf`,
:mod:`repro.crypto.stream`, :mod:`repro.crypto.det`,
:mod:`repro.crypto.nondet`, :mod:`repro.crypto.hashchain`) pay the full
Python + hashlib setup cost on *every* call:

- ``hmac.new(key, ...)`` re-derives the inner/outer key blocks (two
  SHA-256 compressions plus object construction) per evaluation;
- ``stream_xor`` XORs byte-by-byte in a Python generator;
- ``DeterministicCipher.encrypt`` builds two throwaway ``Prf`` objects
  per plaintext.

This module amortizes all three: one keyed HMAC object per key reused
via ``.copy()`` (the same trick Opaque-style enclave operators use to
keep batched crypto from being CPU-bound), keystreams expanded once per
nonce family and sliced, and XOR done on whole rows as big integers.
Each kernel is **byte-identical** to its scalar counterpart — property
tests in ``tests/crypto/test_kernels.py`` enforce equality over random
keys, nonces and lengths — so callers may mix scalar and batched paths
freely (ingest with kernels, audit with scalars, or vice versa).

Kernel invocations are counted in a public-size telemetry family,
labelled by kernel name.  The counts are functions of *public* volumes
(rows ingested, trapdoors issued, rows verified) at every call site
except record decryption, which passes ``counted=False`` because the
number of successfully matched real rows is data-dependent.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.prf import KEY_BYTES, Prf
from repro.crypto.stream import _BLOCK_BYTES
from repro.exceptions import DecryptionError, KeyDerivationError

DET_TAG_BYTES = 16
ND_NONCE_BYTES = 16
ND_TAG_BYTES = 16

#: Initial digest of the §3 hash chain — ``chain_digest([]) == CHAIN_INIT``.
CHAIN_INIT = hashlib.sha256(b"concealer-chain-init").digest()

_sha256 = hashlib.sha256

# Length prefixes (4-byte big-endian) recur at a handful of fixed widths
# (the padded index/filter/payload plaintexts), so memoize them.
_LEN4_CACHE: dict[int, bytes] = {}

# Keystream block counters likewise: rows are a few blocks long.
_CTR8 = tuple(i.to_bytes(8, "big") for i in range(16))


def _len4(n: int) -> bytes:
    cached = _LEN4_CACHE.get(n)
    if cached is None:
        if len(_LEN4_CACHE) < 4096:
            cached = _LEN4_CACHE[n] = n.to_bytes(4, "big")
        else:
            cached = n.to_bytes(4, "big")
    return cached


def _ctr8(i: int) -> bytes:
    return _CTR8[i] if i < 16 else i.to_bytes(8, "big")


def _check_key(key: bytes) -> bytes:
    if not isinstance(key, bytes) or len(key) != KEY_BYTES:
        raise KeyDerivationError(f"kernel key must be {KEY_BYTES} bytes")
    return key


def _count(kernel: str, items: int) -> None:
    from repro import telemetry

    telemetry.counter(
        "concealer_crypto_kernel_ops_total",
        "batch crypto kernel operations, by kernel (item counts are "
        "functions of public volumes at every counted call site)",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("kernel",),
    ).labels(kernel=kernel).inc(items)


def record_kernel_ops(kernel: str, items: int) -> None:
    """Credit ``items`` operations to a kernel's public op counter.

    For callers that run kernels somewhere the ambient registry can't
    see — chiefly the parallel epoch encryptor, whose worker processes'
    counter writes die with the fork.  The parent calls this with the
    deterministic total so telemetry is identical for every ``workers``
    setting.  Only use with counts that are functions of public volumes.
    """
    _count(kernel, items)


# ------------------------------------------------------------------ xor


def xor_bytes(data: bytes, pad: bytes) -> bytes:
    """XOR ``data`` with the first ``len(data)`` bytes of ``pad``.

    Big-integer XOR: two conversions and one machine-word-wide XOR
    instead of a per-byte Python loop.  Byte-identical to
    ``bytes(a ^ b for a, b in zip(data, pad))``.
    """
    n = len(data)
    if n == 0:
        return b""
    return (
        int.from_bytes(data, "little") ^ int.from_bytes(pad[:n], "little")
    ).to_bytes(n, "little")


# ------------------------------------------------------------------ PRF


class BatchPrf:
    """A :class:`~repro.crypto.prf.Prf` that amortizes HMAC key setup.

    ``hmac.new(key)`` costs two SHA-256 compressions to derive the
    ipad/opad blocks; this class pays that once and ``.copy()``-s the
    primed object per evaluation.  Outputs are byte-identical to
    ``Prf(key)(*parts)``.
    """

    __slots__ = ("_base", "_raw")

    def __init__(self, key: bytes):
        self._base = hmac.new(_check_key(key), digestmod=hashlib.sha256)
        # CPython's hmac module is a thin Python wrapper around an
        # OpenSSL HMAC object; copying/updating that object directly
        # skips one wrapper layer per evaluation (~1.4× per op) while
        # producing identical digests.  The wrapper itself exposes the
        # same copy/update/digest trio, so it doubles as the fallback
        # on interpreters without the private attribute.
        self._raw = getattr(self._base, "_hmac", None) or self._base

    def __call__(self, *parts: bytes | str | int) -> bytes:
        mac = self._raw.copy()
        for part in parts:
            if type(part) is bytes:
                encoded = b"B" + part
            else:
                from repro.crypto.prf import _as_bytes

                encoded = _as_bytes(part)
            mac.update(_len4(len(encoded)))
            mac.update(encoded)
        return mac.digest()

    def digest_raw(self, data: bytes) -> bytes:
        """HMAC over ``data`` with no Prf part-encoding (keystream use)."""
        mac = self._raw.copy()
        mac.update(data)
        return mac.digest()


def batch_prf(key: bytes, inputs: list[bytes], out: list | None = None) -> list[bytes]:
    """``[Prf(key)(x) for x in inputs]`` with one amortized keyed hash.

    ``out``, if given, must be a list of ``len(inputs)`` slots; results
    are written in place and the same list returned (preallocated
    output-buffer style, avoids a growing append loop for large spans).
    """
    prf = BatchPrf(key)
    results = out if out is not None else [b""] * len(inputs)
    for i, data in enumerate(inputs):
        results[i] = prf(data)
    return results


# ------------------------------------------------------------- keystream


def expand_keystream(base: BatchPrf, nonce: bytes, length: int) -> bytes:
    """Keystream for ``(key, nonce)`` off a primed HMAC base object.

    Byte-identical to :func:`repro.crypto.stream.keystream`.
    """
    if length <= 0:
        if length < 0:
            raise ValueError("length must be non-negative")
        return b""
    raw = base._raw
    if length <= _BLOCK_BYTES:
        mac = raw.copy()
        mac.update(nonce + _CTR8[0])
        return mac.digest()[:length]
    # Prime the nonce once; each block then only feeds its counter.
    # HMAC is incremental, so update(nonce+ctr) == update(nonce);
    # update(ctr) — the stream is byte-identical either way.
    primed = raw.copy()
    primed.update(nonce)
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        mac = primed.copy()
        mac.update(_ctr8(counter))
        blocks.append(mac.digest())
        produced += _BLOCK_BYTES
        counter += 1
    return b"".join(blocks)[:length]


def batch_keystream(
    key: bytes, requests: list[tuple[bytes, int]], out: list | None = None
) -> list[bytes]:
    """Keystreams for many ``(nonce, length)`` requests under one key.

    The keyed HMAC base is primed once for the whole batch, and
    requests sharing a nonce (a "nonce family" — e.g. the same trapdoor
    re-derived at several widths) expand the stream **once** to the
    family's maximum length and slice it per request.  Byte-identical
    to ``[keystream(key, n, l) for n, l in requests]``.
    """
    base = BatchPrf(key)
    results = out if out is not None else [b""] * len(requests)
    # Group by nonce, preserving per-request output order.
    families: dict[bytes, list[int]] = {}
    for i, (nonce, length) in enumerate(requests):
        families.setdefault(nonce, []).append(i)
    for nonce, indices in families.items():
        longest = max(requests[i][1] for i in indices)
        stream = expand_keystream(base, nonce, longest)
        for i in indices:
            results[i] = stream[: requests[i][1]]
    return results


# ------------------------------------------------------------ DET cipher


class DetKernel:
    """Batched drop-in for :class:`~repro.crypto.det.DeterministicCipher`.

    Same key schedule (sub-keys ``det-mac`` / ``det-enc`` derived with
    the scalar :class:`Prf`), same SIV construction, byte-identical
    ciphertexts — but the two keyed HMAC objects are primed once per
    kernel and copied per row.
    """

    __slots__ = ("_mac", "_enc")

    def __init__(self, key: bytes):
        _check_key(key)
        prf = Prf(key)
        self._mac = BatchPrf(prf.derive_key("det-mac"))
        self._enc = BatchPrf(prf.derive_key("det-enc"))

    def encrypt(self, plaintext: bytes) -> bytes:
        """Scalar-compatible single encryption off the primed bases."""
        mac = self._mac._raw.copy()
        encoded = b"B" + plaintext
        mac.update(_len4(len(encoded)))
        mac.update(encoded)
        tag = mac.digest()[:DET_TAG_BYTES]
        pad = expand_keystream(self._enc, tag, len(plaintext))
        return tag + xor_bytes(plaintext, pad)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < DET_TAG_BYTES:
            raise DecryptionError("ciphertext shorter than authentication tag")
        tag, body = ciphertext[:DET_TAG_BYTES], ciphertext[DET_TAG_BYTES:]
        pad = expand_keystream(self._enc, tag, len(body))
        plaintext = xor_bytes(body, pad)
        mac = self._mac._raw.copy()
        encoded = b"B" + plaintext
        mac.update(_len4(len(encoded)))
        mac.update(encoded)
        if not hmac.compare_digest(tag, mac.digest()[:DET_TAG_BYTES]):
            raise DecryptionError("ciphertext failed authentication")
        return plaintext

    def encrypt_many(
        self, plaintexts, out: list | None = None, counted: bool = True
    ) -> list[bytes]:
        """``[det.encrypt(p) for p in plaintexts]``, amortized.

        The keystream expansion is inlined (no per-item function call,
        raw HMAC objects throughout) — this loop is the single hottest
        site of Algorithm 1 ingest.
        """
        results = out if out is not None else [b""] * len(plaintexts)
        mac_raw = self._mac._raw
        enc_raw = self._enc._raw
        block = _BLOCK_BYTES
        from_le = int.from_bytes
        for i, plaintext in enumerate(plaintexts):
            mac = mac_raw.copy()
            encoded = b"B" + plaintext
            mac.update(_len4(len(encoded)))
            mac.update(encoded)
            tag = mac.digest()[:DET_TAG_BYTES]
            n = len(plaintext)
            if n == 0:
                results[i] = tag
                continue
            if n <= block:
                pad = enc_raw.copy()
                pad.update(tag + _CTR8[0])
                pad = pad.digest()
            else:
                primed = enc_raw.copy()
                primed.update(tag)
                blocks = []
                produced = 0
                counter = 0
                while produced < n:
                    km = primed.copy()
                    km.update(_ctr8(counter))
                    blocks.append(km.digest())
                    produced += block
                    counter += 1
                pad = b"".join(blocks)
            results[i] = tag + (
                from_le(plaintext, "little") ^ from_le(pad[:n], "little")
            ).to_bytes(n, "little")
        if counted:
            _count("det_encrypt", len(plaintexts))
        return results

    def decrypt_many(
        self,
        ciphertexts,
        out: list | None = None,
        errors: str = "raise",
        counted: bool = True,
    ) -> list:
        """``[det.decrypt(c) for c in ciphertexts]``, amortized.

        ``errors="none"`` maps undecryptable items (fakes, tampered
        rows) to ``None`` instead of raising, so callers can locate the
        offending index or skip fakes without a per-row try/except.
        """
        results = out if out is not None else [None] * len(ciphertexts)
        mac_raw = self._mac._raw
        enc = self._enc
        for i, ciphertext in enumerate(ciphertexts):
            if len(ciphertext) < DET_TAG_BYTES:
                if errors == "raise":
                    raise DecryptionError("ciphertext shorter than authentication tag")
                results[i] = None
                continue
            tag, body = ciphertext[:DET_TAG_BYTES], ciphertext[DET_TAG_BYTES:]
            pad = expand_keystream(enc, tag, len(body))
            plaintext = xor_bytes(body, pad)
            mac = mac_raw.copy()
            encoded = b"B" + plaintext
            mac.update(_len4(len(encoded)))
            mac.update(encoded)
            if not hmac.compare_digest(tag, mac.digest()[:DET_TAG_BYTES]):
                if errors == "raise":
                    raise DecryptionError("ciphertext failed authentication")
                results[i] = None
                continue
            results[i] = plaintext
        if counted:
            _count("det_decrypt", len(ciphertexts))
        return results


def batch_det_encrypt(key: bytes, plaintexts, counted: bool = True) -> list[bytes]:
    """One-shot batched DET encryption under ``key``."""
    return DetKernel(key).encrypt_many(plaintexts, counted=counted)


def batch_det_decrypt(
    key: bytes, ciphertexts, errors: str = "raise", counted: bool = True
) -> list:
    """One-shot batched DET decryption under ``key``."""
    return DetKernel(key).decrypt_many(ciphertexts, errors=errors, counted=counted)


# ------------------------------------------------------------- ND cipher


class NdKernel:
    """Batched drop-in for :class:`~repro.crypto.nondet.RandomizedCipher`.

    Nonces are drawn from the supplied ``rng`` (``randbytes``) in call
    order, exactly as the scalar cipher draws them, so a batch of
    encryptions consumes the RNG identically to the equivalent scalar
    loop — the property the byte-identical ``workers=N`` ingest relies
    on.  Without an ``rng`` nonces come from ``os.urandom``.
    """

    __slots__ = ("_mac", "_enc", "_rng")

    def __init__(self, key: bytes, rng=None):
        _check_key(key)
        prf = Prf(key)
        self._mac = BatchPrf(prf.derive_key("nd-mac"))
        self._enc = BatchPrf(prf.derive_key("nd-enc"))
        self._rng = rng

    def _nonce(self) -> bytes:
        if self._rng is not None:
            return self._rng.randbytes(ND_NONCE_BYTES)
        import os

        return os.urandom(ND_NONCE_BYTES)

    def encrypt(self, plaintext: bytes) -> bytes:
        nonce = self._nonce()
        pad = expand_keystream(self._enc, nonce, len(plaintext))
        body = xor_bytes(plaintext, pad)
        tag = self._prf_tag(nonce + body)
        return nonce + body + tag

    def _prf_tag(self, data: bytes) -> bytes:
        mac = self._mac._raw.copy()
        encoded = b"B" + data
        mac.update(_len4(len(encoded)))
        mac.update(encoded)
        return mac.digest()[:ND_TAG_BYTES]

    def encrypt_many(
        self, plaintexts, out: list | None = None, counted: bool = True
    ) -> list[bytes]:
        """``[nd.encrypt(p) for p in plaintexts]``; one RNG draw per item,
        in item order."""
        results = out if out is not None else [b""] * len(plaintexts)
        for i, plaintext in enumerate(plaintexts):
            nonce = self._nonce()
            pad = expand_keystream(self._enc, nonce, len(plaintext))
            body = xor_bytes(plaintext, pad)
            results[i] = nonce + body + self._prf_tag(nonce + body)
        if counted:
            _count("nd_encrypt", len(plaintexts))
        return results

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < ND_NONCE_BYTES + ND_TAG_BYTES:
            raise DecryptionError("ciphertext too short")
        nonce = ciphertext[:ND_NONCE_BYTES]
        body = ciphertext[ND_NONCE_BYTES:-ND_TAG_BYTES]
        tag = ciphertext[-ND_TAG_BYTES:]
        if not hmac.compare_digest(tag, self._prf_tag(nonce + body)):
            raise DecryptionError("ciphertext failed authentication")
        pad = expand_keystream(self._enc, nonce, len(body))
        return xor_bytes(body, pad)

    def decrypt_many(
        self, ciphertexts, out: list | None = None, counted: bool = True
    ) -> list[bytes]:
        results = out if out is not None else [b""] * len(ciphertexts)
        for i, ciphertext in enumerate(ciphertexts):
            results[i] = self.decrypt(ciphertext)
        if counted:
            _count("nd_decrypt", len(ciphertexts))
        return results


# ------------------------------------------------------------ hash chain


def extend_chain(digest: bytes, ciphertexts) -> bytes:
    """Fold ``ciphertexts`` onto an existing chain digest.

    ``extend_chain(CHAIN_INIT, cts) == chain_digest(cts)`` and the fold
    composes: ``extend_chain(extend_chain(d, a), b) ==
    extend_chain(d, a + b)``.
    """
    sha = _sha256
    for ciphertext in ciphertexts:
        digest = sha(ciphertext + digest).digest()
    return digest


def batch_chain_extend(
    digests: list[bytes],
    ciphertext_lists,
    out: list | None = None,
    counted: bool = True,
) -> list[bytes]:
    """Fold many independent chains: ``out[i] = extend_chain(digests[i],
    ciphertext_lists[i])``.

    Per-cell chains are independent (Algorithm 1 lines 16–21 chain each
    cell-id separately), so the batch is a flat loop with the SHA-256
    constructor bound once; items processed = total ciphertexts folded,
    a function of the public fetched/ingested volume.
    """
    results = out if out is not None else [b""] * len(digests)
    sha = _sha256
    folded = 0
    for i, (digest, ciphertexts) in enumerate(zip(digests, ciphertext_lists)):
        for ciphertext in ciphertexts:
            digest = sha(ciphertext + digest).digest()
            folded += 1
        results[i] = digest
    if counted:
        _count("chain_extend", folded)
    return results
