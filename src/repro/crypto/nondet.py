"""Randomized authenticated encryption — the paper's ``E_nd``.

Concealer uses non-deterministic encryption for everything that must
*not* be matchable across rows: the ``cell_id[]`` and ``c_tuple[]``
vectors shipped alongside an epoch, the encrypted verifiable tags, and
the bodies of fake tuples (Table 2c shows fakes as ``E_nd(fake)``).

Construction: encrypt-then-MAC over a CTR stream with a fresh random
nonce per call.

    nonce = 16 random bytes
    ct    = CTR-stream(k_enc, nonce) XOR plaintext
    tag   = HMAC(k_mac, nonce || ct)[:16]
    output = nonce || ct || tag

Two encryptions of the same plaintext are distinct with overwhelming
probability.
"""

from __future__ import annotations

import hmac as _hmac
import os

from repro.crypto.prf import KEY_BYTES, Prf
from repro.crypto.stream import stream_xor
from repro.exceptions import DecryptionError, KeyDerivationError

NONCE_BYTES = 16
TAG_BYTES = 16


class RandomizedCipher:
    """The paper's randomized encryption function ``E_nd``.

    >>> cipher = RandomizedCipher(b"\\x02" * 32)
    >>> a, b = cipher.encrypt(b"same"), cipher.encrypt(b"same")
    >>> a == b            # randomized: same plaintext, different ciphertext
    False
    >>> cipher.decrypt(a) == cipher.decrypt(b) == b"same"
    True

    ``rng`` may be supplied for deterministic tests; it must expose
    ``randbytes(n)`` (e.g. ``random.Random``).
    """

    __slots__ = ("_k_mac", "_k_enc", "_rng")

    def __init__(self, key: bytes, rng=None):
        if not isinstance(key, bytes) or len(key) != KEY_BYTES:
            raise KeyDerivationError(f"cipher key must be {KEY_BYTES} bytes")
        prf = Prf(key)
        self._k_mac = prf.derive_key("nd-mac")
        self._k_enc = prf.derive_key("nd-enc")
        self._rng = rng

    def _nonce(self) -> bytes:
        if self._rng is not None:
            return self._rng.randbytes(NONCE_BYTES)
        return os.urandom(NONCE_BYTES)

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt with a fresh nonce; repeated calls differ."""
        if not isinstance(plaintext, bytes):
            raise TypeError("plaintext must be bytes")
        nonce = self._nonce()
        body = stream_xor(self._k_enc, nonce, plaintext)
        tag = Prf(self._k_mac)(nonce + body)[:TAG_BYTES]
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Decrypt and authenticate; raises :class:`DecryptionError` on tamper."""
        if len(ciphertext) < NONCE_BYTES + TAG_BYTES:
            raise DecryptionError("ciphertext too short")
        nonce = ciphertext[:NONCE_BYTES]
        body = ciphertext[NONCE_BYTES:-TAG_BYTES]
        tag = ciphertext[-TAG_BYTES:]
        expected = Prf(self._k_mac)(nonce + body)[:TAG_BYTES]
        if not _hmac.compare_digest(tag, expected):
            raise DecryptionError("ciphertext failed authentication")
        return stream_xor(self._k_enc, nonce, body)
