"""Counter-mode stream cipher keyed by HMAC-SHA256.

The paper encrypts with AES-256; this environment has no AES package,
so we substitute a CTR-mode stream built from the same HMAC-SHA256 PRF
used elsewhere.  Security rests on HMAC-SHA256 being a PRF, exactly as
AES-CTR rests on AES being a PRP — the library code paths (encrypt,
decrypt, key-per-epoch) are unchanged by the substitution.
"""

from __future__ import annotations

import hashlib
import hmac

_BLOCK_BYTES = 32


def keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Produce ``length`` pseudo-random bytes for ``(key, nonce)``.

    Blocks are ``HMAC(key, nonce || counter)`` — distinct nonces give
    computationally independent streams.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks = []
    produced = 0
    counter = 0
    while produced < length:
        block = hmac.new(
            key, nonce + counter.to_bytes(8, "big"), hashlib.sha256
        ).digest()
        blocks.append(block)
        produced += _BLOCK_BYTES
        counter += 1
    return b"".join(blocks)[:length]


def stream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with the keystream for ``(key, nonce)``.

    The operation is its own inverse: applying it twice with the same
    key and nonce returns the original data.
    """
    pad = keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, pad))
