"""Pseudo-random function built on HMAC-SHA256.

The paper uses two flavours of keyed hashing:

- the hash function ``H`` that maps locations / time sub-intervals onto
  grid rows and columns (Algorithm 1, *Cell-Formation*), and
- the PRF underlying the deterministic cipher ``E_k``.

Both are provided here.  :func:`hash_to_range` is the grid-placement
hash: it is *keyed* so the untrusted service provider cannot recompute
cell placements from public attribute values alone — only the enclave
and the data provider (who share the secret) can.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.exceptions import KeyDerivationError

KEY_BYTES = 32
DIGEST_BYTES = 32


def _as_bytes(value: bytes | str | int) -> bytes:
    """Canonically encode a value for hashing.

    Integers use a length-prefixed big-endian form so that, e.g., the
    integer 1 and the string "1" never collide.
    """
    if isinstance(value, bytes):
        return b"B" + value
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        return b"I" + len(raw).to_bytes(2, "big") + raw
    raise TypeError(f"cannot hash value of type {type(value).__name__}")


class Prf:
    """A keyed pseudo-random function ``F_k: bytes -> 32 bytes``.

    >>> f = Prf(b"\\x00" * 32)
    >>> f(b"hello") == f(b"hello")
    True
    >>> f(b"hello") == f(b"world")
    False
    """

    __slots__ = ("_key",)

    def __init__(self, key: bytes):
        if not isinstance(key, bytes) or len(key) != KEY_BYTES:
            raise KeyDerivationError(
                f"PRF key must be {KEY_BYTES} bytes, got {len(key) if isinstance(key, bytes) else type(key).__name__}"
            )
        self._key = key

    def __call__(self, *parts: bytes | str | int) -> bytes:
        """Evaluate the PRF on the canonical encoding of ``parts``.

        Multiple parts are domain-separated with length prefixes, so
        ``f("ab", "c") != f("a", "bc")``.
        """
        mac = hmac.new(self._key, digestmod=hashlib.sha256)
        for part in parts:
            encoded = _as_bytes(part)
            mac.update(len(encoded).to_bytes(4, "big"))
            mac.update(encoded)
        return mac.digest()

    def derive_key(self, label: str) -> bytes:
        """Derive an independent 32-byte sub-key for the given label."""
        return self(b"subkey", label)

    def to_int(self, *parts: bytes | str | int) -> int:
        """Evaluate the PRF and interpret the digest as a 256-bit integer."""
        return int.from_bytes(self(*parts), "big")


def hash_to_range(key: bytes, value: bytes | str | int, modulus: int) -> int:
    """Map ``value`` pseudo-randomly into ``[0, modulus)``.

    This is the paper's grid hash ``H`` — used by Algorithm 1 to place a
    location onto one of ``x`` columns and a time sub-interval onto one
    of ``y`` rows.  A 256-bit digest reduced mod ``modulus`` has bias
    below 2^-220 for any modulus that fits in memory, which is
    negligible for our purposes.
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return Prf(key).to_int(b"grid-hash", value) % modulus
