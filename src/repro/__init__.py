"""Concealer (EDBT 2021) — a full Python reproduction.

Concealer lets a trusted data provider outsource encrypted spatial
time-series data to an untrusted service provider hosting a secure
enclave, which answers aggregation queries over a stock DBMS index
while hiding output sizes (fixed-size bins of real+fake tuples),
partially hiding access patterns, and supporting hash-chain
verifiability, forward-private dynamic insertion, and workload-attack
defences.

Quick start::

    from repro import (
        DataProvider, ServiceProvider, Client, GridSpec, WIFI_SCHEMA,
    )

    spec = GridSpec(dimension_sizes=(16, 64), cell_id_count=256,
                    epoch_duration=3600)
    provider = DataProvider(WIFI_SCHEMA, spec, first_epoch_id=0)
    service = ServiceProvider(WIFI_SCHEMA)
    provider.provision_enclave(service.enclave)

    credential = provider.register_user("alice", device_id="dev-1")
    service.install_registry(provider.sealed_registry())

    records = [("ap1", 120, "dev-1"), ("ap2", 130, "dev-2")]
    service.ingest_epoch(provider.encrypt_epoch(records, epoch_id=0))

    client = Client(service, credential)
    print(client.point_count(("ap1",), 120).answer)   # -> 1

Package map: :mod:`repro.core` (the paper's contribution),
:mod:`repro.crypto` / :mod:`repro.storage` / :mod:`repro.enclave`
(substrates), :mod:`repro.workloads` (WiFi + TPC-H generators),
:mod:`repro.baselines` (Opaque-style scan, cleartext, leaky DET),
:mod:`repro.analysis` (leakage profiles and attacks).
"""

from repro.core import (
    Aggregate,
    Bin,
    BinLayout,
    Client,
    DataProvider,
    DatasetSchema,
    DynamicConcealer,
    EpochEncryptor,
    EpochPackage,
    FakeStrategy,
    Grid,
    GridSpec,
    MultiIndexDeployment,
    PointQuery,
    QueryResult,
    RangeQuery,
    Registry,
    ServiceProvider,
    TPCH_2D_SCHEMA,
    TPCH_4D_SCHEMA,
    UserCredential,
    WIFI_OBS_SCHEMA,
    WIFI_SCHEMA,
    pack_bins,
)
from repro.core.queries import Predicate, QueryStats
from repro.core.service import ServiceConfig
from repro.exceptions import (
    ConcealerError,
    IntegrityViolation,
    PermanentError,
    TransientError,
)
from repro.faults import (
    FaultInjector,
    FaultSpec,
    QuarantineLog,
    RetryPolicy,
    VirtualClock,
)
from repro.faults.recovery import RecoveryCoordinator
from repro.sharding import (
    AsyncShardRouter,
    PartialResult,
    ShardTopology,
    ShardedConfig,
    ShardedService,
)

__version__ = "1.0.0"

__all__ = [
    "Aggregate",
    "AsyncShardRouter",
    "Bin",
    "BinLayout",
    "Client",
    "ConcealerError",
    "DataProvider",
    "DatasetSchema",
    "DynamicConcealer",
    "EpochEncryptor",
    "EpochPackage",
    "FakeStrategy",
    "FaultInjector",
    "FaultSpec",
    "Grid",
    "GridSpec",
    "IntegrityViolation",
    "MultiIndexDeployment",
    "PartialResult",
    "PermanentError",
    "PointQuery",
    "Predicate",
    "QuarantineLog",
    "QueryResult",
    "QueryStats",
    "RangeQuery",
    "RecoveryCoordinator",
    "Registry",
    "RetryPolicy",
    "ServiceConfig",
    "ServiceProvider",
    "ShardTopology",
    "ShardedConfig",
    "ShardedService",
    "TransientError",
    "TPCH_2D_SCHEMA",
    "TPCH_4D_SCHEMA",
    "UserCredential",
    "VirtualClock",
    "WIFI_OBS_SCHEMA",
    "WIFI_SCHEMA",
    "pack_bins",
    "__version__",
]
