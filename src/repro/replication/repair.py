"""Anti-entropy repair: re-sync quarantined replicas from healthy peers.

The repairer walks the engine's quarantine worklist — every (replica,
table) scope a failed verification or write divergence put there — and
rebuilds each quarantined table from a trustworthy snapshot:

- **Peer source.**  When two or more healthy peers hold the table,
  their snapshots are digest-compared and the majority wins — a peer
  whose *stored* state silently rotted (never caught on the read path
  because it was never asked) cannot poison the repair.  A single
  healthy peer is trusted as-is.
- **Master source.**  When no healthy peer holds the table, an
  optional ``master_source`` callback (wired to the data provider via
  :class:`~repro.faults.recovery.RecoveryCoordinator`) reconstructs
  the encrypted rows from the retained epoch packages.
- **Stored-state quorum.**  When even the master declines (e.g. after
  a key rotation invalidated the retained packages), a strict majority
  of byte-identical *stored* snapshots across the whole group —
  quarantined members included — is adopted: quarantine distrusts a
  replica's response channel, not its disk, and independent rot cannot
  mint a matching majority.

Every repair is **fenced against epoch rotation**: the engine's
rewrite generation is captured before the snapshot and re-checked by
:meth:`~repro.replication.engine.ReplicatedStorageEngine.resync_replica`
at apply time.  A rotation that begins (or completes) in between aborts
the repair with :class:`~repro.exceptions.RepairFenced` — applying a
pre-rotation snapshot would resurrect old-key ciphertexts that no
longer verify.  Fenced repairs stay on the worklist and succeed on the
next pass.

Repair outcomes are public-size telemetry: counts of repairs by
outcome reveal fault behaviour, not data.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro import telemetry
from repro.exceptions import RepairFenced
from repro.replication.engine import ReplicatedStorageEngine
from repro.storage.table import Row

# master_source(table) -> (column_names, rows, indexed_columns) | None
MasterSource = Callable[
    [str], "tuple[Sequence[str], Sequence[Row], Sequence[str]] | None"
]


@dataclass(frozen=True)
class RepairOutcome:
    """One repair attempt's result, for reports and assertions."""

    replica_id: int
    table: str
    outcome: str  # "repaired" | "fenced" | "no-source"
    rows: int = 0
    source: str = ""  # "peer:<id>" | "majority:<k>/<n>" | "master" | "quorum:<k>/<n>" | ""


def _snapshot_digest(rows: Sequence[Row]) -> str:
    """A stable digest of a table snapshot for majority comparison."""
    digest = hashlib.sha256()
    for row in sorted(rows, key=lambda r: r.row_id):
        digest.update(str(row.row_id).encode())
        for column in row.columns:
            payload = column if isinstance(column, bytes) else str(column).encode()
            digest.update(len(payload).to_bytes(4, "big"))
            digest.update(payload)
    return digest.hexdigest()


class AntiEntropyRepairer:
    """Drains the quarantine worklist by re-syncing replicas."""

    def __init__(
        self,
        engine: ReplicatedStorageEngine,
        master_source: MasterSource | None = None,
        fence: Callable[[], bool] | None = None,
    ):
        self.engine = engine
        self.master_source = master_source
        # An *external* fence beyond the engine's own rewrite flag: in a
        # sharded fleet a two-phase rotation holds some OTHER shard
        # between prepare and commit while this shard's engine already
        # committed (its rewrite_in_progress is False again).  Applying
        # a repair then would race the fleet-wide journal — a phase-2
        # crash reverse-rotates every committed shard, and the repair's
        # snapshot would be rewritten under keys the journal is about
        # to roll back.  The callable returns True while the cross-shard
        # operation is in flight; repairs decline with "fenced".
        self.fence = fence

    def run_once(self) -> list[RepairOutcome]:
        """One repair pass over the current quarantine worklist."""
        outcomes = []
        for replica_id, table in self.engine.tables_needing_repair():
            outcomes.append(self._repair(replica_id, table))
        return outcomes

    def run_until_clean(self, max_passes: int = 3) -> list[RepairOutcome]:
        """Repeat passes until the worklist drains or stops shrinking.

        Fenced and source-less repairs can clear up between passes
        (rotation finishing, peers recovering); anything still stuck
        after ``max_passes`` is left quarantined for the operator.
        """
        outcomes: list[RepairOutcome] = []
        for _ in range(max_passes):
            batch = self.run_once()
            outcomes.extend(batch)
            if not batch or all(o.outcome == "repaired" for o in batch):
                break
        return outcomes

    # -------------------------------------------------------------- internal

    def _repair(self, replica_id: int, table: str) -> RepairOutcome:
        engine = self.engine
        if engine.rewrite_in_progress:
            return self._outcome(replica_id, table, "fenced")
        if self.fence is not None and self.fence():
            return self._outcome(replica_id, table, "fenced")
        generation = engine.rewrite_generation
        chosen = self._choose_source(replica_id, table)
        if chosen is None:
            return self._outcome(replica_id, table, "no-source")
        column_names, rows, indexed, source = chosen
        try:
            installed = engine.resync_replica(
                replica_id,
                table,
                column_names,
                rows,
                indexed,
                expected_generation=generation,
            )
        except RepairFenced:
            return self._outcome(replica_id, table, "fenced")
        engine.quarantine.clear(replica_id, table)
        engine.breakers[replica_id].reset()
        return self._outcome(
            replica_id, table, "repaired", rows=installed, source=source
        )

    def _choose_source(self, replica_id: int, table: str):
        """Pick a trustworthy snapshot: peer majority, lone peer, master."""
        engine = self.engine
        quarantined = {rid for rid, _ in engine.quarantine.tables()}
        peers = [
            rid
            for rid in range(len(engine.replicas))
            if rid != replica_id
            and rid not in quarantined
            and engine.breakers[rid].state == "closed"
            and engine.replicas[rid].has_table(table)
        ]
        if peers:
            snapshots = {
                rid: engine.replicas[rid].snapshot_rows(table) for rid in peers
            }
            if len(peers) == 1:
                rid = peers[0]
                return (
                    engine.replicas[rid].column_names(table),
                    snapshots[rid],
                    engine.replicas[rid].indexed_columns(table),
                    f"peer:{rid}",
                )
            by_digest: dict[str, list[int]] = {}
            for rid in peers:
                by_digest.setdefault(_snapshot_digest(snapshots[rid]), []).append(rid)
            majority = max(by_digest.values(), key=len)
            rid = majority[0]
            return (
                engine.replicas[rid].column_names(table),
                snapshots[rid],
                engine.replicas[rid].indexed_columns(table),
                f"majority:{len(majority)}/{len(peers)}",
            )
        if self.master_source is not None:
            reconstructed = self.master_source(table)
            if reconstructed is not None:
                column_names, rows, indexed = reconstructed
                return (column_names, rows, indexed, "master")
        # Last resort: a stored-state quorum across the WHOLE group,
        # quarantined members included.  Quarantine marks a replica's
        # *response channel* untrusted (tampered answers, stale
        # replays), not its disk — a Byzantine response channel leaves
        # stored rows untouched.  When every peer is quarantined and
        # the master declines, a strict majority of byte-identical
        # stored snapshots cannot have arisen from independent rot, so
        # it is adopted as truth and the group re-converges instead of
        # staying wedged forever.
        holders = [
            rid
            for rid in range(len(engine.replicas))
            if engine.replicas[rid].has_table(table)
        ]
        if len(holders) > 1:
            snapshots = {
                rid: engine.replicas[rid].snapshot_rows(table)
                for rid in holders
            }
            by_digest: dict[str, list[int]] = {}
            for rid in holders:
                by_digest.setdefault(
                    _snapshot_digest(snapshots[rid]), []
                ).append(rid)
            quorum = max(by_digest.values(), key=len)
            if len(quorum) > len(engine.replicas) // 2:
                rid = quorum[0]
                return (
                    engine.replicas[rid].column_names(table),
                    snapshots[rid],
                    engine.replicas[rid].indexed_columns(table),
                    f"quorum:{len(quorum)}/{len(holders)}",
                )
        return None

    def _outcome(
        self,
        replica_id: int,
        table: str,
        outcome: str,
        rows: int = 0,
        source: str = "",
    ) -> RepairOutcome:
        telemetry.counter(
            "concealer_replica_repairs_total",
            "anti-entropy repair attempts, by outcome",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("outcome",),
        ).labels(outcome=outcome).inc()
        return RepairOutcome(replica_id, table, outcome, rows=rows, source=source)
