"""The replicated bin store: verify-then-failover over N replicas.

:class:`ReplicatedStorageEngine` fronts N independent
:class:`~repro.storage.engine.StorageEngine` replicas (optionally
wrapped in :class:`~repro.replication.byzantine.ByzantineReplica`
response channels) and presents the same interface the enclave already
speaks — so the query executors work unchanged against one engine or
five.

The read path is the point of the layer.  A bin fetch is attempted
against replicas in health order; each attempt is

1. gated by the replica's circuit breaker and the read's deadline,
2. timed against the per-attempt budget (a stalling replica becomes a
   typed :class:`~repro.exceptions.ReplicaTimeout`, not a hang), and
3. *verified before acceptance* when the caller supplies a verifier
   (the enclave's hash-chain check) — a replica that returns rows
   failing verification is treated exactly like one that crashed.

A failed attempt quarantines the replica for the affected (table,
cell-id), records a breaker failure, and fails over to the next
replica.  Only when every replica is exhausted does the read raise:
:class:`~repro.exceptions.IntegrityViolation` if *all* answers were
tampered (loud, permanent), else
:class:`~repro.exceptions.NoHealthyReplica` (transient — the service's
retry policy backs off, breakers reach half-open, and the read probes
again).

Writes fan out to every replica.  Replica-local write failures do not
fail the operation while at least one replica applied it; divergent
replicas are quarantined for the table and re-synced later by the
:class:`~repro.replication.repair.AntiEntropyRepairer`.

All health signals exported here — breaker states, failover and
degraded-read counters, healthy-replica gauge — are public-size: they
are functions of fault behaviour and request arrival, never of the
plaintext data.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro import telemetry
from repro.exceptions import (
    IntegrityViolation,
    NoHealthyReplica,
    RepairFenced,
    ReplicaTimeout,
    StorageError,
    TransientStorageError,
)
from repro.faults.clock import SystemClock
from repro.replication.breaker import BreakerConfig, CircuitBreaker
from repro.replication.deadline import Deadline
from repro.storage.table import Row

# EWMA smoothing for per-replica attempt latency (hedged-read ordering).
_LATENCY_ALPHA = 0.3


@dataclass(frozen=True)
class ReplicationPolicy:
    """Tunables for the replicated read/write paths.

    ``min_healthy`` is the replica count below which reads are flagged
    *degraded* (default: all replicas — any unhealthy peer degrades).
    ``attempt_timeout`` bounds one replica attempt on the injectable
    clock; ``None`` disables the budget.  With ``hedge`` enabled, read
    order prefers replicas whose smoothed latency is below
    ``hedge_threshold`` seconds, demoting known stragglers before their
    breakers trip.
    """

    min_healthy: int | None = None
    attempt_timeout: float | None = 2.0
    hedge: bool = False
    hedge_threshold: float = 1.0
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self):
        if self.min_healthy is not None and self.min_healthy < 1:
            raise ValueError("min_healthy must be >= 1")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be positive")
        if self.hedge_threshold <= 0:
            raise ValueError("hedge_threshold must be positive")


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined scope: a replica's (table, cell-id or whole table)."""

    replica_id: int
    table: str
    cell_id: int | None
    kind: str


class ReplicaQuarantine:
    """Per-replica, per-cell-id read quarantine.

    A replica that served a bad bin is quarantined for that (table,
    cell-id): reads hinted with those cell-ids skip it, and reads with
    no hint skip it for the whole table (conservative — an unhinted
    read might touch the bad bin).  ``cell_id=None`` quarantines the
    whole table (write divergence, stored-state tampering).
    """

    def __init__(self):
        # (replica_id, table) -> set of cell_ids; None means whole table.
        self._scopes: dict[tuple[int, str], set[int | None]] = {}
        self.entries: list[QuarantineEntry] = []

    def record(
        self, replica_id: int, table: str, cell_id: int | None, kind: str
    ) -> None:
        """Quarantine one replica scope and log the structured entry."""
        self._scopes.setdefault((replica_id, table), set()).add(cell_id)
        self.entries.append(QuarantineEntry(replica_id, table, cell_id, kind))
        telemetry.gauge(
            "concealer_replica_quarantined_scopes",
            "quarantined (table, cell) scopes per replica",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("replica",),
        ).labels(replica=str(replica_id)).set(
            sum(
                len(cells)
                for (rid, _), cells in self._scopes.items()
                if rid == replica_id
            )
        )

    def blocks(
        self,
        replica_id: int,
        table: str,
        cells: Iterable[int] | None = None,
    ) -> bool:
        """Whether this replica should be skipped for a read.

        With a cell hint, only intersecting quarantines (or a
        whole-table quarantine) block; without one, any quarantine on
        the table blocks.
        """
        scoped = self._scopes.get((replica_id, table))
        if not scoped:
            return False
        if None in scoped or cells is None:
            return True
        return any(cell in scoped for cell in cells)

    def tables(self) -> list[tuple[int, str]]:
        """All quarantined (replica_id, table) pairs, sorted — the
        anti-entropy repairer's worklist."""
        return sorted(self._scopes)

    def clear(self, replica_id: int, table: str) -> None:
        """Lift the quarantine for one replica's table (post-repair)."""
        self._scopes.pop((replica_id, table), None)
        telemetry.gauge(
            "concealer_replica_quarantined_scopes",
            "quarantined (table, cell) scopes per replica",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("replica",),
        ).labels(replica=str(replica_id)).set(
            sum(
                len(cells)
                for (rid, _), cells in self._scopes.items()
                if rid == replica_id
            )
        )

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._scopes.values())


class ReplicatedStorageEngine:
    """N-replica storage with verify-then-failover reads.

    Drop-in for :class:`~repro.storage.engine.StorageEngine` on every
    interface the service and enclave use; the enclave detects the
    richer read contract via :attr:`supports_replicated_reads` and
    passes its verifier and deadline down.
    """

    supports_replicated_reads = True

    def __init__(
        self,
        replicas: Sequence,
        clock=None,
        policy: ReplicationPolicy | None = None,
    ):
        if not replicas:
            raise ValueError("at least one replica is required")
        self.replicas = list(replicas)
        self.clock = clock if clock is not None else SystemClock()
        self.policy = policy or ReplicationPolicy()
        self.quarantine = ReplicaQuarantine()
        self.breakers = [
            CircuitBreaker(
                self.clock,
                failure_threshold=self.policy.breaker.failure_threshold,
                reset_timeout=self.policy.breaker.reset_timeout,
                name=str(rid),
            )
            for rid in range(len(self.replicas))
        ]
        # Smoothed per-replica attempt latency, for hedged read order.
        self._latency = [0.0] * len(self.replicas)
        # Epoch-rewrite fence: repair must not interleave with rotation.
        self.rewrite_generation = 0
        self.rewrite_in_progress = False
        # Read-path health flags the executors surface in QueryStats.
        self.degraded = False
        self.last_read_failovers = 0

    # ---------------------------------------------------------------- health

    @property
    def min_healthy(self) -> int:
        """Replica count below which reads are flagged degraded."""
        if self.policy.min_healthy is None:
            return len(self.replicas)
        return min(self.policy.min_healthy, len(self.replicas))

    def candidate_replicas(
        self, table: str, cells: Iterable[int] | None = None
    ) -> list[int]:
        """Replica ids eligible for a read, in preference order.

        Excludes quarantined and hard-open breakers (a breaker past its
        cool-down still qualifies — ``allow()`` decides at attempt
        time).  With hedging, stragglers sort after fast replicas.
        """
        cells = list(cells) if cells is not None else None
        eligible = [
            rid
            for rid in range(len(self.replicas))
            if not self.quarantine.blocks(rid, table, cells)
        ]
        if self.policy.hedge:
            eligible.sort(
                key=lambda rid: (self._latency[rid] > self.policy.hedge_threshold,)
            )
        return eligible

    def healthy_replica_count(self) -> int:
        """Replicas with a closed breaker and no quarantine at all."""
        quarantined = {rid for rid, _ in self.quarantine.tables()}
        healthy = sum(
            1
            for rid, breaker in enumerate(self.breakers)
            if breaker.state == "closed" and rid not in quarantined
        )
        telemetry.gauge(
            "concealer_replicas_healthy",
            "replicas with a closed breaker and no quarantined scopes",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set(healthy)
        return healthy

    # -------------------------------------------------------- rotation fence

    def begin_rewrite(self) -> int:
        """Fence the repairer out while an epoch rewrite is in flight."""
        self.rewrite_generation += 1
        self.rewrite_in_progress = True
        return self.rewrite_generation

    def end_rewrite(self) -> int:
        """Lift the rewrite fence; bumps the generation so any repair
        that captured pre-rewrite state aborts instead of applying."""
        self.rewrite_generation += 1
        self.rewrite_in_progress = False
        return self.rewrite_generation

    # ------------------------------------------------------------------- DDL

    def create_table(self, name: str, column_names: Sequence[str]) -> None:
        self._fanout("create_table", name, lambda r: r.create_table(name, column_names))

    def drop_table(self, name: str) -> None:
        self._fanout("drop_table", name, lambda r: r.drop_table(name))

    def create_index(self, table: str, column: str) -> None:
        self._fanout("create_index", table, lambda r: r.create_index(table, column))

    def has_table(self, name: str) -> bool:
        return self._primary().has_table(name)

    def table_names(self) -> list[str]:
        return self._primary().table_names()

    def column_names(self, table: str) -> tuple[str, ...]:
        return self._primary().column_names(table)

    def indexed_columns(self, table: str) -> list[str]:
        return self._primary().indexed_columns(table)

    # ------------------------------------------------------------------- DML

    def insert(self, table: str, columns: Sequence) -> int:
        return self._fanout("insert", table, lambda r: r.insert(table, columns))

    def insert_many(self, table: str, rows: Sequence[Sequence]) -> list[int]:
        return [self.insert(table, row) for row in rows]

    def delete(self, table: str, row_id: int) -> None:
        self._fanout("delete", table, lambda r: r.delete(table, row_id))

    def overwrite(self, table: str, row_id: int, columns: Sequence) -> None:
        self._fanout(
            "overwrite", table, lambda r: r.overwrite(table, row_id, columns)
        )

    # ----------------------------------------------------------------- reads

    def lookup_many(
        self,
        table: str,
        column: str,
        keys: Sequence,
        verifier: Callable[[list[Row]], None] | None = None,
        deadline: Deadline | None = None,
        cells: Iterable[int] | None = None,
    ) -> list[Row]:
        """Batched bin fetch with verify-then-failover semantics.

        ``verifier`` (the enclave's ``verify_rows``) runs against each
        replica's answer *before* it is accepted; ``cells`` hints which
        cell-ids the trapdoors cover so quarantine can be skipped at
        bin granularity; ``deadline`` is checked before every attempt.
        """
        self.last_read_failovers = 0
        candidates = self.candidate_replicas(table, cells)
        healthy = self.healthy_replica_count()
        self.degraded = healthy < self.min_healthy
        if self.degraded:
            telemetry.counter(
                "concealer_degraded_reads_total",
                "reads served below the healthy-replica threshold",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
        if self.policy.hedge and candidates and candidates[0] != min(candidates):
            telemetry.counter(
                "concealer_hedged_reads_total",
                "reads whose replica order was hedged away from a straggler",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
        with telemetry.span(
            "replication.lookup", table=table, keys=len(keys), candidates=len(candidates)
        ):
            last_error: Exception | None = None
            failures = 0
            violations = 0
            # Quarantine and breakers express *preference*, not safety:
            # every answer is verified against the tag chain before it
            # is accepted, so when the eligible pool is exhausted the
            # quarantined replicas are tried as a verified last resort
            # rather than failing a read whose data may be perfectly
            # intact (a tampered *response channel* leaves stored rows
            # untouched).
            excluded = [
                rid
                for rid in range(len(self.replicas))
                if rid not in set(candidates)
            ]
            for last_resort, pool in ((False, candidates), (True, excluded)):
                for rid in pool:
                    if deadline is not None:
                        deadline.check("replication.attempt")
                    breaker = self.breakers[rid]
                    if not last_resort and not breaker.allow():
                        continue
                    started = self.clock.now()
                    try:
                        rows = self.replicas[rid].lookup_many(table, column, keys)
                        elapsed = self.clock.now() - started
                        timeout = self.policy.attempt_timeout
                        if timeout is not None and elapsed > timeout:
                            raise ReplicaTimeout(
                                f"replica {rid} answered in {elapsed:.3f}s, "
                                f"over the {timeout:.3f}s attempt budget"
                            )
                        if verifier is not None:
                            verifier(rows)
                    except IntegrityViolation as violation:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "integrity")
                        self.quarantine.record(
                            rid, table, violation.cell_id, violation.kind
                        )
                        last_error = violation
                        failures += 1
                        violations += 1
                        continue
                    except ReplicaTimeout as error:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "timeout")
                        last_error = error
                        failures += 1
                        continue
                    except TransientStorageError as error:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "transient")
                        last_error = error
                        failures += 1
                        continue
                    except StorageError as error:
                        # Permanent storage failure on this replica — a
                        # host that lost its disk (missing table, torn
                        # page).  Fail over like any other replica
                        # fault, and quarantine the whole table so
                        # anti-entropy repair re-installs it from a
                        # healthy peer rather than every future read
                        # re-discovering the loss.
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "storage-error")
                        self.quarantine.record(
                            rid, table, None, f"storage-error:{type(error).__name__}"
                        )
                        last_error = error
                        failures += 1
                        continue
                    self._observe_latency(rid, started)
                    breaker.record_success()
                    self.last_read_failovers = failures
                    if last_resort:
                        telemetry.counter(
                            "concealer_replica_last_resort_reads_total",
                            "verified reads served by a quarantined or "
                            "breaker-open replica after the eligible "
                            "pool was exhausted",
                            secrecy=telemetry.PUBLIC_SIZE,
                        ).inc()
                    return rows
            self.last_read_failovers = failures
            if violations and violations == failures and last_error is not None:
                # Every replica that answered answered with tampered
                # rows — surface the integrity violation itself so the
                # service quarantines the cell and refuses to guess.
                raise last_error
            raise NoHealthyReplica(
                f"no replica could serve {table!r} "
                f"({len(candidates)} candidates, {failures} failed, "
                f"{len(self.replicas) - len(candidates)} quarantined/skipped)"
            ) from last_error

    def store_packed_bins(self, table: str, packed_bins: Sequence) -> None:
        """Install the columnar sidecar on every replica."""
        self._fanout(
            "store_packed_bins",
            table,
            lambda r: r.store_packed_bins(table, packed_bins),
        )

    def has_packed_bins(self, table: str) -> bool:
        return self._primary(table).has_packed_bins(table)

    def fetch_packed_bin(
        self,
        table: str,
        bin_index: int,
        verifier: Callable | None = None,
        deadline: Deadline | None = None,
        cells: Iterable[int] | None = None,
    ):
        """Whole-bin columnar read with verify-then-failover semantics.

        Mirrors :meth:`lookup_many`: same breaker gating, per-attempt
        timeout, verification before acceptance, quarantine scoping and
        failover accounting.  Two deliberate differences keep the scalar
        path authoritative for rare states: a replica *without* a packed
        sidecar (post-repair, post-rotation) short-circuits the whole
        read to ``None``, and an exhausted pool also returns ``None`` —
        in both cases the caller falls back to the scalar row fetch,
        which re-runs the failover loop and raises the authoritative
        error if the table is truly unserveable.
        """
        self.last_read_failovers = 0
        candidates = self.candidate_replicas(table, cells)
        healthy = self.healthy_replica_count()
        self.degraded = healthy < self.min_healthy
        if self.degraded:
            telemetry.counter(
                "concealer_degraded_reads_total",
                "reads served below the healthy-replica threshold",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
        if self.policy.hedge and candidates and candidates[0] != min(candidates):
            telemetry.counter(
                "concealer_hedged_reads_total",
                "reads whose replica order was hedged away from a straggler",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
        with telemetry.span(
            "replication.lookup",
            table=table,
            bin=bin_index,
            candidates=len(candidates),
        ):
            failures = 0
            excluded = [
                rid
                for rid in range(len(self.replicas))
                if rid not in set(candidates)
            ]
            for last_resort, pool in ((False, candidates), (True, excluded)):
                for rid in pool:
                    if deadline is not None:
                        deadline.check("replication.attempt")
                    breaker = self.breakers[rid]
                    if not last_resort and not breaker.allow():
                        continue
                    fetch = getattr(self.replicas[rid], "fetch_packed_bin", None)
                    if fetch is None:
                        self.last_read_failovers = failures
                        return None
                    started = self.clock.now()
                    try:
                        packed = fetch(table, bin_index)
                        elapsed = self.clock.now() - started
                        timeout = self.policy.attempt_timeout
                        if timeout is not None and elapsed > timeout:
                            raise ReplicaTimeout(
                                f"replica {rid} answered in {elapsed:.3f}s, "
                                f"over the {timeout:.3f}s attempt budget"
                            )
                        if packed is not None and verifier is not None:
                            verifier(packed)
                    except IntegrityViolation as violation:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "integrity")
                        self.quarantine.record(
                            rid, table, violation.cell_id, violation.kind
                        )
                        failures += 1
                        continue
                    except ReplicaTimeout:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "timeout")
                        failures += 1
                        continue
                    except TransientStorageError:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "transient")
                        failures += 1
                        continue
                    except StorageError as error:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "storage-error")
                        self.quarantine.record(
                            rid, table, None, f"storage-error:{type(error).__name__}"
                        )
                        failures += 1
                        continue
                    self._observe_latency(rid, started)
                    self.last_read_failovers = failures
                    if packed is None:
                        # This replica has no packed sidecar — scalar
                        # fallback, without charging the breaker.
                        return None
                    breaker.record_success()
                    if last_resort:
                        telemetry.counter(
                            "concealer_replica_last_resort_reads_total",
                            "verified reads served by a quarantined or "
                            "breaker-open replica after the eligible "
                            "pool was exhausted",
                            secrecy=telemetry.PUBLIC_SIZE,
                        ).inc()
                    return packed
            self.last_read_failovers = failures
            return None

    def store_agg_tree(self, table: str, tree) -> None:
        """Install the aggregate-tree sidecar on every replica."""
        self._fanout(
            "store_agg_tree", table, lambda r: r.store_agg_tree(table, tree)
        )

    def has_agg_tree(self, table: str) -> bool:
        return self._primary(table).has_agg_tree(table)

    def fetch_agg_tree_meta(self, table: str):
        """The tree's public shape + sealed directory from a healthy peer.

        Maintenance-plane read: everything in the meta is public shape
        or E_nd ciphertext whose authenticated decryption (inside the
        enclave) is itself the tamper check, so no failover loop is
        needed — a tampered meta fails loudly at decryption time.
        """
        return self._primary(table).fetch_agg_tree_meta(table)

    def fetch_tree_nodes(
        self,
        table: str,
        coords: Sequence[tuple],
        verifier: Callable | None = None,
        deadline: Deadline | None = None,
        cells: Iterable[int] | None = None,
    ):
        """Tree-node batch read with verify-then-failover semantics.

        Mirrors :meth:`fetch_packed_bin`: breaker gating, per-attempt
        timeout, verification (the enclave's node MAC + position check)
        before acceptance, quarantine scoping, failover accounting.  A
        replica without a tree sidecar — or an exhausted pool — returns
        ``None`` and the caller falls back to the bin path, which is
        authoritative for errors.
        """
        self.last_read_failovers = 0
        candidates = self.candidate_replicas(table, cells)
        healthy = self.healthy_replica_count()
        self.degraded = healthy < self.min_healthy
        if self.degraded:
            telemetry.counter(
                "concealer_degraded_reads_total",
                "reads served below the healthy-replica threshold",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
        if self.policy.hedge and candidates and candidates[0] != min(candidates):
            telemetry.counter(
                "concealer_hedged_reads_total",
                "reads whose replica order was hedged away from a straggler",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
        with telemetry.span(
            "replication.lookup",
            table=table,
            keys=len(coords),
            candidates=len(candidates),
        ):
            failures = 0
            excluded = [
                rid
                for rid in range(len(self.replicas))
                if rid not in set(candidates)
            ]
            for last_resort, pool in ((False, candidates), (True, excluded)):
                for rid in pool:
                    if deadline is not None:
                        deadline.check("replication.attempt")
                    breaker = self.breakers[rid]
                    if not last_resort and not breaker.allow():
                        continue
                    fetch = getattr(self.replicas[rid], "fetch_tree_nodes", None)
                    if fetch is None:
                        self.last_read_failovers = failures
                        return None
                    started = self.clock.now()
                    try:
                        nodes = fetch(table, coords)
                        elapsed = self.clock.now() - started
                        timeout = self.policy.attempt_timeout
                        if timeout is not None and elapsed > timeout:
                            raise ReplicaTimeout(
                                f"replica {rid} answered in {elapsed:.3f}s, "
                                f"over the {timeout:.3f}s attempt budget"
                            )
                        if nodes is not None and verifier is not None:
                            verifier(nodes)
                    except IntegrityViolation as violation:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "integrity")
                        self.quarantine.record(
                            rid, table, violation.cell_id, violation.kind
                        )
                        failures += 1
                        continue
                    except ReplicaTimeout:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "timeout")
                        failures += 1
                        continue
                    except TransientStorageError:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "transient")
                        failures += 1
                        continue
                    except StorageError as error:
                        self._observe_latency(rid, started)
                        self._record_failure(rid, breaker, "storage-error")
                        self.quarantine.record(
                            rid, table, None, f"storage-error:{type(error).__name__}"
                        )
                        failures += 1
                        continue
                    self._observe_latency(rid, started)
                    self.last_read_failovers = failures
                    if nodes is None:
                        # This replica has no tree sidecar — bin-path
                        # fallback, without charging the breaker.
                        return None
                    breaker.record_success()
                    if last_resort:
                        telemetry.counter(
                            "concealer_replica_last_resort_reads_total",
                            "verified reads served by a quarantined or "
                            "breaker-open replica after the eligible "
                            "pool was exhausted",
                            secrecy=telemetry.PUBLIC_SIZE,
                        ).inc()
                    return nodes
            self.last_read_failovers = failures
            return None

    def fetch_row(self, table: str, row_id: int) -> Row:
        return self._primary(table).fetch_row(table, row_id)

    def lookup(self, table: str, column: str, key) -> list[Row]:
        return self._primary(table).lookup(table, column, key)

    def range_lookup(self, table: str, column: str, low, high) -> list[Row]:
        return self._primary(table).range_lookup(table, column, low, high)

    def scan(self, table: str) -> Iterator[Row]:
        return self._primary(table).scan(table)

    def snapshot_rows(self, table: str) -> list[Row]:
        return self._primary(table).snapshot_rows(table)

    def row_count(self, table: str) -> int:
        return self._primary(table).row_count(table)

    def index_size(self, table: str, column: str) -> int:
        return self._primary(table).index_size(table, column)

    @property
    def access_log(self):
        """Replica 0's access log — one host's honest-but-curious view.

        The leakage experiments analyse a single adversary's vantage
        point; each replica host sees only its own accesses.
        """
        return self.replicas[0].access_log

    # ---------------------------------------------------------------- repair

    def tables_needing_repair(self) -> list[tuple[int, str]]:
        """The anti-entropy worklist: quarantined (replica, table) pairs."""
        return self.quarantine.tables()

    def resync_replica(
        self,
        replica_id: int,
        table: str,
        column_names: Sequence[str],
        rows: Sequence[Row],
        indexed_columns: Sequence[str],
        expected_generation: int,
    ) -> int:
        """Adopt a snapshot into one replica's table, behind the fence.

        Refuses with :class:`RepairFenced` if an epoch rewrite started
        (or completed) since the snapshot was taken — applying would
        resurrect pre-rotation ciphertexts.
        """
        if self.rewrite_in_progress or self.rewrite_generation != expected_generation:
            raise RepairFenced(
                f"repair of replica {replica_id} table {table!r} fenced: "
                f"rewrite generation moved {expected_generation} -> "
                f"{self.rewrite_generation}"
                + (" (rewrite in progress)" if self.rewrite_in_progress else "")
            )
        return self.replicas[replica_id].rebuild_table(
            table, column_names, rows, indexed_columns
        )

    def checkpoint_source(self):
        """The unwrapped engine checkpoints should be cut from.

        Prefers a healthy replica; unwraps any Byzantine response
        channel so the checkpoint captures stored state, not served
        state.
        """
        quarantined = {rid for rid, _ in self.quarantine.tables()}
        for rid, replica in enumerate(self.replicas):
            if self.breakers[rid].state == "closed" and rid not in quarantined:
                return getattr(replica, "inner", replica)
        replica = self.replicas[0]
        return getattr(replica, "inner", replica)

    # -------------------------------------------------------------- internal

    def _primary(self, table: str | None = None):
        """First replica eligible to serve maintenance-plane reads."""
        quarantined = {rid for rid, _ in self.quarantine.tables()}
        for rid, replica in enumerate(self.replicas):
            if rid in quarantined:
                continue
            if table is not None and self.quarantine.blocks(rid, table):
                continue
            if self.breakers[rid].state != "open":
                return replica
        return self.replicas[0]

    def _fanout(self, op: str, table: str, apply: Callable) -> object:
        """Apply a write/DDL to every replica; quarantine divergence.

        If *no* replica applied the operation the first error is
        re-raised (nothing changed — safe to retry).  If some replicas
        diverged, the operation succeeds and the stragglers are
        quarantined for the table until repair re-syncs them.
        """
        result: object = None
        succeeded = False
        errors: list[tuple[int, Exception]] = []
        for rid, replica in enumerate(self.replicas):
            try:
                value = apply(replica)
            except StorageError as error:
                errors.append((rid, error))
                continue
            if not succeeded:
                result = value
                succeeded = True
        if not succeeded:
            raise errors[0][1]
        for rid, error in errors:
            self._record_failure(rid, self.breakers[rid], "write-divergence")
            self.quarantine.record(rid, table, None, f"write-divergence:{op}")
        return result

    def _record_failure(self, rid: int, breaker: CircuitBreaker, reason: str) -> None:
        breaker.record_failure()
        telemetry.counter(
            "concealer_replica_failovers_total",
            "replica attempts abandoned for the next peer, by reason",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("reason",),
        ).labels(reason=reason).inc()

    def _observe_latency(self, rid: int, started: float) -> None:
        elapsed = self.clock.now() - started
        previous = self._latency[rid]
        self._latency[rid] = (
            elapsed
            if previous == 0.0
            else (1.0 - _LATENCY_ALPHA) * previous + _LATENCY_ALPHA * elapsed
        )
