"""A Byzantine storage replica: correct storage, adversarial responses.

Wraps one :class:`~repro.storage.engine.StorageEngine` and perturbs its
*read responses* under the seeded fault injector — the replica-targeted
misbehaviours §7's hash chains must detect and the replication layer
must survive:

- ``replica.tamper`` — flip bytes of one row in the returned batch
  (a tampering SP);
- ``replica.replay.stale`` — serve a remembered earlier batch instead
  of the live rows (a stale-epoch replay: after a key rotation the
  remembered ciphertexts no longer decrypt, which is exactly how the
  enclave catches it);
- ``replica.bin.drop`` — drop rows from the batch (bin suppression);
- ``replica.slow`` — stall on the injectable clock past the read
  budget (a straggler or resource-exhaustion attack).

Writes and DDL pass through untouched — the Byzantine model here is a
replica whose *stored* state converges with its peers but whose
*served* state may lie.  Persistent stored-state corruption (the other
half of the model) is available via :meth:`corrupt_stored`, which the
degraded-mode tests use to build a permanently tampering replica.
"""

from __future__ import annotations

from repro.faults.clock import SystemClock
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.storage.engine import StorageEngine
from repro.storage.table import Row

# How long a `replica.slow` stall lasts — deliberately longer than any
# sane per-attempt budget so the fault reliably converts to a timeout.
SLOW_STALL_SECONDS = 5.0


class ByzantineReplica:
    """One replica's engine behind an adversarial response channel."""

    def __init__(
        self,
        inner: StorageEngine,
        replica_id: int,
        fault_injector: FaultInjector | None = None,
        clock=None,
        slow_stall: float = SLOW_STALL_SECONDS,
    ):
        self.inner = inner
        self.replica_id = replica_id
        self.fault_injector = fault_injector or NULL_INJECTOR
        self.clock = clock if clock is not None else SystemClock()
        self.slow_stall = slow_stall
        # Last batch served per table — the replay fault's ammunition.
        self._remembered: dict[str, list[Row]] = {}
        # Same, for the columnar read path: last packed bin per
        # (table, bin_index).
        self._remembered_packed: dict[tuple[str, int], object] = {}
        # Same, for the aggregate-tree read path: last node batch per
        # (table, coordinate tuple).
        self._remembered_tree: dict[tuple[str, tuple], list] = {}
        # Tables whose *stored* rows were persistently corrupted.
        self.tampered_tables: set[str] = set()

    # ------------------------------------------------------------ read path

    def lookup_many(self, table: str, column: str, keys) -> list[Row]:
        """The adversarial response channel for batched bin fetches."""
        injector = self.fault_injector
        if injector.fire("replica.slow") is not None:
            # The stall is observable time, not an error: the replicated
            # engine's per-attempt budget is what converts it into a
            # typed ReplicaTimeout.
            self.clock.sleep(self.slow_stall)
        stale = None
        if injector.fire("replica.replay.stale") is not None:
            stale = self._remembered.get(table)
        if stale is not None:
            return list(stale)
        rows = self.inner.lookup_many(table, column, keys)
        self._remembered[table] = list(rows)
        if rows and injector.fire("replica.tamper") is not None:
            victim = injector.choose(len(rows), "replica.tamper")
            row = rows[victim]
            position = injector.choose(len(row.columns), "replica.tamper")
            columns = list(row.columns)
            if isinstance(columns[position], bytes):
                columns[position] = injector.corrupt_bytes(
                    columns[position], site="replica.tamper"
                )
                rows[victim] = Row(row_id=row.row_id, columns=tuple(columns))
        if rows and injector.fire("replica.bin.drop") is not None:
            del rows[injector.choose(len(rows), "replica.bin.drop")]
        return rows

    def fetch_packed_bin(self, table: str, bin_index: int):
        """The same adversarial channel for whole-bin columnar reads.

        Must be intercepted explicitly: without it ``__getattr__`` would
        delegate straight to the wrapped engine and the packed path
        would silently bypass the adversary the chaos corpus arms.
        """
        injector = self.fault_injector
        if injector.fire("replica.slow") is not None:
            self.clock.sleep(self.slow_stall)
        stale = None
        if injector.fire("replica.replay.stale") is not None:
            stale = self._remembered_packed.get((table, bin_index))
        if stale is not None:
            return stale
        packed = self.inner.fetch_packed_bin(table, bin_index)
        if packed is None:
            return None
        self._remembered_packed[(table, bin_index)] = packed
        if packed.row_count and injector.fire("replica.tamper") is not None:
            victim = injector.choose(packed.row_count, "replica.tamper")
            position = injector.choose(len(packed.columns), "replica.tamper")
            packed = packed.with_corrupted_cell(
                victim,
                position,
                lambda cell: injector.corrupt_bytes(cell, site="replica.tamper"),
            )
        if packed.row_count and injector.fire("replica.bin.drop") is not None:
            packed = packed.without_row(
                injector.choose(packed.row_count, "replica.bin.drop")
            )
        return packed

    def fetch_tree_nodes(self, table: str, coords):
        """The same adversarial channel for aggregate-tree node reads.

        Intercepted explicitly for the same reason as
        :meth:`fetch_packed_bin` — otherwise ``__getattr__`` would hand
        the tree path an honest engine.  ``replica.tamper`` flips bytes
        of one returned node ciphertext; ``replica.bin.drop`` drops a
        node from the batch (the enclave detects the count mismatch).
        """
        injector = self.fault_injector
        if injector.fire("replica.slow") is not None:
            self.clock.sleep(self.slow_stall)
        key = (table, tuple(coords))
        stale = None
        if injector.fire("replica.replay.stale") is not None:
            stale = self._remembered_tree.get(key)
        if stale is not None:
            return list(stale)
        nodes = self.inner.fetch_tree_nodes(table, coords)
        if nodes is None:
            return None
        self._remembered_tree[key] = list(nodes)
        if nodes and injector.fire("replica.tamper") is not None:
            victim = injector.choose(len(nodes), "replica.tamper")
            nodes[victim] = injector.corrupt_bytes(
                nodes[victim], site="replica.tamper"
            )
        if nodes and injector.fire("replica.bin.drop") is not None:
            del nodes[injector.choose(len(nodes), "replica.bin.drop")]
        return nodes

    # --------------------------------------------- persistent stored tamper

    def corrupt_stored(self, table: str, every: int = 1) -> int:
        """Corrupt the replica's *stored* rows in place (persistently).

        Flips one byte of the first filter column of every ``every``-th
        row (the column stays unindexed, so the row is still *found* by
        its trapdoor — and then fails its hash chain).  Models a replica
        whose disk state was tampered with: all of its responses for the
        table fail verification until an anti-entropy repair resyncs it
        from a healthy peer.  Returns the number of rows corrupted.
        """
        tampered = 0
        for row in list(self.inner.snapshot_rows(table)):
            if row.row_id % every:
                continue
            columns = list(row.columns)
            payload = columns[0]
            if isinstance(payload, bytes) and payload:
                columns[0] = payload[:-1] + bytes([payload[-1] ^ 0x5A])
                self.inner.overwrite(table, row.row_id, columns)
                tampered += 1
        if tampered:
            self.tampered_tables.add(table)
        return tampered

    # --------------------------------------------------------- delegation

    def __getattr__(self, name: str):
        # Everything not intercepted (DDL, writes, scans, counts, the
        # access log) behaves exactly like the wrapped engine.
        return getattr(self.inner, name)
