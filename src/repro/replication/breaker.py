"""Per-replica circuit breakers (closed → open → half-open).

A replica that keeps failing — timeouts, transient errors, integrity
violations — should stop being asked at all for a while: every doomed
attempt burns deadline budget and (for Byzantine replicas) gives the
adversary another response to poison.  The breaker trips *open* after
``failure_threshold`` consecutive failures; reads skip open replicas.
After ``reset_timeout`` seconds on the injectable clock the breaker
admits a single *half-open* probe: success closes it, failure re-opens
it for another full timeout.

State transitions are exported as a public-size gauge — breaker state
is a function of fault behaviour, never of the plaintext data.

>>> from repro.faults.clock import VirtualClock
>>> clock = VirtualClock()
>>> breaker = CircuitBreaker(clock, failure_threshold=2, reset_timeout=10.0)
>>> breaker.record_failure(); breaker.record_failure(); breaker.state
'open'
>>> breaker.allow()                     # still inside the cool-down
False
>>> clock.sleep(10.0); breaker.allow()  # one half-open probe admitted
True
>>> breaker.state
'half-open'
>>> breaker.record_success(); breaker.state
'closed'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

# Gauge encoding: exported numerically so dashboards can alert on it.
_STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery tunables shared by every replica's breaker."""

    failure_threshold: int = 3
    reset_timeout: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")


class CircuitBreaker:
    """One replica's health gate, driven by an injectable clock."""

    def __init__(
        self,
        clock,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        name: str = "",
    ):
        self.clock = clock
        self.config = BreakerConfig(failure_threshold, reset_timeout)
        self.name = name
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._export()

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        return self._state

    def allow(self) -> bool:
        """Whether a request may be sent to this replica right now.

        An open breaker past its cool-down transitions to half-open and
        admits exactly one probe; further calls return ``False`` until
        the probe's outcome is recorded.
        """
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            if self.clock.now() - self._opened_at >= self.config.reset_timeout:
                self._transition(HALF_OPEN)
                return True
            return False
        # Half-open with its probe outstanding: no second probe.
        return False

    def record_success(self) -> None:
        """A request to this replica verified and returned in budget."""
        self._consecutive_failures = 0
        if self._state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """A request failed (timeout, transient error, bad integrity)."""
        self._consecutive_failures += 1
        if self._state == HALF_OPEN:
            self._open()
        elif (
            self._state == CLOSED
            and self._consecutive_failures >= self.config.failure_threshold
        ):
            self._open()

    def reset(self) -> None:
        """Force-close (e.g. after an anti-entropy repair resynced us)."""
        self._consecutive_failures = 0
        self._transition(CLOSED)

    # ------------------------------------------------------------- internals

    def _open(self) -> None:
        self._opened_at = self.clock.now()
        self._transition(OPEN)

    def _transition(self, state: str) -> None:
        if state != self._state:
            telemetry.counter(
                "concealer_replica_breaker_transitions_total",
                "circuit-breaker state changes, by replica and new state",
                secrecy=telemetry.PUBLIC_SIZE,
                labels=("replica", "state"),
            ).labels(replica=self.name, state=state).inc()
        self._state = state
        self._export()

    def _export(self) -> None:
        telemetry.gauge(
            "concealer_replica_breaker_state",
            "breaker state per replica (0=closed, 1=open, 2=half-open)",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("replica",),
        ).labels(replica=self.name).set(_STATE_CODES[self._state])
