"""Deadline budgets propagated service → enclave → storage.

A :class:`Deadline` is minted once per request at the service edge and
threaded *down* the stack: the enclave checks it before formulating a
fetch, the replicated engine checks it before every replica attempt,
and the retry policy checks it before every backoff sleep.  Every check
site is named, so the expiry counter tells an operator *where* budgets
die — at the storage fan-out, in retry backoff, or up in the service.

Deadlines read an injectable clock (:class:`~repro.faults.clock.VirtualClock`
in tests and chaos runs), so expiry behaviour is deterministic: a
``replica.slow`` fault sleeps the virtual clock past the budget and the
query fails with a typed :class:`~repro.exceptions.DeadlineExceeded`
instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import telemetry
from repro.exceptions import DeadlineExceeded


def _count_expiry(site: str) -> None:
    # Expiry counts are public-size: they depend on infrastructure
    # behaviour (slow replicas, budgets), never on the plaintext data.
    telemetry.counter(
        "concealer_deadline_expiries_total",
        "deadline budgets found expired, by check site",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("site",),
    ).labels(site=site).inc()


@dataclass(frozen=True)
class Deadline:
    """An absolute expiry instant on an injectable clock."""

    clock: object
    expires_at: float

    @classmethod
    def after(cls, clock, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from the clock's current time."""
        if seconds <= 0:
            raise ValueError("deadline budget must be positive")
        return cls(clock=clock, expires_at=clock.now() + seconds)

    def remaining(self) -> float:
        """Seconds of budget left (negative once expired)."""
        return self.expires_at - self.clock.now()

    @property
    def expired(self) -> bool:
        """Whether the budget is spent."""
        return self.clock.now() >= self.expires_at

    def check(self, site: str) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        ``site`` names the decision point (``"enclave.fetch"``,
        ``"replication.attempt"``, ``"retry.backoff"``, ...) for the
        expiry counter.
        """
        if self.expired:
            _count_expiry(site)
            raise DeadlineExceeded(
                f"deadline exceeded at {site!r} "
                f"(over budget by {-self.remaining():.3f}s)"
            )
