"""Bounded admission with load shedding.

Under overload the worst failure mode is accepting every request and
serving all of them late: deadlines expire deep in the stack after the
work was already done.  The admission controller bounds the damage at
the front door: at most ``max_inflight`` requests execute at once, at
most ``max_queue`` more may wait, and everything beyond that is *shed*
with a typed :class:`~repro.exceptions.ServiceOverloaded` before any
query work (or data access) happens.

Shed counts and queue depths are public-size: they are functions of
request arrival, never of the plaintext data.

>>> controller = AdmissionController(max_inflight=1, max_queue=0)
>>> with controller.admit("point"):
...     controller.inflight
1
>>> controller.inflight
0
"""

from __future__ import annotations

from contextlib import contextmanager

from repro import telemetry
from repro.exceptions import ServiceOverloaded


class AdmissionController:
    """Front-door slot accounting for one service's query traffic."""

    def __init__(self, max_inflight: int = 64, max_queue: int = 128):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.inflight = 0
        self.queued = 0
        self.shed = 0

    @property
    def capacity(self) -> int:
        """Total requests admissible at once (executing + waiting)."""
        return self.max_inflight + self.max_queue

    @contextmanager
    def admit(self, kind: str = "query"):
        """Take a slot for the ``with`` body or shed the request.

        The synchronous simulator has no true concurrency, so "queued"
        slots model re-entrant work (e.g. repair running inside a
        degraded-mode query): occupancy beyond ``max_inflight`` spills
        into the queue allowance before shedding begins.
        """
        if self.inflight + self.queued >= self.capacity:
            self.shed += 1
            telemetry.counter(
                "concealer_requests_shed_total",
                "requests rejected by admission control, by query kind",
                secrecy=telemetry.PUBLIC_SIZE,
                labels=("kind",),
            ).labels(kind=kind).inc()
            raise ServiceOverloaded(
                f"admission queue full ({self.inflight} inflight, "
                f"{self.queued} queued, capacity {self.capacity}); "
                f"{kind!r} request shed — retry after backoff"
            )
        queued = self.inflight >= self.max_inflight
        if queued:
            self.queued += 1
        else:
            self.inflight += 1
        telemetry.counter(
            "concealer_requests_admitted_total",
            "requests admitted past the front door, by query kind",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("kind",),
        ).labels(kind=kind).inc()
        self._export()
        try:
            yield
        finally:
            if queued:
                self.queued -= 1
            else:
                self.inflight -= 1
            self._export()

    def _export(self) -> None:
        telemetry.gauge(
            "concealer_admission_inflight",
            "requests currently executing plus waiting",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set(self.inflight + self.queued)
