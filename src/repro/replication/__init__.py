"""Byzantine-resilient replication for the Concealer bin store.

The paper's threat model (§3) trusts nothing outside the enclave: the
storage provider may tamper with, drop, replay, or delay any response.
Concealer *detects* this with per-cell hash chains — this package adds
*resilience*: N replicas behind verify-then-failover reads, so a
tampering or failing replica costs a failover instead of a failed
query.

Layer map:

- :mod:`~repro.replication.engine` —
  :class:`~repro.replication.engine.ReplicatedStorageEngine`, the
  drop-in engine fronting N replicas, plus the per-cell
  :class:`~repro.replication.engine.ReplicaQuarantine`;
- :mod:`~repro.replication.breaker` — per-replica circuit breakers;
- :mod:`~repro.replication.deadline` — request deadline budgets,
  threaded service → enclave → storage;
- :mod:`~repro.replication.admission` — bounded admission with load
  shedding at the service edge;
- :mod:`~repro.replication.repair` — the anti-entropy repairer
  (majority-digest peer sync, DP-master fallback, rotation fencing);
- :mod:`~repro.replication.byzantine` — the adversarial replica
  wrapper driven by the seeded fault injector (chaos harness).
"""

from repro.replication.admission import AdmissionController
from repro.replication.breaker import BreakerConfig, CircuitBreaker
from repro.replication.byzantine import ByzantineReplica
from repro.replication.deadline import Deadline
from repro.replication.engine import (
    QuarantineEntry,
    ReplicaQuarantine,
    ReplicatedStorageEngine,
    ReplicationPolicy,
)
from repro.replication.repair import AntiEntropyRepairer, RepairOutcome

__all__ = [
    "AdmissionController",
    "AntiEntropyRepairer",
    "BreakerConfig",
    "ByzantineReplica",
    "CircuitBreaker",
    "Deadline",
    "QuarantineEntry",
    "RepairOutcome",
    "ReplicaQuarantine",
    "ReplicatedStorageEngine",
    "ReplicationPolicy",
]
