"""``python -m repro`` — a 30-second, self-checking end-to-end demo.

Builds a small WiFi epoch, outsources it through the full Figure-1
pipeline, runs one of each query family, and prints what the adversary
observed.  Exits non-zero if any answer disagrees with ground truth.

``python -m repro --chaos-seed N [--ops K]`` instead replays one
deterministic chaos schedule (see :mod:`repro.faults.chaos`): any chaos
failure seen in CI reproduces locally from its seed alone.  Exits
non-zero iff an operation returned a silently-wrong answer.  Add
``--replicas N`` for the Byzantine-replicated stack, ``--shards N``
for the sharded fleet (shard kills, stalls, router crashes), or both
together for replicated shards — every shard fronting its own
Byzantine replica group while shard/router faults fire in the same
schedule.

``python -m repro --serve [--shards N] [--replicas M] [--port P]``
serves the demo dataset through the sharded asyncio front door as a
JSON-lines TCP service; SIGTERM/SIGINT drain, checkpoint, and exit 0.

Observability flags (both modes):

- ``--metrics json|prom`` prints the run's metrics registry after the
  workload — every counter/gauge/histogram the instrumented stack
  recorded, each tagged with its secrecy level;
- ``--trace-dump`` prints the span ring buffer: the nested
  service → enclave → storage timing trees of recent queries.  With
  ``--connect HOST:PORT`` it instead merges a live server's shard span
  buffers through the admin endpoint.

``python -m repro --trace point AP T`` (or ``--trace range AP T0 T1
[METHOD]``) runs one query against a local sharded fleet — or a live
server via ``--connect`` — and pretty-prints the assembled cross-shard
trace tree with per-stage timings.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro import (
    Aggregate,
    Client,
    DataProvider,
    GridSpec,
    ServiceProvider,
    WIFI_SCHEMA,
    telemetry,
)
from repro.analysis import profile_queries
from repro.workloads import WifiConfig, generate_wifi_epoch


def _print_metrics(registry, fmt: str) -> None:
    """Render the registry in the requested exposition format."""
    print()
    if fmt == "json":
        print(registry.to_json())
    else:
        print(registry.to_prometheus(), end="")


def _print_traces(tracer) -> None:
    print()
    print(telemetry.format_traces(tracer))


def _send_jsonlines(host: str, port: int, requests: list[dict]) -> list[dict]:
    """One connection, N request lines, N response lines."""
    import json
    import socket

    with socket.create_connection((host, port), timeout=30) as sock:
        with sock.makefile("rw", encoding="utf-8") as stream:
            responses = []
            for request in requests:
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                responses.append(json.loads(stream.readline()))
            return responses


def _parse_connect(connect: str) -> tuple[str, int]:
    host, _, port = connect.rpartition(":")
    return host or "127.0.0.1", int(port)


def _parse_trace_query(trace_args: list[str]):
    """``point AP T`` / ``range AP T0 T1 [METHOD]`` → a query request."""
    kind = trace_args[0]
    if kind == "point" and len(trace_args) == 3:
        return {
            "op": "point",
            "index_values": [trace_args[1]],
            "timestamp": int(trace_args[2]),
        }
    if kind == "range" and len(trace_args) in (4, 5):
        request = {
            "op": "range",
            "index_values": [trace_args[1]],
            "time_start": int(trace_args[2]),
            "time_end": int(trace_args[3]),
        }
        if len(trace_args) == 5:
            request["method"] = trace_args[4]
        return request
    raise SystemExit(
        "--trace expects: point AP TIMESTAMP | range AP T0 T1 [METHOD]"
    )


def _print_trace_roots(roots, trace_id: str) -> None:
    matches = [root for root in roots if root.trace_id == trace_id]
    if not matches:
        print(f"trace {trace_id}: not found in buffers")
        return
    for root in matches:
        print()
        print(telemetry.format_trace_tree(root))


def run_trace_cli(trace_args: list[str], shards: int, connect: str | None) -> int:
    """``--trace``: one traced query, pretty-printed as a whole tree."""
    request = _parse_trace_query(trace_args)

    if connect is not None:
        host, port = _parse_connect(connect)
        (reply,) = _send_jsonlines(host, port, [request])
        trace_id = reply.get("trace_id")
        print(f"answer: {reply.get('answer')!r}  ok={reply.get('ok')}")
        if trace_id is None:
            print(f"server returned no trace_id: {reply}")
            return 1
        (trace,) = _send_jsonlines(
            host, port, [{"op": "trace", "trace_id": trace_id}]
        )
        if not trace.get("ok"):
            print(f"trace fetch failed: {trace}")
            return 1
        roots = [telemetry.tracing.span_from_dict(d) for d in trace["roots"]]
        _print_trace_roots(roots, trace_id)
        return 0

    import asyncio
    import tempfile

    from repro.core.queries import PointQuery, RangeQuery
    from repro.sharding.server import (
        assemble_fleet_traces,
        attach_ops_plane,
        build_demo_fleet,
    )

    async def _run(workdir):
        sharded, router, _records = build_demo_fleet(shards, workdir)
        attach_ops_plane(router)
        try:
            with telemetry.span("client.request", op=request["op"]) as root:
                trace_id = root.trace_id
                if request["op"] == "point":
                    query = PointQuery(
                        index_values=(request["index_values"][0],),
                        timestamp=request["timestamp"],
                    )
                    answer, _stats = await router.execute_point(query)
                else:
                    query = RangeQuery(
                        index_values=(request["index_values"][0],),
                        time_start=request["time_start"],
                        time_end=request["time_end"],
                    )
                    answer, _stats = await router.execute_range(
                        query, method=request.get("method", "ebpb")
                    )
        finally:
            await router.shutdown(5.0)
        roots, dropped = assemble_fleet_traces(router)
        return trace_id, answer, roots, dropped

    with tempfile.TemporaryDirectory(prefix="concealer-trace-") as workdir:
        trace_id, answer, roots, dropped = asyncio.run(_run(workdir))
    print(f"answer: {answer!r}")
    if any(dropped.values()):
        print(f"dropped spans per buffer: {dropped}")
    _print_trace_roots(roots, trace_id)
    return 0


def run_trace_dump_remote(connect: str) -> int:
    """``--trace-dump --connect``: merge a live fleet's span buffers."""
    host, port = _parse_connect(connect)
    (reply,) = _send_jsonlines(host, port, [{"op": "traces", "limit": 16}])
    if not reply.get("ok"):
        print(f"traces fetch failed: {reply}")
        return 1
    roots = [telemetry.tracing.span_from_dict(d) for d in reply["traces"]]
    print(
        f"{reply['assembled']} assembled trace(s); dropped per buffer: "
        f"{reply['dropped']}"
    )
    for root in roots:
        print()
        print(telemetry.format_trace_tree(root))
    return 0


def run_serve_cli(
    shards: int, port: int, drain_seconds: float, replicas: int = 1
) -> int:
    """``--serve``: the sharded fleet behind the JSON-lines TCP door."""
    import asyncio
    import tempfile

    from repro.sharding.server import serve

    with tempfile.TemporaryDirectory(prefix="concealer-serve-") as workdir:
        return asyncio.run(
            serve(
                shards,
                port,
                workdir,
                drain_seconds=drain_seconds,
                replicas=replicas,
            )
        )


def run_chaos_cli(
    seed: int,
    ops: int,
    metrics: str | None,
    trace_dump: bool,
    replicas: int = 1,
    shards: int = 1,
) -> int:
    """Replay one seeded fault schedule; non-zero on silent wrongness."""
    from repro.faults.chaos import run_chaos

    report = run_chaos(seed, ops=ops, replicas=replicas, shards=shards)
    if shards > 1 and replicas > 1:
        label = (
            f" ({shards} shards x {replicas} replicas, shard/router + "
            "Byzantine replica faults)"
        )
    elif shards > 1:
        label = f" ({shards} shards, shard/router faults)"
    elif replicas > 1:
        label = f" ({replicas} replicas, Byzantine faults)"
    else:
        label = ""
    print(f"chaos replay{label} — {report.summary()}")
    for outcome in report.outcomes:
        status = "ok" if outcome.ok else (outcome.error or "WRONG")
        line = f"  {outcome.op:<12} {status}"
        if outcome.recovered:
            line += "  (enclave recovered)"
        if outcome.silent_wrong:
            line += f"  answer={outcome.answer!r} expected={outcome.expected!r}"
        print(line)
    schedule = report.schedule.decode("ascii") or "(no faults fired)"
    print(f"fault schedule:\n  {schedule.replace(chr(10), chr(10) + '  ')}")

    # The run's isolated registry doubles as the resilience report:
    # every retry, backoff second, fault fire, and recovery is on it.
    registry = report.telemetry
    print(
        "resilience counters: "
        f"{registry.total('concealer_retry_attempts_total'):.0f} retried "
        f"attempts, "
        f"{registry.total('concealer_retry_backoff_seconds_total'):.3f}s "
        f"backoff, "
        f"{registry.total('concealer_faults_fired_total'):.0f} faults fired, "
        f"{registry.total('concealer_recoveries_total'):.0f} recoveries"
    )
    for alert in report.slo_alerts:
        print(f"SLO alert: {alert.summary()}")
    if metrics is not None:
        _print_metrics(registry, metrics)
    if trace_dump:
        if report.traces is not None:
            # Sharded runs buffer spans on the report; assemble the
            # local roots into whole trees before printing.
            print()
            for root in telemetry.assemble(report.traces):
                print(telemetry.format_trace_tree(root))
                print()
        else:
            _print_traces(telemetry.get_tracer())
    if report.silent_wrong:
        print(f"\nFAILED: {len(report.silent_wrong)} silently wrong answers")
        return 1
    print("\nno silently wrong answers ✓")
    return 0


def run_demo(metrics: str | None, trace_dump: bool) -> int:
    """The end-to-end demo; returns a process exit code."""
    print("Concealer reproduction — end-to-end demo\n")

    config = WifiConfig(access_points=16, devices=80, seed=99)
    records = generate_wifi_epoch(config, epoch_start=0, epoch_duration=3600)
    spec = GridSpec(dimension_sizes=(16, 30), cell_id_count=128, epoch_duration=3600)

    provider = DataProvider(
        WIFI_SCHEMA, spec, first_epoch_id=0,
        time_granularity=60, rng=random.Random(99),
    )
    service = ServiceProvider(WIFI_SCHEMA)
    provider.provision_enclave(service.enclave)
    credential = provider.register_user("demo-user", device_id=records[0][2])
    service.install_registry(provider.sealed_registry())

    package = provider.encrypt_epoch(records, epoch_id=0)
    service.ingest_epoch(package)
    print(
        f"outsourced {package.real_count} real + {package.fake_count} fake "
        f"rows ({package.metadata_bytes()} metadata bytes)"
    )

    client = Client(service, credential)
    failures = 0

    location, timestamp, device = records[0]
    point = client.point_count((location,), timestamp)
    truth = sum(1 for r in records if r[0] == location and r[1] == timestamp)
    failures += point.answer != truth
    print(f"point count   @ {location} t={timestamp}: {point.answer} (truth {truth})")

    ranged = client.range_aggregate((location,), 0, 1800, method="ebpb")
    truth = sum(1 for r in records if r[0] == location and r[1] <= 1800)
    failures += ranged.answer != truth
    print(f"range count   @ {location} [0,1800]: {ranged.answer} (truth {truth})")

    locations = tuple(sorted({r[0] for r in records}))
    top = client.range_aggregate(
        (locations,), 0, 3599, aggregate=Aggregate.TOP_K,
        target="location", k=3, method="winsecrange",
    )
    print(f"top-3 busiest: {top.answer}")

    mine = client.my_locations(locations, 0, 3599)
    truth_locations = sorted({r[0] for r in records if r[2] == device})
    failures += mine.answer != truth_locations
    print(f"my locations  ({device}): {mine.answer}")

    profile = profile_queries(service.engine.access_log)
    print(
        f"\nadversary view: {profile.query_count} queries observed, "
        f"per-query volumes {sorted(profile.distinct_volumes)}"
    )

    if metrics is not None:
        _print_metrics(telemetry.get_registry(), metrics)
    if trace_dump:
        _print_traces(telemetry.get_tracer())

    if failures:
        print(f"\nFAILED: {failures} answers diverged from ground truth")
        return 1
    print("\nall answers verified against ground truth ✓")
    return 0


def main() -> int:
    """Run the demo (or a chaos replay); returns a process exit code."""
    parser = argparse.ArgumentParser(prog="python -m repro")
    parser.add_argument(
        "--chaos-seed", type=int, default=None, metavar="N",
        help="replay the deterministic chaos schedule for seed N",
    )
    parser.add_argument(
        "--ops", type=int, default=12,
        help="operations per chaos run (default 12)",
    )
    parser.add_argument(
        "--replicas", type=int, default=1, metavar="N",
        help="chaos/serve: N storage replicas (per shard when combined "
        "with --shards) behind verify-then-failover reads; chaos arms "
        "Byzantine replica faults (default 1 = a single engine)",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="chaos/serve: partition the fleet across N enclave+storage "
        "shards (chaos arms shard kill/stall and router crash faults); "
        "composes with --replicas into replicated shards",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="serve the demo dataset over a JSON-lines TCP socket; "
        "SIGTERM/SIGINT drain in-flight queries, checkpoint every "
        "shard, and exit 0",
    )
    parser.add_argument(
        "--port", type=int, default=7433,
        help="--serve: TCP port to bind on 127.0.0.1 (default 7433)",
    )
    parser.add_argument(
        "--drain-seconds", type=float, default=10.0,
        help="--serve: graceful-shutdown drain deadline (default 10s)",
    )
    parser.add_argument(
        "--metrics", choices=("json", "prom"), default=None,
        help="print the metrics registry after the run, in this format",
    )
    parser.add_argument(
        "--trace-dump", action="store_true",
        help="print the recent-trace ring buffer after the run "
        "(with --connect: merge a live server's shard buffers)",
    )
    parser.add_argument(
        "--trace", nargs="+", default=None, metavar="QUERY",
        help="run one traced query and pretty-print its assembled "
        "cross-shard trace tree: point AP TIMESTAMP | "
        "range AP T0 T1 [METHOD]",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="--trace/--trace-dump: talk to a live --serve fleet "
        "instead of building a local one",
    )
    arguments = parser.parse_args()
    if arguments.shards < 1:
        parser.error(f"--shards must be >= 1, got {arguments.shards}")
    if arguments.replicas < 1:
        parser.error(f"--replicas must be >= 1, got {arguments.replicas}")
    if arguments.trace is not None:
        return run_trace_cli(
            arguments.trace, arguments.shards, arguments.connect
        )
    if arguments.trace_dump and arguments.connect is not None:
        return run_trace_dump_remote(arguments.connect)
    if arguments.serve:
        return run_serve_cli(
            arguments.shards,
            arguments.port,
            arguments.drain_seconds,
            replicas=arguments.replicas,
        )
    if arguments.chaos_seed is not None:
        return run_chaos_cli(
            arguments.chaos_seed,
            arguments.ops,
            arguments.metrics,
            arguments.trace_dump,
            replicas=arguments.replicas,
            shards=arguments.shards,
        )
    return run_demo(arguments.metrics, arguments.trace_dump)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away (e.g. piped through `head`); not a failure.
        sys.exit(0)
