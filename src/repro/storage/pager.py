"""Page model and adversary-visible access log.

A real DBMS reads and writes fixed-size pages; what a curious server
administrator observes is the stream of page/row accesses.  Concealer's
security claims are claims *about that stream*: every query fetches the
same number of rows (output-size hiding) and the server cannot tell
which fetched rows satisfied the query (partial access-pattern hiding).

:class:`AccessLog` records one :class:`AccessEvent` per operation the
engine performs.  The leakage analysis (:mod:`repro.analysis`) and the
security test-suite treat the log as the honest-but-curious service
provider's complete view of storage.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import Enum


class AccessKind(str, Enum):
    """The operation categories an observer can distinguish."""

    ROW_READ = "row_read"
    ROW_WRITE = "row_write"
    INDEX_LOOKUP = "index_lookup"
    INDEX_SCAN = "index_scan"
    TABLE_SCAN = "table_scan"
    PAGE_READ = "page_read"
    PAGE_WRITE = "page_write"
    # A whole-bin columnar read: one event per packed-bin fetch, in
    # addition to the per-row ROW_READ/PAGE_READ events the fetch still
    # emits (the adversary sees which physical rows left storage either
    # way; the bin-granular event records that they left as one unit).
    BIN_READ = "bin_read"


@dataclass(frozen=True)
class AccessEvent:
    """One observed storage operation.

    ``detail`` carries the observable argument — a physical row id, a
    page number, or the opaque ciphertext used as an index key (the
    adversary sees ciphertext bytes but cannot invert them).
    ``query_id`` groups events belonging to one query so per-query
    volumes can be computed.
    """

    kind: AccessKind
    table: str
    detail: bytes | int | None = None
    query_id: int | None = None


class AccessLog:
    """An append-only log of everything the storage engine did.

    The log supports *query scoping*: callers bracket a query with
    :meth:`begin_query` so that later analysis can ask "how many rows
    did query 17 fetch?" — the paper's output-size leakage is exactly
    that per-query count.
    """

    def __init__(self):
        self._events: list[AccessEvent] = []
        self._query_counter = 0
        self._active_query: int | None = None

    def begin_query(self) -> int:
        """Start a new query scope and return its id."""
        self._query_counter += 1
        self._active_query = self._query_counter
        return self._query_counter

    def end_query(self) -> None:
        """Close the current query scope."""
        self._active_query = None

    def record(self, kind: AccessKind, table: str, detail: bytes | int | None = None) -> None:
        """Append one event, tagged with the active query scope if any."""
        self._events.append(
            AccessEvent(kind=kind, table=table, detail=detail, query_id=self._active_query)
        )

    def record_bin_read(self, table: str, bin_index: int, row_ids, pager: "Pager") -> None:
        """Log one packed-bin fetch: a BIN_READ plus the per-row view.

        Emits exactly the ROW_READ/PAGE_READ stream a scalar whole-bin
        fetch produces (same row ids, same order), built in bulk so the
        hot path pays one call instead of ``2·|b|``.
        """
        query_id = self._active_query
        events = self._events
        events.append(
            AccessEvent(AccessKind.BIN_READ, table, bin_index, query_id)
        )
        rows_per_page = pager.rows_per_page
        events.extend(
            event
            for row_id in row_ids
            for event in (
                AccessEvent(AccessKind.ROW_READ, table, row_id, query_id),
                AccessEvent(
                    AccessKind.PAGE_READ, table, row_id // rows_per_page, query_id
                ),
            )
        )

    def events(self, kind: AccessKind | None = None, query_id: int | None = None) -> list[AccessEvent]:
        """Return events, optionally filtered by kind and/or query scope."""
        selected = self._events
        if kind is not None:
            selected = [e for e in selected if e.kind == kind]
        if query_id is not None:
            selected = [e for e in selected if e.query_id == query_id]
        return list(selected)

    def rows_fetched(self, query_id: int) -> int:
        """The adversary's output-size observation for one query."""
        return sum(
            1
            for e in self._events
            if e.query_id == query_id and e.kind == AccessKind.ROW_READ
        )

    def row_ids_fetched(self, query_id: int) -> list[int]:
        """The physical row ids a query touched — the access pattern."""
        return [
            e.detail
            for e in self._events
            if e.query_id == query_id
            and e.kind == AccessKind.ROW_READ
            and isinstance(e.detail, int)
        ]

    def per_query_volumes(self) -> dict[int, int]:
        """Map every observed query id to its row-fetch volume."""
        volumes: dict[int, int] = {}
        for event in self._events:
            if event.query_id is None or event.kind != AccessKind.ROW_READ:
                continue
            volumes[event.query_id] = volumes.get(event.query_id, 0) + 1
        return volumes

    def clear(self) -> None:
        """Drop all recorded events (query counter keeps advancing)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AccessEvent]:
        return iter(self._events)


@dataclass
class Pager:
    """A minimal fixed-fanout page model.

    Rows are grouped ``rows_per_page`` at a time; translating a row id
    to its page lets the engine log page-granular events the way a real
    buffer pool would surface them to an OS-level observer.
    """

    rows_per_page: int = 64
    _page_count: int = field(default=0, init=False)

    def page_of(self, row_id: int) -> int:
        """The page number holding ``row_id``."""
        if row_id < 0:
            raise ValueError("row id must be non-negative")
        return row_id // self.rows_per_page

    def note_row(self, row_id: int) -> None:
        """Grow the page count to cover a newly appended row."""
        needed = self.page_of(row_id) + 1
        if needed > self._page_count:
            self._page_count = needed

    @property
    def page_count(self) -> int:
        """Number of pages allocated so far."""
        return self._page_count
