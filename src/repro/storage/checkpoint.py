"""Checkpoint / restore for the embedded storage engine.

A service provider restarting should not need the data provider to
re-ship every epoch, so the engine supports durable snapshots.  The
format is a versioned pickle of tables plus index *definitions* —
B+-trees are rebuilt on restore rather than serialised, which keeps
snapshots compact and immune to internal-layout changes.

Snapshots are **integrity-framed**: the pickled payload is followed by
a footer of ``sha256(payload) || uint64(len(payload)) || magic``.  A
truncated file, a flipped byte, or a pre-footer legacy file all fail
:func:`restore_engine` loudly with :class:`StorageError` instead of
loading garbage (or crashing deep inside ``pickle``).  Writes go to a
temporary file and are renamed into place, so a crash mid-checkpoint
can never destroy the previous good snapshot.

The access log is deliberately **not** persisted: it is the adversary's
transient observation stream, not state.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from pathlib import Path

from repro import telemetry
from repro.exceptions import StorageError, TransientStorageError
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.storage.engine import StorageEngine

_FORMAT_VERSION = 2
_MAGIC = b"CONCEALER-CKPT\x00\x02"
_FOOTER = struct.Struct("<32sQ16s")  # sha256, payload length, magic


def write_framed(path: Path, payload: bytes) -> None:
    """Write ``payload`` + integrity footer atomically (tmp + rename)."""
    footer = _FOOTER.pack(
        hashlib.sha256(payload).digest(), len(payload), _MAGIC
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(path.name + ".tmp")
    with open(scratch, "wb") as handle:
        handle.write(payload + footer)
    scratch.replace(path)


def read_framed(path: Path) -> bytes:
    """Read and verify a framed payload; raises :class:`StorageError`."""
    if not path.exists():
        raise StorageError(f"no checkpoint at {path}")
    blob = path.read_bytes()
    if len(blob) < _FOOTER.size:
        raise StorageError(
            f"checkpoint {path} is truncated ({len(blob)} bytes; no footer)"
        )
    digest, length, magic = _FOOTER.unpack(blob[-_FOOTER.size:])
    if magic != _MAGIC:
        raise StorageError(
            f"checkpoint {path} has no integrity footer (legacy, truncated, "
            "or foreign file) — refusing to load it"
        )
    payload = blob[:-_FOOTER.size]
    if len(payload) != length:
        raise StorageError(
            f"checkpoint {path} is truncated: footer promises {length} "
            f"payload bytes, found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise StorageError(
            f"checkpoint {path} failed its SHA-256 integrity check — "
            "the snapshot was corrupted or tampered with"
        )
    return payload


def checkpoint_engine(
    engine: StorageEngine,
    path: str | Path,
    fault_injector: FaultInjector | None = None,
) -> Path:
    """Write a durable snapshot of all tables and index definitions.

    ``fault_injector`` lets the chaos harness simulate a torn write (a
    crash mid-checkpoint): the file is left truncated *without* the
    footer, which :func:`restore_engine` then rejects loudly.
    """
    path = Path(path)
    injector = fault_injector or NULL_INJECTOR
    snapshot = {
        "version": _FORMAT_VERSION,
        "btree_order": engine._btree_order,
        "rows_per_page": engine._rows_per_page,
        "tables": {
            name: {
                "columns": table.column_names,
                "next_row_id": table._next_row_id,
                "rows": {
                    row_id: row.columns for row_id, row in table._rows.items()
                },
            }
            for name, table in engine._tables.items()
        },
        "indexes": sorted(engine._indexes.keys()),
    }
    payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    outcomes = telemetry.counter(
        "concealer_checkpoints_total",
        "storage checkpoints, by outcome (torn = injected mid-write crash)",
        labels=("result",),
    )
    with telemetry.span("storage.checkpoint", bytes=len(payload)):
        if injector.fire("storage.checkpoint.torn") is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(payload[: max(1, len(payload) // 2)])
            outcomes.labels(result="torn").inc()
            raise TransientStorageError(
                f"checkpoint to {path} torn mid-write (injected crash)"
            )
        write_framed(path, payload)
    outcomes.labels(result="ok").inc()
    telemetry.histogram(
        "concealer_checkpoint_bytes",
        "payload size of completed checkpoints",
        secrecy=telemetry.PUBLIC_SIZE,
        boundaries=(4096.0, 65536.0, 1048576.0, 16777216.0, 268435456.0),
    ).observe(len(payload))
    return path


def restore_engine(path: str | Path) -> StorageEngine:
    """Rebuild an engine (tables + indexes) from a snapshot.

    Fails loudly with :class:`StorageError` on truncation, checksum
    mismatch, a missing footer, or an unknown ``_FORMAT_VERSION``.
    """
    path = Path(path)
    with telemetry.span("storage.restore"):
        payload = read_framed(path)
        try:
            snapshot = pickle.loads(payload)
        except Exception as error:
            raise StorageError(
                f"checkpoint {path} passed its checksum but failed to "
                f"deserialise: {error}"
            ) from error
        if not isinstance(snapshot, dict) or snapshot.get("version") != _FORMAT_VERSION:
            version = snapshot.get("version") if isinstance(snapshot, dict) else None
            raise StorageError(
                f"unsupported checkpoint version {version!r} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        engine = StorageEngine(
            btree_order=snapshot["btree_order"],
            rows_per_page=snapshot["rows_per_page"],
        )
        for name, table_snapshot in snapshot["tables"].items():
            engine.create_table(name, table_snapshot["columns"])
            table = engine._tables[name]
            for row_id in sorted(table_snapshot["rows"]):
                from repro.storage.table import Row

                table._rows[row_id] = Row(
                    row_id=row_id, columns=tuple(table_snapshot["rows"][row_id])
                )
                engine._pagers[name].note_row(row_id)
            table._next_row_id = table_snapshot["next_row_id"]
        for table_name, column in snapshot["indexes"]:
            engine.create_index(table_name, column)
        engine.access_log.clear()
    telemetry.counter(
        "concealer_restores_total",
        "storage engines rebuilt from checkpoint snapshots",
    ).inc()
    return engine
