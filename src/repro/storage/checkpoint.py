"""Checkpoint / restore for the embedded storage engine.

A service provider restarting should not need the data provider to
re-ship every epoch, so the engine supports durable snapshots.  The
format is a versioned pickle of tables plus index *definitions* —
B+-trees are rebuilt on restore rather than serialised, which keeps
snapshots compact and immune to internal-layout changes.

The access log is deliberately **not** persisted: it is the adversary's
transient observation stream, not state.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.exceptions import StorageError
from repro.storage.engine import StorageEngine

_FORMAT_VERSION = 1


def checkpoint_engine(engine: StorageEngine, path: str | Path) -> Path:
    """Write a durable snapshot of all tables and index definitions."""
    path = Path(path)
    snapshot = {
        "version": _FORMAT_VERSION,
        "btree_order": engine._btree_order,
        "rows_per_page": engine._rows_per_page,
        "tables": {
            name: {
                "columns": table.column_names,
                "next_row_id": table._next_row_id,
                "rows": {
                    row_id: row.columns for row_id, row in table._rows.items()
                },
            }
            for name, table in engine._tables.items()
        },
        "indexes": sorted(engine._indexes.keys()),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(snapshot, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def restore_engine(path: str | Path) -> StorageEngine:
    """Rebuild an engine (tables + indexes) from a snapshot."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no checkpoint at {path}")
    with open(path, "rb") as handle:
        snapshot = pickle.load(handle)
    if snapshot.get("version") != _FORMAT_VERSION:
        raise StorageError(
            f"unsupported checkpoint version {snapshot.get('version')!r}"
        )
    engine = StorageEngine(
        btree_order=snapshot["btree_order"],
        rows_per_page=snapshot["rows_per_page"],
    )
    for name, table_snapshot in snapshot["tables"].items():
        engine.create_table(name, table_snapshot["columns"])
        table = engine._tables[name]
        for row_id in sorted(table_snapshot["rows"]):
            from repro.storage.table import Row

            table._rows[row_id] = Row(
                row_id=row_id, columns=tuple(table_snapshot["rows"][row_id])
            )
            engine._pagers[name].note_row(row_id)
        table._next_row_id = table_snapshot["next_row_id"]
    for table_name, column in snapshot["indexes"]:
        engine.create_index(table_name, column)
    engine.access_log.clear()
    return engine
