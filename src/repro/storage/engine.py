"""The storage engine façade: tables + indexes + adversary-visible log.

:class:`StorageEngine` plays the role MySQL plays in the paper.  The
service provider inserts the encrypted epoch rows here and the engine
maintains a B+-tree over the encrypted ``Index`` column; the enclave
then drives point lookups by handing the engine trapdoor ciphertexts.

Every read is recorded in the :class:`~repro.storage.pager.AccessLog`
— the log is the complete honest-but-curious view of storage that the
leakage experiments analyse.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro import telemetry
from repro.exceptions import (
    IndexNotFoundError,
    StorageError,
    TableNotFoundError,
    TransientStorageError,
)
from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.storage.btree import BPlusTree
from repro.storage.pager import AccessKind, AccessLog, Pager
from repro.storage.table import Row, Table


class StorageEngine:
    """An embedded multi-table database with secondary B+-tree indexes.

    >>> engine = StorageEngine()
    >>> engine.create_table("t", ["k", "v"])
    >>> engine.create_index("t", "k")
    >>> _ = engine.insert("t", [b"alpha", b"one"])
    >>> [row[1] for row in engine.lookup("t", "k", b"alpha")]
    [b'one']
    """

    def __init__(
        self,
        btree_order: int = 64,
        rows_per_page: int = 64,
        fault_injector: FaultInjector | None = None,
    ):
        self._tables: dict[str, Table] = {}
        self._indexes: dict[tuple[str, str], BPlusTree] = {}
        self._pagers: dict[str, Pager] = {}
        self._btree_order = btree_order
        self._rows_per_page = rows_per_page
        self.access_log = AccessLog()
        # Chaos hook: reads/writes may fail transiently, and lookup
        # *results* may be corrupted / dropped / duplicated — the
        # malicious-host tampering the hash chains are meant to detect.
        self.fault_injector = fault_injector or NULL_INJECTOR
        # Epoch-rewrite fence, mirroring ReplicatedStorageEngine: key
        # rotation and §6 bin rewrites bump the generation, and
        # generation-stamped consumers (the enclave bin cache) discard
        # state captured under an older generation.
        self.rewrite_generation = 0
        self.rewrite_in_progress = False

    # -------------------------------------------------------- rotation fence

    def begin_rewrite(self) -> int:
        """Mark an epoch rewrite in flight; stale-state consumers fence."""
        self.rewrite_generation += 1
        self.rewrite_in_progress = True
        return self.rewrite_generation

    def end_rewrite(self) -> int:
        """Lift the rewrite fence; bumps the generation so state captured
        pre-rewrite is discarded instead of served."""
        self.rewrite_generation += 1
        self.rewrite_in_progress = False
        return self.rewrite_generation

    # ------------------------------------------------------------------- DDL

    def create_table(self, name: str, column_names: Sequence[str]) -> None:
        """Create an empty table; fails if the name is taken."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        self._tables[name] = Table(name, column_names)
        self._pagers[name] = Pager(rows_per_page=self._rows_per_page)

    def drop_table(self, name: str) -> None:
        """Drop a table and all its indexes."""
        self._table(name)
        del self._tables[name]
        del self._pagers[name]
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]

    def create_index(self, table: str, column: str) -> None:
        """Build a B+-tree over ``column``, indexing existing rows too."""
        tbl = self._table(table)
        position = tbl.column_index(column)
        if (table, column) in self._indexes:
            raise StorageError(f"index on {table}.{column} already exists")
        tree = BPlusTree(order=self._btree_order)
        for row in tbl.scan():
            tree.insert(row[position], row.row_id)
        self._indexes[(table, column)] = tree

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    def table_names(self) -> list[str]:
        """All table names, sorted."""
        return sorted(self._tables)

    def column_names(self, table: str) -> tuple[str, ...]:
        """The column names of a table (for replication and repair)."""
        return self._table(table).column_names

    def indexed_columns(self, table: str) -> list[str]:
        """Columns carrying a B+-tree index on this table, sorted."""
        self._table(table)
        return sorted(col for (tname, col) in self._indexes if tname == table)

    def rebuild_table(
        self,
        name: str,
        column_names: Sequence[str],
        rows: Sequence[Row],
        indexed_columns: Sequence[str] = (),
    ) -> int:
        """Replace a table wholesale from a row snapshot, preserving ids.

        The anti-entropy repair path: a quarantined replica adopts a
        healthy peer's rows byte-for-byte (same row ids, so physical
        addresses stay aligned across replicas).  Returns the number of
        rows installed.
        """
        if self.has_table(name):
            self.drop_table(name)  # also drops the packed sidecar
        self.create_table(name, column_names)
        tbl = self._tables[name]
        next_row_id = 0
        for row in rows:
            tbl._rows[row.row_id] = Row(row_id=row.row_id, columns=tuple(row.columns))
            self._pagers[name].note_row(row.row_id)
            next_row_id = max(next_row_id, row.row_id + 1)
        tbl._next_row_id = next_row_id
        for column in indexed_columns:
            self.create_index(name, column)
        telemetry.counter(
            "concealer_storage_rows_written_total",
            "rows written to storage (inserts, deletes, overwrites)",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc(len(tbl))
        return len(tbl)

    # ------------------------------------------------------------------- DML

    def insert(self, table: str, columns: Sequence) -> int:
        """Insert a row, maintain all indexes, log the write.

        An injected transient fault raises *before* any state change, so
        the caller's retry policy can safely repeat the insert.
        """
        if self.fault_injector.fire("storage.write.transient") is not None:
            raise TransientStorageError(
                f"transient write failure inserting into {table!r} (injected)"
            )
        tbl = self._table(table)
        row_id = tbl.insert(columns)
        self._pagers[table].note_row(row_id)
        for (tname, column), tree in self._indexes.items():
            if tname == table:
                tree.insert(columns[tbl.column_index(column)], row_id)
        self.access_log.record(AccessKind.ROW_WRITE, table, row_id)
        telemetry.counter(
            "concealer_storage_rows_written_total",
            "rows written to storage (inserts, deletes, overwrites)",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()
        return row_id

    def insert_many(self, table: str, rows: Sequence[Sequence]) -> list[int]:
        """Bulk insert; returns the new row ids."""
        return [self.insert(table, row) for row in rows]

    def delete(self, table: str, row_id: int) -> None:
        """Delete a row and its index entries."""
        tbl = self._table(table)
        row = tbl.fetch(row_id)
        for (tname, column), tree in self._indexes.items():
            if tname == table:
                tree.delete(row[tbl.column_index(column)], row_id)
        tbl.delete(row_id)
        self.access_log.record(AccessKind.ROW_WRITE, table, row_id)
        telemetry.counter(
            "concealer_storage_rows_written_total",
            "rows written to storage (inserts, deletes, overwrites)",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()

    def overwrite(self, table: str, row_id: int, columns: Sequence) -> None:
        """Replace a row in place, keeping indexes consistent."""
        tbl = self._table(table)
        old = tbl.fetch(row_id)
        for (tname, column), tree in self._indexes.items():
            if tname == table:
                position = tbl.column_index(column)
                tree.delete(old[position], row_id)
                tree.insert(columns[position], row_id)
        tbl.overwrite(row_id, columns)
        self.access_log.record(AccessKind.ROW_WRITE, table, row_id)
        telemetry.counter(
            "concealer_storage_rows_written_total",
            "rows written to storage (inserts, deletes, overwrites)",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()

    # ----------------------------------------------------------------- reads

    def fetch_row(self, table: str, row_id: int) -> Row:
        """Read one row by physical id (logged as the adversary sees it)."""
        if self.fault_injector.fire("storage.read.transient") is not None:
            raise TransientStorageError(
                f"transient read failure on {table!r} row {row_id} (injected)"
            )
        tbl = self._table(table)
        row = tbl.fetch(row_id)
        self.access_log.record(AccessKind.ROW_READ, table, row_id)
        self.access_log.record(
            AccessKind.PAGE_READ, table, self._pagers[table].page_of(row_id)
        )
        telemetry.counter(
            "concealer_storage_rows_read_total",
            "rows read from storage, as the host observes them",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()
        return row

    def lookup(self, table: str, column: str, key) -> list[Row]:
        """Index point lookup: all rows whose ``column`` equals ``key``."""
        tree = self._index(table, column)
        self.access_log.record(AccessKind.INDEX_LOOKUP, table, key)
        telemetry.counter(
            "concealer_index_lookups_total",
            "B+-tree point lookups submitted to storage",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()
        return [self.fetch_row(table, row_id) for row_id in tree.get(key)]

    def lookup_many(self, table: str, column: str, keys: Sequence) -> list[Row]:
        """Batched point lookups — how the enclave submits trapdoors.

        This is the malicious-host response channel: armed tamper faults
        corrupt, drop, or duplicate rows *in the returned batch* (the
        stored data stays intact), exactly the misbehaviour the paper's
        hash-chain tags detect.
        """
        with telemetry.span("storage.lookup", table=table, keys=len(keys)):
            rows: list[Row] = []
            for key in keys:
                rows.extend(self.lookup(table, column, key))
            return self._tamper(rows)

    # ------------------------------------------------------------ packed bins

    def store_packed_bins(self, table: str, packed_bins: Sequence) -> None:
        """Install the columnar sidecar for a table (one PackedBin per bin).

        Derived data: any later mutation of the table (insert, delete,
        overwrite, rebuild, drop) silently discards it and readers fall
        back to the scalar row path.  The sidecar lives *on the Table*
        so even mutations that bypass the engine wrappers (a tampering
        host writing rows directly) invalidate it — the packed path can
        never serve pre-tamper bytes a verifier would wrongly bless.
        """
        self._table(table).packed_bins = {
            packed.bin_index: packed for packed in packed_bins
        }

    def has_packed_bins(self, table: str) -> bool:
        """Whether a columnar sidecar is installed for this table."""
        return self._table(table).packed_bins is not None

    def fetch_packed_bin(self, table: str, bin_index: int):
        """Read one whole bin in columnar form; ``None`` means fall back.

        The host-observable view is identical to the scalar whole-bin
        fetch: the same physical ROW_READ/PAGE_READ stream (plus one
        BIN_READ marking the unit), the same rows-read counter, and the
        same malicious-host response channel — armed tamper faults
        corrupt, drop, or duplicate rows in the returned batch while
        stored bytes stay intact.
        """
        packed = self._table(table).packed_bins
        if packed is None:
            return None
        chosen = packed.get(bin_index)
        if chosen is None:
            return None
        # Same span family as the scalar batched lookup, so trace trees
        # (and the trace-leakage audits over them) keep their shape.
        with telemetry.span("storage.lookup", table=table, keys=chosen.row_count):
            if self.fault_injector.fire("storage.read.transient") is not None:
                raise TransientStorageError(
                    f"transient read failure on {table!r} bin {bin_index} "
                    "(injected)"
                )
            self.access_log.record_bin_read(
                table, bin_index, chosen.row_ids, self._pagers[table]
            )
            telemetry.counter(
                "concealer_storage_rows_read_total",
                "rows read from storage, as the host observes them",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc(chosen.row_count)
            return self._tamper_packed(chosen)

    # ---------------------------------------------------------- aggregate tree

    def store_agg_tree(self, table: str, tree) -> None:
        """Install the aggregate-tree sidecar for a table.

        Same derived-data contract as :meth:`store_packed_bins`: any
        later row mutation discards it (the sidecar lives on the Table,
        so even engine-bypassing mutations invalidate), and readers fall
        back to the bin path when it is absent.
        """
        self._table(table).agg_tree = tree

    def has_agg_tree(self, table: str) -> bool:
        """Whether an aggregate-tree sidecar is installed for this table."""
        return self._table(table).agg_tree is not None

    def fetch_agg_tree_meta(self, table: str):
        """The tree's public shape + sealed directory; ``None`` = no tree.

        Everything in the returned :class:`~repro.core.aggtree.TreeMeta`
        is either public geometry (fanout, leaf count, entity count) or
        ciphertext (the E_nd-sealed directory and root tag), so handing
        it out is not a read the adversary learns anything new from.
        """
        tree = self._table(table).agg_tree
        return None if tree is None else tree.meta()

    def fetch_tree_nodes(self, table: str, coords: Sequence[tuple]):
        """Read encrypted tree nodes by (entity, level, index) coordinate.

        Returns one ciphertext per coordinate, or ``None`` when no tree
        sidecar is installed (callers fall back to the bin path).  The
        coordinates the host observes are public: they derive from the
        query's time range plus the tree's public shape (entity indices
        are keyed-PRF ranks, uniform like cell-ids).  The reproduction
        surfaces this observable stream through the rows-read counter —
        one "row" per fixed-size node — rather than per-node access-log
        entries.  Armed ``storage.tree.corrupt`` faults flip bytes in
        the returned batch (stored bytes stay intact): the malicious-
        host response channel the node MAC entries detect.
        """
        tree = self._table(table).agg_tree
        if tree is None:
            return None
        with telemetry.span("storage.lookup", table=table, keys=len(coords)):
            if self.fault_injector.fire("storage.read.transient") is not None:
                raise TransientStorageError(
                    f"transient read failure on {table!r} tree nodes (injected)"
                )
            nodes = [
                tree.node_at(entity, level, index)
                for entity, level, index in coords
            ]
            telemetry.counter(
                "concealer_storage_rows_read_total",
                "rows read from storage, as the host observes them",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc(len(nodes))
            injector = self.fault_injector
            if nodes and injector.fire("storage.tree.corrupt") is not None:
                victim = injector.choose(len(nodes), "storage.tree.corrupt")
                nodes[victim] = injector.corrupt_bytes(nodes[victim])
            return nodes

    def _tamper_packed(self, chosen):
        """The packed-batch analogue of :meth:`_tamper`."""
        injector = self.fault_injector
        if chosen.row_count and injector.fire("storage.row.corrupt") is not None:
            victim = injector.choose(chosen.row_count, "storage.row.corrupt")
            column = injector.choose(len(chosen.columns), "storage.row.corrupt")
            chosen = chosen.with_corrupted_cell(
                victim, column, injector.corrupt_bytes
            )
        if chosen.row_count and injector.fire("storage.row.drop") is not None:
            chosen = chosen.without_row(
                injector.choose(chosen.row_count, "storage.row.drop")
            )
        if chosen.row_count and injector.fire("storage.row.duplicate") is not None:
            chosen = chosen.with_duplicated_row(
                injector.choose(chosen.row_count, "storage.row.duplicate")
            )
        return chosen

    def range_lookup(self, table: str, column: str, low, high) -> list[Row]:
        """Index range scan over ``[low, high]``."""
        tree = self._index(table, column)
        self.access_log.record(AccessKind.INDEX_SCAN, table)
        rows: list[Row] = []
        for _, row_ids in tree.range(low, high):
            rows.extend(self.fetch_row(table, rid) for rid in row_ids)
        return rows

    def scan(self, table: str) -> Iterator[Row]:
        """Full table scan (what the Opaque baseline must do)."""
        tbl = self._table(table)
        self.access_log.record(AccessKind.TABLE_SCAN, table)
        for row in tbl.scan():
            self.access_log.record(AccessKind.ROW_READ, table, row.row_id)
            yield row

    def snapshot_rows(self, table: str) -> list[Row]:
        """An unlogged copy of a table's live rows, in row-id order.

        Maintenance-plane read used by key rotation, checkpointing and
        anti-entropy repair; it bypasses the access log because it
        models an operator-side bulk copy, not a query-path access.
        """
        return list(self._table(table).scan())

    def row_count(self, table: str) -> int:
        """Live-row count (part of the paper's setup leakage L_s)."""
        return len(self._table(table))

    def index_size(self, table: str, column: str) -> int:
        """Number of entries in an index (also part of L_s)."""
        return self._index(table, column).size

    # -------------------------------------------------------------- internal

    def _tamper(self, rows: list[Row]) -> list[Row]:
        """Apply armed corrupt/drop/duplicate faults to a result batch."""
        if not rows:
            return rows
        injector = self.fault_injector
        if injector.fire("storage.row.corrupt") is not None:
            victim = injector.choose(len(rows), "storage.row.corrupt")
            row = rows[victim]
            column = injector.choose(len(row.columns), "storage.row.corrupt")
            columns = list(row.columns)
            if isinstance(columns[column], bytes):
                columns[column] = injector.corrupt_bytes(columns[column])
                rows[victim] = Row(row_id=row.row_id, columns=tuple(columns))
        if injector.fire("storage.row.drop") is not None:
            del rows[injector.choose(len(rows), "storage.row.drop")]
        if rows and injector.fire("storage.row.duplicate") is not None:
            rows.append(rows[injector.choose(len(rows), "storage.row.duplicate")])
        return rows

    def _table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(f"no table named {name!r}") from None

    def _index(self, table: str, column: str) -> BPlusTree:
        self._table(table)
        try:
            return self._indexes[(table, column)]
        except KeyError:
            raise IndexNotFoundError(
                f"no index on {table}.{column}"
            ) from None
