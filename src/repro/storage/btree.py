"""A from-scratch B+-tree.

This is the stock DBMS index Concealer relies on.  The tree maps opaque
comparable keys (for Concealer: the ciphertext bytes of
``E_k(cid || counter)``) to row ids.  Design notes:

- Values live only in leaves; leaves are linked for ordered scans.
- Duplicate keys are supported: each leaf slot stores the list of row
  ids sharing the key (needed by the cleartext baseline, which indexes
  plaintext locations).
- Deletion removes values without rebalancing.  Concealer's §6 rewrite
  deletes a whole epoch's rows and re-inserts them under fresh
  ciphertexts, so underfull nodes are transient; a production engine
  would compact in the background.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

DEFAULT_ORDER = 64


@dataclass
class _LeafNode:
    keys: list[Any] = field(default_factory=list)
    values: list[list[Any]] = field(default_factory=list)
    next_leaf: "_LeafNode | None" = None

    is_leaf = True


@dataclass
class _InnerNode:
    keys: list[Any] = field(default_factory=list)
    children: list[Any] = field(default_factory=list)

    is_leaf = False


def _bisect_right(keys: list[Any], key: Any) -> int:
    """Rightmost insertion point for ``key`` (works for bytes/int/str keys)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < keys[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_left(keys: list[Any], key: Any) -> int:
    """Leftmost insertion point for ``key``."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class BPlusTree:
    """A B+-tree from keys to lists of values.

    ``order`` is the maximum number of keys per node; nodes split when
    they exceed it.

    >>> tree = BPlusTree(order=4)
    >>> for i in [5, 1, 9, 3, 7]:
    ...     tree.insert(i, f"row{i}")
    >>> tree.get(7)
    ['row7']
    >>> [k for k, _ in tree.range(3, 7)]
    [3, 5, 7]
    """

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 3:
            raise ValueError("B+-tree order must be at least 3")
        self._order = order
        self._root: _LeafNode | _InnerNode = _LeafNode()
        self._size = 0
        self._node_reads = 0

    # ------------------------------------------------------------------ stats

    @property
    def size(self) -> int:
        """Total number of stored values (duplicates counted)."""
        return self._size

    @property
    def node_reads(self) -> int:
        """Cumulative count of node visits — a cost model for index I/O."""
        return self._node_reads

    def height(self) -> int:
        """Tree height (1 for a lone leaf)."""
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    # ---------------------------------------------------------------- lookup

    def _find_leaf(self, key: Any) -> _LeafNode:
        node = self._root
        self._node_reads += 1
        while not node.is_leaf:
            index = _bisect_right(node.keys, key)
            node = node.children[index]
            self._node_reads += 1
        return node

    def get(self, key: Any) -> list[Any]:
        """All values stored under ``key`` (empty list if absent)."""
        leaf = self._find_leaf(key)
        index = _bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return list(leaf.values[index])
        return []

    def contains(self, key: Any) -> bool:
        """Whether at least one value is stored under ``key``."""
        leaf = self._find_leaf(key)
        index = _bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def range(self, low: Any, high: Any) -> Iterator[tuple[Any, list[Any]]]:
        """Yield ``(key, values)`` for all keys with ``low <= key <= high``."""
        leaf = self._find_leaf(low)
        index = _bisect_left(leaf.keys, low)
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if key > high:
                    return
                yield key, list(leaf.values[index])
                index += 1
            leaf = leaf.next_leaf
            index = 0
            if leaf is not None:
                self._node_reads += 1

    def items(self) -> Iterator[tuple[Any, list[Any]]]:
        """Yield every ``(key, values)`` pair in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        leaf: _LeafNode | None = node
        while leaf is not None:
            yield from zip(leaf.keys, (list(v) for v in leaf.values))
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[Any]:
        """Yield every distinct key in order."""
        for key, _ in self.items():
            yield key

    # ---------------------------------------------------------------- insert

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``value`` under ``key`` (duplicates append)."""
        split = self._insert_into(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _InnerNode(keys=[separator], children=[self._root, right])
            self._root = new_root
        self._size += 1

    def _insert_into(self, node, key: Any, value: Any):
        """Recursive insert; returns ``(separator, new_right_node)`` on split."""
        if node.is_leaf:
            index = _bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(value)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [value])
            if len(node.keys) > self._order:
                return self._split_leaf(node)
            return None

        index = _bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > self._order:
            return self._split_inner(node)
        return None

    def _split_leaf(self, leaf: _LeafNode):
        mid = len(leaf.keys) // 2
        right = _LeafNode(
            keys=leaf.keys[mid:],
            values=leaf.values[mid:],
            next_leaf=leaf.next_leaf,
        )
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        leaf.next_leaf = right
        return right.keys[0], right

    def _split_inner(self, node: _InnerNode):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _InnerNode(
            keys=node.keys[mid + 1 :],
            children=node.children[mid + 1 :],
        )
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    # ---------------------------------------------------------------- delete

    def delete(self, key: Any, value: Any | None = None) -> int:
        """Remove values under ``key``; returns how many were removed.

        With ``value=None`` all values under the key are removed;
        otherwise only matching values are.  Nodes are not rebalanced
        (see module docstring).
        """
        leaf = self._find_leaf(key)
        index = _bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return 0
        if value is None:
            removed = len(leaf.values[index])
            del leaf.keys[index]
            del leaf.values[index]
        else:
            before = len(leaf.values[index])
            leaf.values[index] = [v for v in leaf.values[index] if v != value]
            removed = before - len(leaf.values[index])
            if not leaf.values[index]:
                del leaf.keys[index]
                del leaf.values[index]
        self._size -= removed
        return removed

    def __len__(self) -> int:
        return self._size
