"""Append-only row store with stable row ids.

A :class:`Table` stores heterogeneous rows — for Concealer these are
the encrypted tuples of Table 2c: one ``bytes`` ciphertext per column.
Rows get monotonically increasing integer ids on insert; ids are stable
so secondary indexes can reference them and the access log can expose
them as the "physical addresses" an adversary observes.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.exceptions import StorageError


@dataclass(frozen=True)
class Row:
    """One stored row: its physical id plus the column values."""

    row_id: int
    columns: tuple

    def __getitem__(self, index: int):
        return self.columns[index]

    def __len__(self) -> int:
        return len(self.columns)


class Table:
    """A named, schema-checked, append-only row store.

    ``column_names`` fixes the arity; inserts with the wrong number of
    columns are rejected.  Deletion marks a row id as dead (tombstone)
    without reusing it — matching how the §6 rewrite replaces an
    epoch's rows.
    """

    def __init__(self, name: str, column_names: Sequence[str]):
        if not column_names:
            raise StorageError("a table needs at least one column")
        self.name = name
        self.column_names = tuple(column_names)
        self._rows: dict[int, Row] = {}
        self._next_row_id = 0
        # Columnar sidecar: bin_index → PackedBin, or None when absent.
        # Derived data — any row mutation drops it, so the packed read
        # path can never serve bytes that diverge from the row store
        # (tampering included: a mutator that touches rows behind the
        # engine's back still invalidates here).
        self.packed_bins: dict[int, object] | None = None
        # Aggregate-tree sidecar (repro.core.aggtree.AggTree), or None.
        # Same invalidation contract as ``packed_bins``: derived data,
        # dropped on any row mutation so the tree path can never serve
        # aggregates that diverge from the row store.
        self.agg_tree: object | None = None

    @property
    def column_count(self) -> int:
        """Number of columns in the schema."""
        return len(self.column_names)

    def column_index(self, column: str) -> int:
        """Position of a named column; raises if unknown."""
        try:
            return self.column_names.index(column)
        except ValueError:
            raise StorageError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def insert(self, columns: Sequence) -> int:
        """Append one row; returns its new row id."""
        if len(columns) != self.column_count:
            raise StorageError(
                f"table {self.name!r} expects {self.column_count} columns, "
                f"got {len(columns)}"
            )
        row_id = self._next_row_id
        self._next_row_id += 1
        self._rows[row_id] = Row(row_id=row_id, columns=tuple(columns))
        self.packed_bins = None
        self.agg_tree = None
        return row_id

    def fetch(self, row_id: int) -> Row:
        """Read one row by id; raises on unknown/deleted ids."""
        try:
            return self._rows[row_id]
        except KeyError:
            raise StorageError(
                f"table {self.name!r} has no row {row_id}"
            ) from None

    def overwrite(self, row_id: int, columns: Sequence) -> None:
        """Replace the columns of an existing row in place."""
        if row_id not in self._rows:
            raise StorageError(f"table {self.name!r} has no row {row_id}")
        if len(columns) != self.column_count:
            raise StorageError(
                f"table {self.name!r} expects {self.column_count} columns"
            )
        self._rows[row_id] = Row(row_id=row_id, columns=tuple(columns))
        self.packed_bins = None
        self.agg_tree = None

    def delete(self, row_id: int) -> None:
        """Tombstone a row; its id is never reused."""
        if row_id not in self._rows:
            raise StorageError(f"table {self.name!r} has no row {row_id}")
        del self._rows[row_id]
        self.packed_bins = None
        self.agg_tree = None

    def scan(self) -> Iterator[Row]:
        """Yield all live rows in row-id order."""
        for row_id in sorted(self._rows):
            yield self._rows[row_id]

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row_id: int) -> bool:
        return row_id in self._rows
