"""Embedded storage engine — the reproduction's stand-in for MySQL.

Concealer's selling point is that it needs **no specialised index**: the
encrypted ``Index(L,T)`` column is a plain opaque key that any stock
DBMS B-tree can serve.  The original system stored data in MySQL; this
offline reproduction provides an embedded engine with the same contract:

- :mod:`repro.storage.btree` — a from-scratch B+-tree (point lookup,
  duplicate keys, ordered range scans) used for every secondary index.
- :mod:`repro.storage.table` — an append-only row store with stable
  row ids.
- :mod:`repro.storage.pager` — a page model plus the :class:`AccessLog`
  that records every page/row the engine touches.  The access log **is
  the adversary's view**: security tests and the leakage experiments
  read it to check what an honest-but-curious service provider observes.
- :mod:`repro.storage.engine` — :class:`StorageEngine`, the façade that
  binds tables, indexes and the access log together.
"""

from repro.storage.btree import BPlusTree
from repro.storage.checkpoint import checkpoint_engine, restore_engine
from repro.storage.engine import StorageEngine
from repro.storage.pager import AccessEvent, AccessLog, Pager
from repro.storage.table import Row, Table

__all__ = [
    "AccessEvent",
    "AccessLog",
    "BPlusTree",
    "Pager",
    "Row",
    "StorageEngine",
    "Table",
    "checkpoint_engine",
    "restore_engine",
]
