"""Leakage-profile bookkeeping (§7's L_s and L_q, made measurable).

IND-CKA [13] allows a scheme to leak its *setup leakage* L_s (database
and index sizes) and *query leakage* L_q (search/access patterns).
Concealer's claim is that, beyond those, per-query **output size is
constant** — so nothing about data distribution flows through volumes.

:func:`profile_queries` distils a storage access log into the
quantities those claims are about: per-query volumes, their spread, and
pairwise access-pattern overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.pager import AccessLog


@dataclass
class LeakageProfile:
    """The adversary's aggregate view of a query workload.

    ``volumes`` maps query-id → rows fetched.  ``distinct_volumes`` is
    the key security number: Concealer's point queries must yield
    exactly one distinct volume (the bin size); a leaky scheme yields
    as many volumes as there are result sizes.
    """

    volumes: dict[int, int] = field(default_factory=dict)
    row_sets: dict[int, frozenset[int]] = field(default_factory=dict)

    @property
    def query_count(self) -> int:
        """Number of queries in the profile."""
        return len(self.volumes)

    @property
    def distinct_volumes(self) -> set[int]:
        """The set of observed per-query fetch volumes."""
        return set(self.volumes.values())

    @property
    def volume_spread(self) -> int:
        """max - min fetched volume; 0 means perfect volume hiding."""
        if not self.volumes:
            return 0
        values = list(self.volumes.values())
        return max(values) - min(values)

    def overlap(self, query_a: int, query_b: int) -> float:
        """Jaccard overlap of two queries' accessed row sets.

        1.0 between queries hitting the same bin (Concealer's partial
        access-pattern hiding makes same-bin queries *identical* to the
        adversary); low values expose which queries differ.
        """
        a = self.row_sets.get(query_a, frozenset())
        b = self.row_sets.get(query_b, frozenset())
        if not a and not b:
            return 1.0
        union = a | b
        return len(a & b) / len(union) if union else 1.0

    def identical_access_groups(self) -> list[list[int]]:
        """Group query ids whose accessed row sets are exactly equal.

        Each group is an anonymity set: the adversary cannot tell its
        members apart by access pattern.
        """
        groups: dict[frozenset[int], list[int]] = {}
        for query_id, rows in self.row_sets.items():
            groups.setdefault(rows, []).append(query_id)
        return [sorted(members) for members in groups.values()]


def profile_queries(log: AccessLog, query_ids: list[int] | None = None) -> LeakageProfile:
    """Build a profile from an access log, optionally scoped to queries."""
    profile = LeakageProfile()
    all_volumes = log.per_query_volumes()
    selected = query_ids if query_ids is not None else sorted(all_volumes)
    for query_id in selected:
        profile.volumes[query_id] = all_volumes.get(query_id, 0)
        profile.row_sets[query_id] = frozenset(log.row_ids_fetched(query_id))
    return profile


def setup_leakage(row_count: int, index_entries: int) -> dict[str, int]:
    """The scheme-independent L_s the adversary always sees."""
    return {"rows": row_count, "index_entries": index_entries}
