"""Concrete leakage attacks, run against stored data and access logs.

Three attacks the paper's threat model cites:

- :func:`frequency_attack` — Naveed et al. [31]-style ciphertext
  frequency analysis: given the histogram of a DET-encrypted column and
  an auxiliary (public) plaintext distribution, match ranks.  Succeeds
  against the DET baseline; against Concealer every ciphertext is
  unique, so the histogram is flat and the attack degenerates to
  guessing.
- :func:`volume_attack` — Kellaris et al. [22]-style output-size
  reconstruction: observed per-query volumes reveal the result-size
  multiset, which with known query identities reconstructs value
  frequencies.  Against Concealer all volumes are equal.
- :func:`workload_attack` — §8/Example 8.1: count how often each bin
  is retrieved under a uniform per-value workload; skewed counts reveal
  per-bin value diversity.  Super-bins flatten the counts.

Each returns the adversary's reconstructed estimate so tests can score
it with :func:`reconstruction_accuracy`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence


def frequency_attack(
    ciphertext_histogram: Mapping[bytes, int],
    auxiliary_distribution: Mapping[str, int],
) -> dict[bytes, str]:
    """Rank-match ciphertext frequencies against an auxiliary distribution.

    Returns the adversary's guess: ciphertext → plaintext value.  The
    classic attack on deterministic encryption: sort both sides by
    frequency and align.
    """
    ranked_cts = sorted(
        ciphertext_histogram.items(), key=lambda kv: (-kv[1], kv[0])
    )
    ranked_values = sorted(
        auxiliary_distribution.items(), key=lambda kv: (-kv[1], kv[0])
    )
    guess: dict[bytes, str] = {}
    for (ciphertext, _), (value, _) in zip(ranked_cts, ranked_values):
        guess[ciphertext] = value
    return guess


def volume_attack(
    observed_volumes: Mapping[int, int],
    query_values: Mapping[int, str],
    auxiliary_distribution: Mapping[str, int],
) -> dict[str, str]:
    """Reconstruct which value is which from per-query result volumes.

    ``observed_volumes``: query-id → rows fetched (the adversary's
    view); ``query_values``: query-id → an opaque label for the value
    queried (the adversary knows *that* two queries target the same
    value by search pattern, not *which* value).  Rank-matching volumes
    against the auxiliary distribution yields label → value guesses.

    Against a volume-hiding scheme every label gets the same volume and
    rank-matching carries no information.
    """
    label_volume: dict[str, int] = {}
    for query_id, volume in observed_volumes.items():
        label = query_values.get(query_id)
        if label is not None:
            label_volume[label] = volume
    ranked_labels = sorted(label_volume.items(), key=lambda kv: (-kv[1], kv[0]))
    ranked_values = sorted(
        auxiliary_distribution.items(), key=lambda kv: (-kv[1], kv[0])
    )
    return {
        label: value
        for (label, _), (value, _) in zip(ranked_labels, ranked_values)
    }


def sliding_window_attack(
    access_sets: Sequence[frozenset[int]],
) -> list[tuple[int, int]]:
    """Example 5.2.2: differencing shifted range queries.

    Given the accessed-row sets of consecutive, one-step-shifted range
    queries (e.g. [T1,T2], [T2,T3], ...), the adversary computes per
    step how many rows *entered* and *left* the fetched set — which is
    exactly the population of the subintervals sliding in and out.

    Against eBPB these differentials reconstruct the per-cell data
    distribution; against winSecRange all queries inside one λ-window
    fetch identical rows and the differentials are zero.

    Returns ``[(rows_gained, rows_lost), ...]`` per consecutive pair.
    """
    return [
        (len(later - earlier), len(earlier - later))
        for earlier, later in zip(access_sets, access_sets[1:])
    ]


def workload_attack(bin_retrievals: Sequence[int]) -> list[int]:
    """Estimate per-bin unique-value counts from retrieval frequencies.

    Under a uniform per-value workload a bin holding ``v`` distinct
    values is retrieved ``v`` times per sweep, so the retrieval counts
    *are* the estimate (Example 8.1).  With super-bins every group is
    retrieved near-equally and the estimate collapses.
    """
    return list(bin_retrievals)


def reconstruction_accuracy(
    guess: Mapping, truth: Mapping
) -> float:
    """Fraction of the adversary's guesses that are correct."""
    if not truth:
        return 0.0
    correct = sum(1 for key, value in guess.items() if truth.get(key) == value)
    return correct / len(truth)


def histogram_flatness(histogram: Mapping[bytes, int]) -> float:
    """max/mean of a ciphertext histogram; 1.0 = perfectly flat.

    Concealer's salted DET gives exactly 1.0 (every ciphertext appears
    once); unsalted DET mirrors the plaintext skew.
    """
    if not histogram:
        return 1.0
    counts = list(histogram.values())
    return max(counts) / (sum(counts) / len(counts))


def value_frequency(records: Sequence[tuple], position: int) -> dict[str, int]:
    """Ground-truth frequency of one attribute — the auxiliary knowledge."""
    return dict(Counter(record[position] for record in records))
