"""Leakage analysis: what an honest-but-curious service provider learns.

The paper's security section (§7) argues informally; a reproduction can
do better by *measuring*.  This package consumes the adversary-visible
artefacts the substrates expose — the storage
:class:`~repro.storage.pager.AccessLog`, stored ciphertext columns, and
the enclave's side-channel trace — and runs the attacks the paper cites:

- :mod:`repro.analysis.leakage` — leakage-profile bookkeeping: setup
  leakage L_s, per-query output sizes, access-pattern overlap;
- :mod:`repro.analysis.adversary` — concrete attacks: ciphertext
  frequency analysis (Naveed et al. [31] style), output-size / volume
  reconstruction (Kellaris et al. [22] style), and the §8 workload
  frequency attack — shown to *succeed* against the DET baseline and
  *fail* against Concealer.
"""

from repro.analysis.adversary import (
    frequency_attack,
    reconstruction_accuracy,
    sliding_window_attack,
    volume_attack,
    workload_attack,
)
from repro.analysis.leakage import LeakageProfile, profile_queries

__all__ = [
    "LeakageProfile",
    "frequency_attack",
    "profile_queries",
    "reconstruction_accuracy",
    "sliding_window_attack",
    "volume_attack",
    "workload_attack",
]
