"""Naive deterministic-encryption index — Table 1's leaky strawman.

Encrypt every attribute with plain (unsalted) DET and index the
ciphertexts: the "DET (Always Encrypt)" row of Table 1.  Insertion and
querying are as fast as Concealer's, but:

- **at rest**, equal values produce equal ciphertexts, so ciphertext
  frequency = plaintext frequency (data-distribution leakage);
- **per query**, the index returns exactly the matching rows, so the
  adversary reads off the true output size (volume leakage).

:mod:`repro.analysis.adversary` runs the frequency-reconstruction and
output-size attacks against this baseline to show they succeed — and
against Concealer to show they fail.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.aggregation import evaluate_aggregate
from repro.core.queries import Aggregate, PointQuery, QueryStats
from repro.core.schema import DatasetSchema, encode_values
from repro.crypto.det import DeterministicCipher
from repro.crypto.keys import derive_epoch_key
from repro.storage.engine import StorageEngine


class DetIndexBaseline:
    """Unsalted DET over (index attributes, time); indexed ciphertexts."""

    def __init__(self, schema: DatasetSchema, master_key: bytes):
        self.schema = schema
        self.engine = StorageEngine()
        self._master_key = master_key
        self._tables: set[int] = set()

    def _cipher(self, epoch_id: int) -> DeterministicCipher:
        return DeterministicCipher(derive_epoch_key(self._master_key, epoch_id))

    def _det_key(
        self, cipher: DeterministicCipher, index_values: Sequence, timestamp: int
    ) -> bytes:
        """Unsalted DET of the composite key — the leak: no per-row salt."""
        return cipher.encrypt(b"det" + encode_values([*index_values, timestamp]))

    def ingest(self, records: Sequence[tuple], epoch_id: int) -> None:
        """Encrypt and index; identical keys collide visibly.

        Every attribute is also stored as its own unsalted-DET column —
        column-wise deterministic encryption is what "Always Encrypted"
        style systems do, and it is the frequency-analysis target.
        """
        table = f"det_{epoch_id}"
        cipher = self._cipher(epoch_id)
        if epoch_id not in self._tables:
            columns = ["payload", "det_key", *[f"det_{a}" for a in self.schema.attributes]]
            self.engine.create_table(table, columns)
            self.engine.create_index(table, "det_key")
            self._tables.add(epoch_id)
        for record in records:
            index_values = [
                self.schema.value(record, attr)
                for attr in self.schema.index_attributes
            ]
            key = self._det_key(cipher, index_values, self.schema.time_of(record))
            payload = cipher.encrypt(self.schema.payload_plaintext(record))
            attribute_cts = [
                cipher.encrypt(b"col" + encode_values([attr, value]))
                for attr, value in zip(self.schema.attributes, record)
            ]
            self.engine.insert(table, [payload, key, *attribute_cts])

    def execute_point(
        self, query: PointQuery, epoch_id: int
    ) -> tuple[object, QueryStats]:
        """One index lookup returning exactly the matching rows."""
        stats = QueryStats()
        table = f"det_{epoch_id}"
        cipher = self._cipher(epoch_id)
        key = self._det_key(cipher, list(query.index_values), query.timestamp)
        self.engine.access_log.begin_query()
        try:
            rows = self.engine.lookup(table, "det_key", key)
        finally:
            self.engine.access_log.end_query()
        stats.rows_fetched = len(rows)       # <- the true output size, leaked
        stats.rows_matched = len(rows)
        if query.aggregate is Aggregate.COUNT:
            return len(rows), stats
        records = [
            self.schema.decode_payload(cipher.decrypt(row[0])) for row in rows
        ]
        stats.rows_decrypted = len(records)
        answer = evaluate_aggregate(
            query.aggregate, records, self.schema, query.target, query.k
        )
        return answer, stats

    def ciphertext_histogram(self, epoch_id: int) -> dict[bytes, int]:
        """Frequency of each index ciphertext — the at-rest leak.

        An adversary computes this by just looking at the stored
        column; it equals the plaintext key-frequency histogram.
        """
        table = f"det_{epoch_id}"
        histogram: dict[bytes, int] = {}
        for row in self.engine.scan(table):
            histogram[row[1]] = histogram.get(row[1], 0) + 1
        return histogram

    def attribute_histogram(self, epoch_id: int, attribute: str) -> dict[bytes, int]:
        """Frequency of one column-wise DET ciphertext — the classic
        frequency-analysis target (e.g. the location column)."""
        table = f"det_{epoch_id}"
        position = 2 + self.schema.position(attribute)
        histogram: dict[bytes, int] = {}
        for row in self.engine.scan(table):
            histogram[row[position]] = histogram.get(row[position], 0) + 1
        return histogram

    def attribute_ciphertext(self, epoch_id: int, attribute: str, value) -> bytes:
        """The DET ciphertext a given value maps to (scoring helper)."""
        cipher = self._cipher(epoch_id)
        return cipher.encrypt(b"col" + encode_values([attribute, value]))
