"""Opaque-style full-scan baseline (Zheng et al., NSDI'17 — [48]).

Opaque executes SQL over encrypted data inside SGX by reading the whole
(randomly encrypted) dataset into the enclave, decrypting it there, and
running (optionally oblivious) operators.  There is no index: every
point or range query costs a full scan — which is exactly why Exp 9
reports >10 min for Opaque where Concealer needs <1 s.

This baseline stores rows as ``E_nd(record)`` (randomized — it leaks
no distribution at rest and cannot be indexed), scans them through the
enclave with EPC-sized batches, and filters with the same predicate
semantics as Concealer's executors so answers are comparable.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.aggregation import evaluate_aggregate
from repro.core.queries import Aggregate, PointQuery, QueryStats, RangeQuery
from repro.core.schema import DatasetSchema
from repro.crypto.keys import derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.enclave.enclave import Enclave
from repro.exceptions import QueryError
from repro.storage.engine import StorageEngine

_BATCH_ROWS = 4096


class OpaqueBaseline:
    """Encrypt-everything, scan-everything query processing."""

    def __init__(self, schema: DatasetSchema, enclave: Enclave):
        self.schema = schema
        self.enclave = enclave
        self.engine = StorageEngine()
        self._row_bytes = 64  # EPC accounting per resident row

    # ---------------------------------------------------------------- ingest

    def ingest(self, records: Sequence[tuple], epoch_id: int) -> None:
        """Encrypt records with ``E_nd`` and store them (no index)."""
        self.enclave.require_provisioned()
        cipher = self._cipher(epoch_id)
        table = f"opaque_{epoch_id}"
        if not self.engine.has_table(table):
            self.engine.create_table(table, ["ciphertext"])
        for record in records:
            blob = cipher.encrypt(self.schema.payload_plaintext(record))
            self.engine.insert(table, [blob])

    def _cipher(self, epoch_id: int) -> RandomizedCipher:
        return RandomizedCipher(
            derive_epoch_key(self.enclave.master_key, epoch_id)
        )

    # ---------------------------------------------------------------- queries

    def execute_point(
        self, query: PointQuery, epoch_id: int
    ) -> tuple[object, QueryStats]:
        """Full scan; keep rows matching index values at the timestamp."""
        def match(record: tuple) -> bool:
            # Key-like schemas (TPC-H) ignore the synthetic arrival time.
            if (
                self.schema.fold_time_into_filters
                and self.schema.time_of(record) != query.timestamp
            ):
                return False
            return all(
                self.schema.value(record, attr) == value
                for attr, value in zip(
                    self.schema.index_attributes, query.index_values
                )
            )

        return self._scan(epoch_id, match, query.aggregate, query.target, query.k)

    def execute_range(
        self, query: RangeQuery, epoch_id: int
    ) -> tuple[object, QueryStats]:
        """Full scan; keep rows matching candidates within the range."""
        combos = set(query.candidate_combinations())
        predicate = query.predicate

        def match(record: tuple) -> bool:
            t = self.schema.time_of(record)
            if not (query.time_start <= t <= query.time_end):
                return False
            values = tuple(
                self.schema.value(record, attr)
                for attr in self.schema.index_attributes
            )
            if predicate is not None:
                return _predicate_matches(self.schema, predicate, record)
            return values in combos

        return self._scan(epoch_id, match, query.aggregate, query.target, query.k)

    # --------------------------------------------------------------- internal

    def _scan(
        self,
        epoch_id: int,
        match,
        aggregate: Aggregate,
        target: str | None,
        k: int,
    ) -> tuple[object, QueryStats]:
        table = f"opaque_{epoch_id}"
        if not self.engine.has_table(table):
            raise QueryError(f"epoch {epoch_id} was never ingested")
        cipher = self._cipher(epoch_id)
        stats = QueryStats()
        self.engine.access_log.begin_query()
        matched: list[tuple] = []
        try:
            # One batch of rows is resident at a time, the way Opaque
            # streams partitions through the EPC; the context manager
            # returns the staging buffer on any exit, including faults.
            with self.enclave.memory(_BATCH_ROWS * self._row_bytes):
                for row in self.engine.scan(table):
                    stats.rows_fetched += 1
                    record = self.schema.decode_payload(cipher.decrypt(row[0]))
                    stats.rows_decrypted += 1
                    if match(record):
                        matched.append(record)
        finally:
            self.engine.access_log.end_query()
        stats.rows_matched = len(matched)
        answer = evaluate_aggregate(aggregate, matched, self.schema, target, k)
        return answer, stats


def _predicate_matches(schema: DatasetSchema, predicate, record: tuple) -> bool:
    """Evaluate a Concealer predicate on a cleartext record."""
    for attr, wanted in zip(predicate.group, predicate.values):
        actual = schema.value(record, attr)
        options = wanted if isinstance(wanted, (tuple, list)) else (wanted,)
        if actual not in options:
            return False
    return True
