"""Cleartext baseline: the Table 5 "Cleartext processing" row.

Rows are stored in the clear with a stock B+-tree over the
(location, time) pair — what a plain MySQL deployment would do.  No
security whatsoever; it exists as the latency floor the encrypted
systems are measured against (0.03s/0.05s in the paper's Table 5).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.aggregation import evaluate_aggregate
from repro.core.queries import PointQuery, QueryStats, RangeQuery
from repro.core.schema import DatasetSchema, encode_values
from repro.storage.engine import StorageEngine


class CleartextBaseline:
    """Unencrypted storage + index; direct query evaluation."""

    def __init__(self, schema: DatasetSchema):
        self.schema = schema
        self.engine = StorageEngine()
        self._tables: set[int] = set()

    def _index_key(self, index_values: Sequence, timestamp: int) -> bytes:
        """The composite (index attributes, time) key the B+-tree stores."""
        return encode_values([*index_values, timestamp])

    def ingest(self, records: Sequence[tuple], epoch_id: int) -> None:
        """Store records and index them on (index attributes, time)."""
        table = f"clear_{epoch_id}"
        if epoch_id not in self._tables:
            self.engine.create_table(table, [*self.schema.attributes, "_key"])
            self.engine.create_index(table, "_key")
            self._tables.add(epoch_id)
        for record in records:
            index_values = [
                self.schema.value(record, attr)
                for attr in self.schema.index_attributes
            ]
            key = self._index_key(index_values, self.schema.time_of(record))
            self.engine.insert(table, [*record, key])

    def execute_point(
        self, query: PointQuery, epoch_id: int
    ) -> tuple[object, QueryStats]:
        """Index point lookup, then aggregate."""
        stats = QueryStats()
        table = f"clear_{epoch_id}"
        key = self._index_key(list(query.index_values), query.timestamp)
        self.engine.access_log.begin_query()
        try:
            rows = self.engine.lookup(table, "_key", key)
        finally:
            self.engine.access_log.end_query()
        stats.rows_fetched = len(rows)
        stats.rows_matched = len(rows)
        records = [row.columns[: len(self.schema.attributes)] for row in rows]
        answer = evaluate_aggregate(
            query.aggregate, records, self.schema, query.target, query.k
        )
        return answer, stats

    def execute_range(
        self, query: RangeQuery, epoch_id: int, time_step: int = 1
    ) -> tuple[object, QueryStats]:
        """Point lookups across the range's (candidate, timestamp) grid."""
        stats = QueryStats()
        table = f"clear_{epoch_id}"
        matched: list[tuple] = []
        self.engine.access_log.begin_query()
        try:
            for combo in query.candidate_combinations():
                for t in range(query.time_start, query.time_end + 1, time_step):
                    rows = self.engine.lookup(
                        table, "_key", self._index_key(list(combo), t)
                    )
                    stats.rows_fetched += len(rows)
                    matched.extend(
                        row.columns[: len(self.schema.attributes)] for row in rows
                    )
        finally:
            self.engine.access_log.end_query()
        if query.predicate is not None:
            matched = [
                record
                for record in matched
                if _predicate_matches(self.schema, query.predicate, record)
            ]
        stats.rows_matched = len(matched)
        answer = evaluate_aggregate(
            query.aggregate, matched, self.schema, query.target, query.k
        )
        return answer, stats


def _predicate_matches(schema: DatasetSchema, predicate, record: tuple) -> bool:
    """Evaluate a Concealer predicate on a cleartext record."""
    for attr, wanted in zip(predicate.group, predicate.values):
        actual = schema.value(record, attr)
        options = wanted if isinstance(wanted, (tuple, list)) else (wanted,)
        if actual not in options:
            return False
    return True
