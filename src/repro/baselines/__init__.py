"""Comparison systems (§9.3 and Table 1).

- :mod:`repro.baselines.opaque` — an Opaque-style [48] SGX system: data
  is encrypted with *randomized* encryption (no index possible), and
  every query reads the **entire table into the enclave**, decrypts,
  and filters.  Strong against distribution leakage at rest, but
  linear-time per query — the shape Exp 9/10 demonstrate.
- :mod:`repro.baselines.cleartext` — plaintext MySQL stand-in: rows
  and index in the clear.  The Table 5 reference row and the zero-
  security lower bound on latency.
- :mod:`repro.baselines.det_index` — a naive deterministic-encryption
  index (Table 1's "DET / Always Encrypt" row): fast and indexable but
  leaks data distribution and output sizes; exists so the leakage
  attacks in :mod:`repro.analysis` have a vulnerable target.
"""

from repro.baselines.cleartext import CleartextBaseline
from repro.baselines.det_index import DetIndexBaseline
from repro.baselines.opaque import OpaqueBaseline

__all__ = ["CleartextBaseline", "DetIndexBaseline", "OpaqueBaseline"]
