"""``repro.telemetry`` — metrics, spans, and the leakage-audit ledger.

Zero-dependency observability for the whole stack, in three pieces:

- :mod:`repro.telemetry.metrics` — a registry of counters, gauges and
  fixed-bucket histograms, each family carrying a *secrecy tag*
  (:data:`PUBLIC_SIZE` vs :data:`DATA_DEPENDENT`), exportable as JSON or
  Prometheus text;
- :mod:`repro.telemetry.spans` — nested span tracing with durations off
  an injectable clock and a ring buffer of recent traces;
- :mod:`repro.telemetry.audit` — the auditor asserting that two
  equal-public-size runs produce identical public-size metrics, turning
  the observability layer into a volume-hiding regression check.

Instrumentation sites talk to an **ambient** registry and tracer (the
same pattern as :func:`repro.enclave.trace.ambient_recorder`), so no
constructor anywhere needs a telemetry parameter; tests and the auditor
swap the ambient objects with :func:`scoped_registry` /
:func:`scoped_tracer`.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.telemetry.audit import (
    AuditReport,
    assert_equal_public_view,
    assert_equal_trace_view,
    audit_run,
    diff_public_views,
    public_view,
)
from repro.telemetry.metrics import (
    DATA_DEPENDENT,
    DEFAULT_LABEL_CARDINALITY,
    OVERFLOW_LABEL,
    PUBLIC_SIZE,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    Span,
    Tracer,
    format_span,
    format_trace_tree,
    format_traces,
)
from repro.telemetry import tracing
from repro.telemetry.slo import (
    BurnRule,
    SLOAlert,
    SLObjective,
    SLOMonitor,
)
from repro.telemetry.tracing import (
    SpanContext,
    activate,
    annotate,
    assemble,
    bind_tracer,
    capture,
    current_trace_id,
    current_traceparent,
    propagate,
    public_trace_summary,
    scoped_ids,
)

__all__ = [
    "AuditReport",
    "Counter",
    "DATA_DEPENDENT",
    "DEFAULT_LABEL_CARDINALITY",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
    "PUBLIC_SIZE",
    "BurnRule",
    "SLOAlert",
    "SLObjective",
    "SLOMonitor",
    "Span",
    "SpanContext",
    "Tracer",
    "activate",
    "annotate",
    "assemble",
    "assert_equal_public_view",
    "assert_equal_trace_view",
    "audit_run",
    "bind_tracer",
    "capture",
    "counter",
    "current_trace_id",
    "current_traceparent",
    "diff_public_views",
    "format_span",
    "format_trace_tree",
    "format_traces",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "propagate",
    "public_trace_summary",
    "public_view",
    "scoped_ids",
    "scoped_registry",
    "scoped_tracer",
    "set_registry",
    "set_tracer",
    "span",
    "tracing",
]

_registry = MetricsRegistry()
_tracer = Tracer()


# ------------------------------------------------------------------ ambient


def get_registry() -> MetricsRegistry:
    """The ambient registry instrumentation sites write into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the ambient registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def get_tracer() -> Tracer:
    """The tracer spans open against.

    Context-bound first (``bind_tracer`` — how the router routes a
    shard's spans into that shard's own buffer), then the process
    ambient.
    """
    bound = tracing.bound_tracer()
    return bound if bound is not None else _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the ambient tracer; returns the previous one."""
    global _tracer
    previous = _tracer
    _tracer = tracer
    return previous


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None):
    """Swap in a fresh (or given) registry for the ``with`` body.

    The auditor and per-run reports (chaos, benchmarks) use this to
    measure one workload in isolation from ambient history.
    """
    scoped = registry if registry is not None else MetricsRegistry()
    previous = set_registry(scoped)
    try:
        yield scoped
    finally:
        set_registry(previous)


@contextmanager
def scoped_tracer(tracer: Tracer | None = None, clock=None):
    """Swap in a fresh (or given) tracer for the ``with`` body."""
    scoped = tracer if tracer is not None else Tracer(clock=clock)
    previous = set_tracer(scoped)
    try:
        yield scoped
    finally:
        set_tracer(previous)


# ------------------------------------------------------- ambient shorthands


def counter(
    name: str,
    help: str = "",
    secrecy: str = DATA_DEPENDENT,
    labels: tuple[str, ...] = (),
) -> MetricFamily:
    """Get-or-create a counter family on the ambient registry."""
    return _registry.counter(name, help, secrecy, labels)


def gauge(
    name: str,
    help: str = "",
    secrecy: str = DATA_DEPENDENT,
    labels: tuple[str, ...] = (),
) -> MetricFamily:
    """Get-or-create a gauge family on the ambient registry."""
    return _registry.gauge(name, help, secrecy, labels)


def histogram(
    name: str,
    help: str = "",
    secrecy: str = DATA_DEPENDENT,
    labels: tuple[str, ...] = (),
    boundaries: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0),
) -> MetricFamily:
    """Get-or-create a histogram family on the ambient registry."""
    return _registry.histogram(name, help, secrecy, labels, boundaries)


def span(name: str, secrecy: str = PUBLIC_SIZE, **attributes):
    """Open a span on the context's tracer (context manager)."""
    return get_tracer().span(name, secrecy=secrecy, **attributes)
