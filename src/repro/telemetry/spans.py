"""Lightweight span tracing across client → service → enclave → storage.

A *span* is one timed, named region of work with public attributes
(``with span("service.range_query", method="ebpb"): ...``).  Spans nest:
a span opened while another is active becomes its child, so one query
produces a small tree — ``service.range_query`` → ``enclave.fetch`` →
``storage.lookup`` — mirroring the paper's §9 cost decomposition of bin
fetch vs. in-enclave processing.

Since PR 7 the "currently active span" lives in a **context variable**
(:mod:`repro.telemetry.tracing`), not a tracer-local stack, and every
span carries W3C-style ``trace_id`` / ``span_id`` / ``parent_id``
identities.  That is what lets one query stay one trace across the
sharded router's thread pools and the ``--serve`` JSON-lines wire: a
span whose parent lives in *another* tracer (a shard answering the
router, a server answering a client) is linked by ``parent_id`` alone
and buffered as a **local root**; :func:`repro.telemetry.tracing.assemble`
stitches the forest back into one tree.

Durations come from an injectable clock (anything with ``now()``; the
:class:`~repro.faults.clock.VirtualClock` in tests, the real monotonic
clock by default).  Completed local-root spans land in a bounded ring
buffer (:class:`Tracer`), dumpable via ``python -m repro --trace-dump``.
When the buffer is full the oldest trace is evicted **and counted** —
``Tracer.dropped`` plus the public-size
``concealer_trace_spans_dropped_total`` counter, visible in both the
JSON and Prometheus exporters — never silently.

Span *attributes* should carry only public-size quantities (bin counts,
trapdoor counts, byte sizes): the ring buffer is operator-facing and the
same volume-hiding discipline as the metrics registry applies.  A span
that must record data-dependent context can be opened with
``secrecy=DATA_DEPENDENT``; the leakage auditor prunes such subtrees
from the public trace summary, exactly like data-dependent metric
families stay out of the public view.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.telemetry import tracing
from repro.telemetry.metrics import PUBLIC_SIZE, SECRECY_LEVELS


class _MonotonicClock:
    """The production default: real monotonic time."""

    def now(self) -> float:
        return time.monotonic()


@dataclass
class Span:
    """One timed region; ``children`` are spans opened inside it."""

    name: str
    attributes: dict
    start: float
    end: float | None = None
    error: str | None = None
    children: list["Span"] = field(default_factory=list)
    trace_id: str = ""
    span_id: str = ""
    parent_id: str | None = None
    secrecy: str = PUBLIC_SIZE

    def __post_init__(self):
        # The owning tracer, for the local-root rule.  Not a dataclass
        # field: identity bookkeeping, not data.
        self._tracer = None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def context(self) -> tracing.SpanContext:
        """This span's wire identity (``traceparent`` source)."""
        return tracing.SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, **attributes) -> None:
        """Attach attributes discovered mid-span (public sizes only)."""
        self.attributes.update(attributes)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Nesting depth of the deepest descendant (a leaf is 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree."""
        return [s for s in self.walk() if s.name == name]


class _DisabledSpan:
    """The no-op span a disabled tracer hands out (shared singleton)."""

    __slots__ = ()

    name = ""
    attributes: dict = {}
    start = 0.0
    end = 0.0
    error = None
    children: list = []
    trace_id = ""
    span_id = ""
    parent_id = None
    secrecy = PUBLIC_SIZE
    duration = 0.0

    def set(self, **attributes) -> None:
        pass

    def walk(self):
        yield self

    def depth(self) -> int:
        return 1

    def find(self, name: str) -> list:
        return []


_DISABLED_SPAN = _DisabledSpan()


class _DisabledContext:
    """Reusable context manager for the tracing-off fast path."""

    __slots__ = ()

    def __enter__(self):
        return _DISABLED_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_DISABLED_CONTEXT = _DisabledContext()


class Tracer:
    """Builds span trees and keeps the last ``capacity`` completed traces.

    >>> from repro.faults.clock import VirtualClock
    >>> clock = VirtualClock()
    >>> tracer = Tracer(clock=clock)
    >>> with tracer.span("outer") as outer:
    ...     clock.sleep(1.0)
    ...     with tracer.span("inner"):
    ...         clock.sleep(0.5)
    >>> outer.duration
    1.5
    >>> [s.name for s in tracer.traces()[0].walk()]
    ['outer', 'inner']
    """

    def __init__(self, clock=None, capacity: int = 64, enabled: bool = True):
        self.clock = clock if clock is not None else _MonotonicClock()
        self.enabled = enabled
        self._capacity = capacity
        self._traces: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    def span(self, name: str, secrecy: str = PUBLIC_SIZE, **attributes):
        """Open one span; joins the context's current trace, if any.

        Parentage comes from :mod:`repro.telemetry.tracing`'s context
        variables: the innermost open span (any tracer), else a remote
        ``traceparent`` parent, else a fresh trace.  A span whose parent
        records into a *different* tracer is kept out of that parent's
        ``children`` (the buffers live in different processes in the
        ``--serve`` deployment) and lands in this tracer's ring buffer
        as a local root, to be re-grafted by ``tracing.assemble``.
        """
        if not self.enabled:
            return _DISABLED_CONTEXT
        return self._span(name, secrecy, attributes)

    @contextmanager
    def _span(self, name: str, secrecy: str, attributes: dict):
        if secrecy not in SECRECY_LEVELS:
            from repro.exceptions import TelemetryError

            raise TelemetryError(
                f"unknown span secrecy {secrecy!r}; use one of {SECRECY_LEVELS}"
            )
        parent = tracing.current_span()
        remote = None if parent is not None else tracing._REMOTE.get()
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif remote is not None:
            trace_id, parent_id = remote.trace_id, remote.span_id
        else:
            trace_id, parent_id = tracing.new_trace_id(), None
        opened = Span(
            name=name,
            attributes=dict(attributes),
            start=self.clock.now(),
            trace_id=trace_id,
            span_id=tracing.new_span_id(),
            parent_id=parent_id,
        )
        opened.secrecy = secrecy
        opened._tracer = self
        local_parent = (
            parent
            if parent is not None and parent._tracer is self
            else None
        )
        if local_parent is not None:
            # Same buffer: attach in place.  list.append is atomic under
            # the GIL, so concurrent children from sibling shard threads
            # interleave but never corrupt.
            local_parent.children.append(opened)
        token = tracing._CURRENT.set(opened)
        try:
            yield opened
        except BaseException as error:
            opened.error = type(error).__name__
            raise
        finally:
            opened.end = self.clock.now()
            tracing._CURRENT.reset(token)
            if local_parent is None:
                self._record_root(opened)

    def _record_root(self, root: Span) -> None:
        with self._lock:
            if self._capacity and len(self._traces) == self._capacity:
                self.dropped += 1
                dropped_now = True
            else:
                dropped_now = False
            self._traces.append(root)
        if dropped_now:
            self._count_drop()

    def _count_drop(self) -> None:
        # Lazy import: telemetry.__init__ imports this module.  The
        # counter is public-size — it counts buffer pressure (a function
        # of query volume), never row data.
        from repro import telemetry

        telemetry.get_registry().counter(
            "concealer_trace_spans_dropped_total",
            "root spans evicted from a full trace ring buffer",
            secrecy=PUBLIC_SIZE,
        ).inc()

    def current(self) -> Span | None:
        """The innermost open span recording into *this* tracer."""
        span = tracing.current_span()
        if span is not None and span._tracer is self:
            return span
        return None

    def traces(self) -> list[Span]:
        """Completed local-root spans, oldest first."""
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        """Drop all completed traces (open spans are unaffected)."""
        with self._lock:
            self._traces.clear()


def format_span(span: Span, indent: int = 0) -> list[str]:
    """Render one span subtree as indented text lines."""
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
    suffix = f"  [{attrs}]" if attrs else ""
    error = f"  !{span.error}" if span.error else ""
    lines = [
        f"{'  ' * indent}{span.name}  {span.duration * 1000:.3f}ms{error}{suffix}"
    ]
    for child in span.children:
        lines.extend(format_span(child, indent + 1))
    return lines


def format_trace_tree(root: Span) -> str:
    """Render one assembled trace: header line plus the span tree."""
    stages = tracing.stage_timings(root)
    header = f"trace {root.trace_id}:"
    if stages:
        header += "  stages " + " ".join(
            f"{stage}={seconds * 1000:.3f}ms"
            for stage, seconds in sorted(stages.items())
        )
    return "\n".join([header] + format_span(root, indent=1))


def format_traces(tracer: Tracer, limit: int | None = None) -> str:
    """Render the ring buffer's traces, newest last."""
    traces = tracer.traces()
    if limit is not None:
        traces = traces[-limit:]
    if not traces:
        return "(no completed traces)"
    blocks = []
    for position, root in enumerate(traces):
        blocks.append(f"trace {position}:")
        blocks.extend(format_span(root, indent=1))
    if tracer.dropped:
        blocks.append(f"({tracer.dropped} older trace(s) dropped)")
    return "\n".join(blocks)
