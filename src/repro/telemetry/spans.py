"""Lightweight span tracing across client → service → enclave → storage.

A *span* is one timed, named region of work with public attributes
(``with span("service.range_query", method="ebpb"): ...``).  Spans nest:
a span opened while another is active becomes its child, so one query
produces a small tree — ``service.range_query`` → ``enclave.fetch`` →
``storage.lookup`` — mirroring the paper's §9 cost decomposition of bin
fetch vs. in-enclave processing.

Durations come from an injectable clock (anything with ``now()``; the
:class:`~repro.faults.clock.VirtualClock` in tests, the real monotonic
clock by default).  Completed root spans land in a bounded ring buffer
(:class:`Tracer`), dumpable via ``python -m repro --trace-dump``.

Span *attributes* should carry only public-size quantities (bin counts,
trapdoor counts, byte sizes): the ring buffer is operator-facing and the
same volume-hiding discipline as the metrics registry applies.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field


class _MonotonicClock:
    """The production default: real monotonic time."""

    def now(self) -> float:
        return time.monotonic()


@dataclass
class Span:
    """One timed region; ``children`` are spans opened inside it."""

    name: str
    attributes: dict
    start: float
    end: float | None = None
    error: str | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes) -> None:
        """Attach attributes discovered mid-span (public sizes only)."""
        self.attributes.update(attributes)

    def walk(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Nesting depth of the deepest descendant (a leaf is 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree."""
        return [s for s in self.walk() if s.name == name]


class Tracer:
    """Builds span trees and keeps the last ``capacity`` completed traces.

    >>> from repro.faults.clock import VirtualClock
    >>> clock = VirtualClock()
    >>> tracer = Tracer(clock=clock)
    >>> with tracer.span("outer") as outer:
    ...     clock.sleep(1.0)
    ...     with tracer.span("inner"):
    ...         clock.sleep(0.5)
    >>> outer.duration
    1.5
    >>> [s.name for s in tracer.traces()[0].walk()]
    ['outer', 'inner']
    """

    def __init__(self, clock=None, capacity: int = 64):
        self.clock = clock if clock is not None else _MonotonicClock()
        self._traces: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attributes):
        """Open one span; nests under the currently open span, if any."""
        opened = Span(name=name, attributes=attributes, start=self.clock.now())
        if self._stack:
            self._stack[-1].children.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        except BaseException as error:
            opened.error = type(error).__name__
            raise
        finally:
            opened.end = self.clock.now()
            self._stack.pop()
            if not self._stack:
                self._traces.append(opened)

    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def traces(self) -> list[Span]:
        """Completed root spans, oldest first."""
        return list(self._traces)

    def clear(self) -> None:
        """Drop all completed traces (open spans are unaffected)."""
        self._traces.clear()


def format_span(span: Span, indent: int = 0) -> list[str]:
    """Render one span subtree as indented text lines."""
    attrs = " ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
    suffix = f"  [{attrs}]" if attrs else ""
    error = f"  !{span.error}" if span.error else ""
    lines = [
        f"{'  ' * indent}{span.name}  {span.duration * 1000:.3f}ms{error}{suffix}"
    ]
    for child in span.children:
        lines.extend(format_span(child, indent + 1))
    return lines


def format_traces(tracer: Tracer, limit: int | None = None) -> str:
    """Render the ring buffer's traces, newest last."""
    traces = tracer.traces()
    if limit is not None:
        traces = traces[-limit:]
    if not traces:
        return "(no completed traces)"
    blocks = []
    for position, root in enumerate(traces):
        blocks.append(f"trace {position}:")
        blocks.extend(format_span(root, indent=1))
    return "\n".join(blocks)
