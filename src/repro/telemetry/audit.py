"""The leakage-audit ledger: observability that proves it does not leak.

Volume hiding makes a sharp, testable promise: everything the host
observes about a query — rows fetched, bins touched, trapdoor counts,
EPC reservations — is a function of *public* parameters only.  The
metrics registry records those very quantities, so the registry itself
becomes a regression check: run the same public-shape workload over two
*different* datasets of equal public size, and every family tagged
:data:`~repro.telemetry.metrics.PUBLIC_SIZE` must land on identical
values.  Any divergence is either a genuine volume leak in the query
pipeline or a data-dependent metric mislabeled public — both are bugs
this module turns into a loud :class:`~repro.exceptions.LeakageAuditError`.

Usage::

    report_a = audit_run(lambda: workload(dataset_a))
    report_b = audit_run(lambda: workload(dataset_b))
    assert_equal_public_view(report_a, report_b)

``audit_run`` executes the workload under a fresh scoped registry so
ambient telemetry from earlier activity cannot contaminate the
comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.exceptions import LeakageAuditError
from repro.telemetry.metrics import MetricsRegistry, PUBLIC_SIZE


@dataclass
class AuditReport:
    """One audited run: the registry it filled plus the workload's result."""

    registry: MetricsRegistry
    result: object = None
    traces: list = field(default_factory=list)

    def public_view(self, extra_public: tuple[str, ...] = ()) -> dict:
        """Every public-size family's samples, canonically keyed.

        ``extra_public`` forces additional families into the view *as if*
        they were tagged public — the hook the mislabel regression test
        uses to prove the auditor would catch a wrong tag.
        """
        return public_view(self.registry, extra_public=extra_public)

    def trace_summary(self) -> str:
        """The run's public-size trace view, as one canonical JSON blob.

        Span names, ids, errors, public attributes, and tree structure —
        no timestamps or durations (timing is a side channel).  Because
        ``audit_run`` executes under ``tracing.scoped_ids``, two
        equal-public-view runs must produce **byte-identical** strings:
        ids come off a public counter, so equal public control flow
        allocates equal ids.
        """
        from repro.telemetry.tracing import public_trace_summary

        return json.dumps(
            public_trace_summary(self.traces), sort_keys=True, indent=1
        )


def public_view(
    registry: MetricsRegistry, extra_public: tuple[str, ...] = ()
) -> dict:
    """``{metric_name: {label-tuple: value}}`` over the public families.

    Histograms contribute their per-bucket counts and observation count
    (their ``sum`` too — for a public-size histogram, observed values
    are public quantities like checkpoint bytes).
    """
    view: dict = {}
    for family in registry.families():
        if family.secrecy != PUBLIC_SIZE and family.name not in extra_public:
            continue
        samples: dict = {}
        for key, child in family.children.items():
            if family.kind == "histogram":
                samples[key] = (
                    tuple(child.bucket_counts),
                    child.count,
                    child.sum,
                )
            else:
                samples[key] = child.value
        view[family.name] = samples
    return view


def diff_public_views(view_a: dict, view_b: dict) -> list[str]:
    """Human-readable mismatches between two public views (empty = equal)."""
    problems: list[str] = []
    for name in sorted(set(view_a) | set(view_b)):
        a, b = view_a.get(name), view_b.get(name)
        if a is None or b is None:
            missing = "first" if a is None else "second"
            problems.append(f"{name}: absent from the {missing} run")
            continue
        for key in sorted(set(a) | set(b)):
            left, right = a.get(key), b.get(key)
            if left != right:
                problems.append(
                    f"{name}{list(key) if key else ''}: {left!r} != {right!r}"
                )
    return problems


def assert_equal_public_view(
    report_a: AuditReport,
    report_b: AuditReport,
    extra_public: tuple[str, ...] = (),
) -> None:
    """Raise :class:`LeakageAuditError` unless public views are identical."""
    problems = diff_public_views(
        report_a.public_view(extra_public),
        report_b.public_view(extra_public),
    )
    if problems:
        raise LeakageAuditError(
            "public-size metrics diverged between equal-public-size runs "
            "(volume leak, or a data-dependent metric mislabeled public):\n  "
            + "\n  ".join(problems)
        )


def assert_equal_trace_view(
    report_a: AuditReport, report_b: AuditReport
) -> None:
    """Raise :class:`LeakageAuditError` unless trace summaries match.

    The trace analogue of :func:`assert_equal_public_view`: two runs
    with equal public views must buffer byte-identical public-size
    trace forests — same span names, same stage structure, same counts,
    same counter-derived ids.  A divergence means a span (or one of its
    attributes) carries data-dependent content without being tagged
    ``DATA_DEPENDENT`` — a mislabeled span, the trace-side volume leak.
    """
    summary_a, summary_b = report_a.trace_summary(), report_b.trace_summary()
    if summary_a != summary_b:
        lines_a, lines_b = summary_a.splitlines(), summary_b.splitlines()
        diverging = [
            f"{left!r} != {right!r}"
            for left, right in zip(lines_a, lines_b)
            if left != right
        ][:8]
        if len(lines_a) != len(lines_b):
            diverging.append(
                f"summary lengths differ: {len(lines_a)} != {len(lines_b)} lines"
            )
        raise LeakageAuditError(
            "public-size trace summaries diverged between equal-public-view "
            "runs (a span or attribute is data-dependent but not tagged so):\n  "
            + "\n  ".join(diverging)
        )


def audit_run(workload, clock=None) -> AuditReport:
    """Run ``workload()`` under a fresh scoped registry and tracer.

    Returns the isolated registry for comparison.  ``clock`` (anything
    with ``now()``) feeds the scoped tracer so audited runs can use a
    virtual clock.  The run also gets a fresh trace-id counter
    (``tracing.scoped_ids``) so the buffered traces of two equal runs
    are directly comparable, ids included.
    """
    from repro import telemetry
    from repro.telemetry.tracing import scoped_ids

    with telemetry.scoped_registry() as registry, telemetry.scoped_tracer(
        clock=clock
    ) as tracer, scoped_ids():
        result = workload()
    return AuditReport(
        registry=registry, result=result, traces=tracer.traces()
    )
