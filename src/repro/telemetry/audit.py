"""The leakage-audit ledger: observability that proves it does not leak.

Volume hiding makes a sharp, testable promise: everything the host
observes about a query — rows fetched, bins touched, trapdoor counts,
EPC reservations — is a function of *public* parameters only.  The
metrics registry records those very quantities, so the registry itself
becomes a regression check: run the same public-shape workload over two
*different* datasets of equal public size, and every family tagged
:data:`~repro.telemetry.metrics.PUBLIC_SIZE` must land on identical
values.  Any divergence is either a genuine volume leak in the query
pipeline or a data-dependent metric mislabeled public — both are bugs
this module turns into a loud :class:`~repro.exceptions.LeakageAuditError`.

Usage::

    report_a = audit_run(lambda: workload(dataset_a))
    report_b = audit_run(lambda: workload(dataset_b))
    assert_equal_public_view(report_a, report_b)

``audit_run`` executes the workload under a fresh scoped registry so
ambient telemetry from earlier activity cannot contaminate the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import LeakageAuditError
from repro.telemetry.metrics import MetricsRegistry, PUBLIC_SIZE


@dataclass
class AuditReport:
    """One audited run: the registry it filled plus the workload's result."""

    registry: MetricsRegistry
    result: object = None

    def public_view(self, extra_public: tuple[str, ...] = ()) -> dict:
        """Every public-size family's samples, canonically keyed.

        ``extra_public`` forces additional families into the view *as if*
        they were tagged public — the hook the mislabel regression test
        uses to prove the auditor would catch a wrong tag.
        """
        return public_view(self.registry, extra_public=extra_public)


def public_view(
    registry: MetricsRegistry, extra_public: tuple[str, ...] = ()
) -> dict:
    """``{metric_name: {label-tuple: value}}`` over the public families.

    Histograms contribute their per-bucket counts and observation count
    (their ``sum`` too — for a public-size histogram, observed values
    are public quantities like checkpoint bytes).
    """
    view: dict = {}
    for family in registry.families():
        if family.secrecy != PUBLIC_SIZE and family.name not in extra_public:
            continue
        samples: dict = {}
        for key, child in family.children.items():
            if family.kind == "histogram":
                samples[key] = (
                    tuple(child.bucket_counts),
                    child.count,
                    child.sum,
                )
            else:
                samples[key] = child.value
        view[family.name] = samples
    return view


def diff_public_views(view_a: dict, view_b: dict) -> list[str]:
    """Human-readable mismatches between two public views (empty = equal)."""
    problems: list[str] = []
    for name in sorted(set(view_a) | set(view_b)):
        a, b = view_a.get(name), view_b.get(name)
        if a is None or b is None:
            missing = "first" if a is None else "second"
            problems.append(f"{name}: absent from the {missing} run")
            continue
        for key in sorted(set(a) | set(b)):
            left, right = a.get(key), b.get(key)
            if left != right:
                problems.append(
                    f"{name}{list(key) if key else ''}: {left!r} != {right!r}"
                )
    return problems


def assert_equal_public_view(
    report_a: AuditReport,
    report_b: AuditReport,
    extra_public: tuple[str, ...] = (),
) -> None:
    """Raise :class:`LeakageAuditError` unless public views are identical."""
    problems = diff_public_views(
        report_a.public_view(extra_public),
        report_b.public_view(extra_public),
    )
    if problems:
        raise LeakageAuditError(
            "public-size metrics diverged between equal-public-size runs "
            "(volume leak, or a data-dependent metric mislabeled public):\n  "
            + "\n  ".join(problems)
        )


def audit_run(workload, clock=None) -> AuditReport:
    """Run ``workload()`` under a fresh scoped registry and tracer.

    Returns the isolated registry for comparison.  ``clock`` (anything
    with ``now()``) feeds the scoped tracer so audited runs can use a
    virtual clock.
    """
    from repro import telemetry

    with telemetry.scoped_registry() as registry, telemetry.scoped_tracer(
        clock=clock
    ):
        result = workload()
    return AuditReport(registry=registry, result=result)
