"""SLO objectives with Google-SRE-style multi-window burn-rate alerts.

An :class:`SLObjective` promises a fraction of *good* events — requests
that succeeded (availability) or finished under a latency threshold
(latency).  The error **budget** is ``1 - target``; the **burn rate**
over a window is ``bad_fraction / budget`` — burn 1.0 spends the budget
exactly at the sustainable pace, burn 14 spends a month's budget in two
days.  An alert fires only when *both* a long and a short window exceed
a rule's factor: the long window proves the problem is real (not one
blip), the short window proves it is *still happening* (no alerting on
long-recovered incidents).

Everything runs off the injectable clock (``now()``), so the chaos
harness evaluates burn rates on the :class:`~repro.faults.clock.VirtualClock`
deterministically: an injected ``shard.slow`` burns its dispatch budget
in virtual seconds and must trip the latency objective within one
evaluation window, while fault-free runs must stay quiet — both are
regression-tested, not hoped for.

Secrecy: every quantity here derives from request *outcomes and
timing* — a side channel — so the SLO metric families are tagged
``DATA_DEPENDENT`` and the ops-plane snapshot carries the same tag.
Burn rates must never be exported across the trust boundary as if they
were public-size.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import TelemetryError

AVAILABILITY = "availability"
LATENCY = "latency"


@dataclass(frozen=True)
class SLObjective:
    """One promise: ``target`` fraction of events must be good."""

    name: str
    kind: str  # AVAILABILITY | LATENCY
    target: float  # e.g. 0.99 — fraction of good events promised
    threshold_seconds: float | None = None  # LATENCY only

    def __post_init__(self):
        if self.kind not in (AVAILABILITY, LATENCY):
            raise TelemetryError(
                f"unknown SLO kind {self.kind!r}; use "
                f"{AVAILABILITY!r} or {LATENCY!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise TelemetryError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.kind == LATENCY and self.threshold_seconds is None:
            raise TelemetryError(
                f"latency objective {self.name!r} needs threshold_seconds"
            )

    @property
    def budget(self) -> float:
        """The error budget: the bad fraction the target tolerates."""
        return 1.0 - self.target

    def is_bad(self, latency_seconds: float, ok: bool) -> bool:
        if self.kind == AVAILABILITY:
            return not ok
        return latency_seconds > float(self.threshold_seconds)


@dataclass(frozen=True)
class BurnRule:
    """Alert when both windows burn faster than ``factor`` × budget."""

    long_window: float   # seconds
    short_window: float  # seconds
    factor: float        # burn-rate multiple that trips the alert


# The classic two-rule ladder: fast burn (page) and slow burn (ticket).
DEFAULT_RULES = (
    BurnRule(long_window=3600.0, short_window=300.0, factor=14.4),
    BurnRule(long_window=21600.0, short_window=1800.0, factor=6.0),
)

DEFAULT_OBJECTIVES = (
    SLObjective(name="availability", kind=AVAILABILITY, target=0.99),
    SLObjective(
        name="latency-p99", kind=LATENCY, target=0.99, threshold_seconds=30.0
    ),
)


@dataclass(frozen=True)
class SLOAlert:
    """One tripped burn-rate rule at one evaluation instant."""

    objective: str
    kind: str
    factor: float
    long_window: float
    short_window: float
    long_burn: float
    short_burn: float
    at: float

    def summary(self) -> str:
        return (
            f"SLO {self.objective!r} burning {self.long_burn:.1f}x budget "
            f"over {self.long_window:.0f}s (short {self.short_burn:.1f}x "
            f"over {self.short_window:.0f}s, threshold {self.factor}x)"
        )


@dataclass
class _Event:
    at: float
    latency: float
    ok: bool


class SLOMonitor:
    """Records request outcomes; evaluates burn-rate alerts on demand.

    ``record`` is O(1); ``evaluate`` walks the retained event window
    (bounded by ``max_events`` and the longest rule window).  All
    timestamps come from the injectable ``clock``.
    """

    def __init__(
        self,
        clock,
        objectives: tuple[SLObjective, ...] = DEFAULT_OBJECTIVES,
        rules: tuple[BurnRule, ...] = DEFAULT_RULES,
        max_events: int = 4096,
    ):
        self.clock = clock
        self.objectives = tuple(objectives)
        self.rules = tuple(sorted(rules, key=lambda r: -r.factor))
        self._events: deque[_Event] = deque(maxlen=max_events)

    # ------------------------------------------------------------- recording

    def record(self, latency_seconds: float, ok: bool = True) -> None:
        """Record one finished request's latency and outcome."""
        self._events.append(
            _Event(at=self.clock.now(), latency=latency_seconds, ok=ok)
        )
        from repro import telemetry

        for objective in self.objectives:
            if objective.is_bad(latency_seconds, ok):
                telemetry.counter(
                    "concealer_slo_bad_events_total",
                    "requests that violated an SLO objective "
                    "(outcome/timing-derived: never public)",
                    labels=("objective",),
                ).labels(objective=objective.name).inc()

    # ------------------------------------------------------------ evaluation

    def _window_burn(
        self, objective: SLObjective, window: float, now: float
    ) -> float:
        total = bad = 0
        for event in self._events:
            if event.at > now - window:
                total += 1
                bad += objective.is_bad(event.latency, event.ok)
        if total == 0:
            return 0.0
        return (bad / total) / objective.budget

    def evaluate(self) -> list[SLOAlert]:
        """All currently tripped (objective, rule) pairs.

        At most one alert per objective — the fastest-burning rule wins,
        which is the one an operator should page on.
        """
        now = self.clock.now()
        alerts: list[SLOAlert] = []
        for objective in self.objectives:
            for rule in self.rules:
                long_burn = self._window_burn(
                    objective, rule.long_window, now
                )
                short_burn = self._window_burn(
                    objective, rule.short_window, now
                )
                if long_burn >= rule.factor and short_burn >= rule.factor:
                    alerts.append(
                        SLOAlert(
                            objective=objective.name,
                            kind=objective.kind,
                            factor=rule.factor,
                            long_window=rule.long_window,
                            short_window=rule.short_window,
                            long_burn=long_burn,
                            short_burn=short_burn,
                            at=now,
                        )
                    )
                    break
        if alerts:
            from repro import telemetry

            for alert in alerts:
                telemetry.counter(
                    "concealer_slo_alerts_total",
                    "burn-rate alerts raised at evaluation time "
                    "(outcome/timing-derived: never public)",
                    labels=("objective",),
                ).labels(objective=alert.objective).inc()
        return alerts

    def snapshot(self) -> dict:
        """The ops-plane view: objectives, burns per rule, live alerts."""
        now = self.clock.now()
        alerts = self.evaluate()
        objectives = []
        for objective in self.objectives:
            rules = [
                {
                    "factor": rule.factor,
                    "long_window_s": rule.long_window,
                    "short_window_s": rule.short_window,
                    "long_burn": round(
                        self._window_burn(objective, rule.long_window, now), 4
                    ),
                    "short_burn": round(
                        self._window_burn(objective, rule.short_window, now), 4
                    ),
                }
                for rule in self.rules
            ]
            objectives.append(
                {
                    "name": objective.name,
                    "kind": objective.kind,
                    "target": objective.target,
                    "threshold_seconds": objective.threshold_seconds,
                    "budget": round(objective.budget, 6),
                    "rules": rules,
                }
            )
        return {
            "secrecy": "data-dependent",
            "events": len(self._events),
            "objectives": objectives,
            "alerts": [alert.__dict__ for alert in alerts],
        }
