"""A zero-dependency metrics registry with leakage secrecy tags.

The paper's §9 evaluation is an accounting exercise — where do rows,
fakes, EPC bytes and verification work go? — so the reproduction keeps
the same accounts at runtime: counters, gauges and fixed-bucket
histograms, grouped into labeled families, exported as JSON or
Prometheus text.

The security-flavoured twist is the **secrecy tag** every family
carries:

- :data:`PUBLIC_SIZE` — the value is a pure function of *public*
  parameters (dataset size n, grid geometry, bin size, the query shape
  the adversary observes anyway).  Volume hiding promises that two
  equal-public-size inputs produce identical values here, and
  :mod:`repro.telemetry.audit` asserts exactly that.
- :data:`DATA_DEPENDENT` — the value may depend on plaintext data (rows
  matched, real/fake split), on wall-clock timing (a side channel), or
  on the fault environment.  Exporting it to an untrusted monitoring
  sink would leak beyond the paper's L_s/L_q leakage profile.

``DATA_DEPENDENT`` is the registration default: mislabelling toward
*public* is the dangerous direction, and the auditor exists to catch it.

Families are created lazily (get-or-create) so instrumentation sites do
not need a central schema; re-registration with a conflicting kind,
label set, or secrecy tag fails loudly.  Label cardinality is capped per
family — values beyond the cap aggregate into :data:`OVERFLOW_LABEL`
rather than growing the registry without bound.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass, field

from repro.exceptions import TelemetryError

# One lock guards every mutation across every registry.  The sharded
# async router runs shard work on per-shard threads that all write into
# the same ambient registry, and ``+=`` on an attribute is a
# read-modify-write the GIL may interleave — without the lock,
# concurrent increments lose counts.  A single module-level lock (rather
# than per-child locks) keeps the child objects ``__slots__``-small and
# is never held across user code, only across a couple of attribute
# operations, so contention stays negligible next to query work.
_MUTATION_LOCK = threading.Lock()

PUBLIC_SIZE = "public-size"
DATA_DEPENDENT = "data-dependent"
SECRECY_LEVELS = (PUBLIC_SIZE, DATA_DEPENDENT)

# Per-family cap on distinct label-value combinations; beyond it, new
# combinations collapse into one overflow child.
DEFAULT_LABEL_CARDINALITY = 64
OVERFLOW_LABEL = "__overflow__"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError("counters only go up; use a gauge")
        with _MUTATION_LOCK:
            self.value += amount


class Gauge:
    """A value that can move in both directions (e.g. EPC bytes in use)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, value: int | float) -> None:
        with _MUTATION_LOCK:
            self.value = value

    def inc(self, amount: int | float = 1) -> None:
        with _MUTATION_LOCK:
            self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        with _MUTATION_LOCK:
            self.value -= amount

    def set_max(self, value: int | float) -> None:
        """Keep the high-water mark: ``value = max(value, current)``."""
        with _MUTATION_LOCK:
            if value > self.value:
                self.value = value


class Histogram:
    """Fixed-boundary cumulative histogram (Prometheus semantics).

    ``boundaries`` are the upper bounds of the finite buckets; one
    implicit ``+Inf`` bucket catches the rest.  Boundaries are fixed at
    registration so two runs of the same build always bucket alike.

    An observation may carry an **exemplar** — the trace id of the
    query that produced it (OpenMetrics-style).  The last exemplar per
    bucket is kept, so "what does a p99 query look like?" resolves to a
    dumpable trace.  Exemplars are operational breadcrumbs, not
    samples: they are exported, but excluded from the leakage auditor's
    public view (ids are public-counter-derived, yet *which bucket* a
    given query landed in is timing — a side channel).
    """

    __slots__ = ("boundaries", "bucket_counts", "sum", "count", "exemplars")

    def __init__(self, boundaries: tuple[float, ...]):
        self.boundaries = boundaries
        self.bucket_counts = [0] * (len(boundaries) + 1)
        self.sum = 0.0
        self.count = 0
        self.exemplars: dict[int, str] = {}

    def observe(self, value: int | float, trace_id: str | None = None) -> None:
        """Record one observation, optionally stamped with a trace id."""
        with _MUTATION_LOCK:
            self.sum += value
            self.count += 1
            position = len(self.boundaries)
            for index, bound in enumerate(self.boundaries):
                if value <= bound:
                    position = index
                    break
            self.bucket_counts[position] += 1
            if trace_id is not None:
                self.exemplars[position] = trace_id

    def cumulative_counts(self) -> list[int]:
        """Prometheus ``le`` buckets: cumulative counts, +Inf last."""
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out


@dataclass
class MetricFamily:
    """One named metric and all its labeled children."""

    name: str
    kind: str                      # "counter" | "gauge" | "histogram"
    help: str
    secrecy: str
    label_names: tuple[str, ...]
    max_label_values: int
    boundaries: tuple[float, ...] | None = None   # histograms only
    children: dict[tuple, object] = field(default_factory=dict)

    def labels(self, **labels):
        """The child for one label-value combination (created on demand).

        Beyond ``max_label_values`` distinct combinations, new ones
        aggregate into a single :data:`OVERFLOW_LABEL` child so a buggy
        or adversarial label source cannot balloon the registry.
        """
        if set(labels) != set(self.label_names):
            raise TelemetryError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self.children.get(key)
        if child is None:
            # Two threads racing the first touch of a label combination
            # must agree on one child object, or increments land on an
            # orphan and the family under-counts.
            with _MUTATION_LOCK:
                child = self.children.get(key)
                if child is None:
                    if len(self.children) >= self.max_label_values:
                        key = (OVERFLOW_LABEL,) * len(self.label_names)
                        child = self.children.get(key)
                        if child is not None:
                            return child
                    child = self._new_child()
                    self.children[key] = child
        return child

    def default(self):
        """The single unlabeled child of a label-less family."""
        if self.label_names:
            raise TelemetryError(
                f"metric {self.name!r} requires labels {self.label_names}"
            )
        child = self.children.get(())
        if child is None:
            with _MUTATION_LOCK:
                child = self.children.get(())
                if child is None:
                    child = self._new_child()
                    self.children[()] = child
        return child

    def _new_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.boundaries or ())

    # Convenience pass-throughs so label-less families read naturally:
    # ``registry.counter("x").inc()``.
    def inc(self, amount: int | float = 1) -> None:
        self.default().inc(amount)

    def dec(self, amount: int | float = 1) -> None:
        self.default().dec(amount)

    def set(self, value: int | float) -> None:
        self.default().set(value)

    def set_max(self, value: int | float) -> None:
        self.default().set_max(value)

    def observe(self, value: int | float, trace_id: str | None = None) -> None:
        self.default().observe(value, trace_id=trace_id)


class MetricsRegistry:
    """Holds every metric family of one measurement scope.

    >>> registry = MetricsRegistry()
    >>> registry.counter("demo_rows_total", "rows seen").inc(3)
    >>> registry.value("demo_rows_total")
    3
    """

    def __init__(self, max_label_values: int = DEFAULT_LABEL_CARDINALITY):
        self._families: dict[str, MetricFamily] = {}
        self._max_label_values = max_label_values

    # ------------------------------------------------------------ registration

    def counter(
        self,
        name: str,
        help: str = "",
        secrecy: str = DATA_DEPENDENT,
        labels: tuple[str, ...] = (),
    ) -> MetricFamily:
        """Get or create a counter family."""
        return self._family(name, "counter", help, secrecy, labels, None)

    def gauge(
        self,
        name: str,
        help: str = "",
        secrecy: str = DATA_DEPENDENT,
        labels: tuple[str, ...] = (),
    ) -> MetricFamily:
        """Get or create a gauge family."""
        return self._family(name, "gauge", help, secrecy, labels, None)

    def histogram(
        self,
        name: str,
        help: str = "",
        secrecy: str = DATA_DEPENDENT,
        labels: tuple[str, ...] = (),
        boundaries: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0),
    ) -> MetricFamily:
        """Get or create a histogram family with fixed bucket boundaries."""
        return self._family(name, "histogram", help, secrecy, labels, boundaries)

    def _family(self, name, kind, help, secrecy, labels, boundaries):
        family = self._families.get(name)
        if family is None:
            # First registration may race across threads; serialize it so
            # both sites end up holding the same family object.
            with _MUTATION_LOCK:
                family = self._families.get(name)
                if family is None:
                    return self._register(
                        name, kind, help, secrecy, labels, boundaries
                    )
        if family.kind != kind:
            raise TelemetryError(
                f"metric {name!r} already registered as {family.kind}"
            )
        if family.label_names != tuple(labels):
            raise TelemetryError(
                f"metric {name!r} already registered with labels "
                f"{family.label_names}, not {tuple(labels)}"
            )
        if family.secrecy != secrecy:
            raise TelemetryError(
                f"metric {name!r} already registered with secrecy "
                f"{family.secrecy!r}, not {secrecy!r}"
            )
        return family

    def _register(self, name, kind, help, secrecy, labels, boundaries):
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise TelemetryError(f"invalid label name {label!r}")
        if secrecy not in SECRECY_LEVELS:
            raise TelemetryError(
                f"unknown secrecy {secrecy!r}; use one of {SECRECY_LEVELS}"
            )
        if boundaries is not None and tuple(boundaries) != tuple(
            sorted(boundaries)
        ):
            raise TelemetryError("histogram boundaries must be sorted")
        family = MetricFamily(
            name=name,
            kind=kind,
            help=help,
            secrecy=secrecy,
            label_names=tuple(labels),
            max_label_values=self._max_label_values,
            boundaries=tuple(boundaries) if boundaries is not None else None,
        )
        self._families[name] = family
        return family

    # ---------------------------------------------------------------- reading

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> MetricFamily | None:
        """A family by name, or ``None``."""
        return self._families.get(name)

    def value(self, name: str, **labels):
        """One child's value (counter/gauge) — 0 if never touched."""
        family = self._families.get(name)
        if family is None:
            return 0
        if set(labels) != set(family.label_names):
            raise TelemetryError(
                f"metric {name!r} takes labels {family.label_names}"
            )
        key = tuple(str(labels[n]) for n in family.label_names)
        child = family.children.get(key)
        if child is None:
            return 0
        return child.value

    def total(self, name: str):
        """Sum of a counter/gauge family's children across all labels."""
        family = self._families.get(name)
        if family is None:
            return 0
        return sum(child.value for child in family.children.values())

    def label_values(self, name: str) -> dict[tuple, object]:
        """``{label-tuple: value}`` for a counter/gauge family."""
        family = self._families.get(name)
        if family is None:
            return {}
        return {key: child.value for key, child in family.children.items()}

    # -------------------------------------------------------------- exporters

    def to_json(self) -> str:
        """The whole registry as a JSON document (see :meth:`snapshot`)."""
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def snapshot(self) -> dict:
        """A plain-dict view of every family, for JSON export or asserts."""
        out: dict = {}
        for family in self.families():
            samples = []
            for key in sorted(family.children):
                child = family.children[key]
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    bounds = [str(b) for b in (family.boundaries or ())] + [
                        "+Inf"
                    ]
                    sample = {
                        "labels": labels,
                        "buckets": dict(
                            zip(bounds, child.cumulative_counts())
                        ),
                        "sum": child.sum,
                        "count": child.count,
                    }
                    if child.exemplars:
                        sample["exemplars"] = {
                            bounds[position]: trace_id
                            for position, trace_id in sorted(
                                child.exemplars.items()
                            )
                        }
                    samples.append(sample)
                else:
                    samples.append({"labels": labels, "value": child.value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "secrecy": family.secrecy,
                "samples": samples,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4 line format).

        The secrecy tag rides along as a ``# SECRECY`` comment line so a
        scrape-side policy can drop ``data-dependent`` series before
        they leave the trust boundary.
        """
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            lines.append(f"# SECRECY {family.name} {family.secrecy}")
            for key in sorted(family.children):
                child = family.children[key]
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    bounds = [str(float(b)) for b in (family.boundaries or ())]
                    for position, (bound, count) in enumerate(
                        zip(bounds + ["+Inf"], child.cumulative_counts())
                    ):
                        line = (
                            f"{family.name}_bucket"
                            f"{_label_text({**labels, 'le': bound})} {count}"
                        )
                        exemplar = child.exemplars.get(position)
                        if exemplar is not None:
                            # OpenMetrics-flavoured exemplar annotation;
                            # plain v0.0.4 parsers ignore everything
                            # after the value only in OpenMetrics, so
                            # ride it on a comment line instead.
                            lines.append(line)
                            lines.append(
                                f"# EXEMPLAR {family.name}_bucket"
                                f"{_label_text({**labels, 'le': bound})} "
                                f"trace_id={exemplar}"
                            )
                        else:
                            lines.append(line)
                    lines.append(
                        f"{family.name}_sum{_label_text(labels)} "
                        f"{_format_number(child.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_label_text(labels)} {child.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_label_text(labels)} "
                        f"{_format_number(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _label_text(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_number(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
