"""Trace-context propagation: one trace across threads, shards, the wire.

PR 2's spans nest via an implicit stack, which works inside one thread
of one process.  The sharded fleet broke that: a range query fans out
over per-shard thread pools (and, under ``--serve``, over a JSON-lines
TCP hop), so one query used to produce N+1 disconnected span trees.
This module is the glue that keeps them one trace:

- :class:`SpanContext` — the W3C-``traceparent``-shaped identity of a
  span (``00-<trace_id>-<span_id>-01``), serializable over any hop;
- context variables carrying the *current* span and any *remote* parent,
  so spans opened on another thread (after :func:`propagate`) or behind
  the wire (after :func:`activate`) still join the caller's trace;
- :func:`assemble` — grafts the disconnected local-root subtrees each
  process/shard buffered back into whole trees by ``parent_id``;
- :func:`public_trace_summary` — the leakage-audit view of a trace
  forest: names, structure, public attributes and ids, **no timings**.

Leakage discipline (SECURITY.md item 10): trace and span ids come from a
process-local monotonic **counter**, never from query content, key
material, or row data.  The id sequence is therefore a pure function of
public control flow — two equal-public-view runs allocate identical ids,
which :func:`scoped_ids` makes directly testable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.exceptions import TelemetryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.spans import Span, Tracer

TRACEPARENT_VERSION = "00"
TRACE_FLAGS = "01"

# The identity of the span that is *currently open* in this execution
# context (thread / asyncio task), and the remote parent injected from a
# deserialized traceparent.  ContextVars — not a tracer-local stack — so
# propagation across thread pools and tasks is explicit and re-entrant.
_CURRENT: ContextVar["Span | None"] = ContextVar(
    "concealer_current_span", default=None
)
_REMOTE: ContextVar["SpanContext | None"] = ContextVar(
    "concealer_remote_parent", default=None
)
# The tracer spans should record into in this execution context; falls
# back to the process-ambient tracer when unset (see telemetry.get_tracer).
_BOUND_TRACER: ContextVar["Tracer | None"] = ContextVar(
    "concealer_bound_tracer", default=None
)


@dataclass(frozen=True)
class SpanContext:
    """The wire-serializable identity of one span within one trace."""

    trace_id: str  # 32 lowercase hex chars
    span_id: str   # 16 lowercase hex chars

    def traceparent(self) -> str:
        """W3C-style header value: ``00-<trace_id>-<span_id>-01``."""
        return (
            f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}"
            f"-{TRACE_FLAGS}"
        )

    @classmethod
    def parse(cls, header: str) -> "SpanContext":
        """Parse a ``traceparent`` value; raises TelemetryError if malformed."""
        parts = str(header).split("-")
        if len(parts) != 4:
            raise TelemetryError(f"malformed traceparent {header!r}")
        version, trace_id, span_id, _flags = parts
        if version != TRACEPARENT_VERSION:
            raise TelemetryError(f"unsupported traceparent version {version!r}")
        if len(trace_id) != 32 or len(span_id) != 16:
            raise TelemetryError(f"malformed traceparent ids in {header!r}")
        try:
            int(trace_id, 16), int(span_id, 16)
        except ValueError:
            raise TelemetryError(
                f"non-hex traceparent ids in {header!r}"
            ) from None
        return cls(trace_id=trace_id, span_id=span_id)


# ------------------------------------------------------------ id allocation


class _IdAllocator:
    """Monotonic counter → ids.  Public by construction: the sequence is
    a function of *how many spans were opened*, never of what they saw."""

    def __init__(self, start: int = 1):
        self._lock = threading.Lock()
        self._next = start

    def allocate(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value


_IDS = _IdAllocator()


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id off the public counter."""
    return f"{_IDS.allocate():032x}"


def new_span_id() -> str:
    """A fresh 16-hex-char span id off the public counter."""
    return f"{_IDS.allocate():016x}"


@contextmanager
def scoped_ids(start: int = 1):
    """Swap in a fresh id counter for the ``with`` body.

    The leakage auditor runs each workload under ``scoped_ids()`` so two
    equal-public-view runs allocate the *same* id sequence — turning
    "ids derive from a public counter" from a claim into an assertion.
    """
    global _IDS
    previous = _IDS
    _IDS = _IdAllocator(start=start)
    try:
        yield
    finally:
        _IDS = previous


# ------------------------------------------------------- context accessors


def current_span() -> "Span | None":
    """The innermost open span in this execution context, if any."""
    return _CURRENT.get()


def current_context() -> SpanContext | None:
    """The :class:`SpanContext` a newly opened span would join."""
    span = _CURRENT.get()
    if span is not None:
        return SpanContext(trace_id=span.trace_id, span_id=span.span_id)
    return _REMOTE.get()


def current_trace_id() -> str | None:
    """The active trace id (for exemplars), or ``None`` outside a trace."""
    context = current_context()
    return context.trace_id if context is not None else None


def current_traceparent() -> str | None:
    """The serialized header to send with an outbound request, if any."""
    context = current_context()
    return context.traceparent() if context is not None else None


def annotate(**attributes) -> None:
    """Attach attributes to the current span, if one is open.

    The fault injector and retry policy use this to stamp chaos events
    onto whatever query span happens to be active — without needing a
    span handle threaded through every call site.
    """
    span = _CURRENT.get()
    if span is not None:
        span.set(**attributes)


@contextmanager
def activate(context: SpanContext | None):
    """Adopt a deserialized remote parent for the ``with`` body.

    Spans opened inside join ``context``'s trace as children of the
    remote span.  ``None`` is allowed (no-op) so servers can wrap every
    request handler unconditionally.
    """
    if context is None:
        yield
        return
    token = _REMOTE.set(context)
    try:
        yield
    finally:
        _REMOTE.reset(token)


@dataclass(frozen=True)
class CapturedContext:
    """A snapshot of the trace context at one call site."""

    parent: "Span | None"
    remote: SpanContext | None
    tracer: "Tracer | None"


def capture() -> CapturedContext:
    """Snapshot the trace context for a later :func:`propagate` hop."""
    return CapturedContext(
        parent=_CURRENT.get(), remote=_REMOTE.get(), tracer=_BOUND_TRACER.get()
    )


def propagate(fn, captured: CapturedContext | None = None, tracer=None):
    """Wrap ``fn`` so it runs under a captured trace context.

    ``ThreadPoolExecutor`` / ``loop.run_in_executor`` do **not** carry
    context variables onto worker threads — every thread hop in the
    router wraps its thunk with ``propagate`` (capturing at submit time)
    so the shard-side spans join the router's trace.  ``tracer``
    additionally binds a destination tracer (the shard's own buffer) for
    the duration of the call.  Safe to invoke concurrently (hedged
    dispatch runs primary and hedge at once): each call sets and resets
    its own tokens on its own thread's context.
    """
    snapshot = captured if captured is not None else capture()
    bound = tracer if tracer is not None else snapshot.tracer

    def wrapper(*args, **kwargs):
        tokens = [
            (_CURRENT, _CURRENT.set(snapshot.parent)),
            (_REMOTE, _REMOTE.set(snapshot.remote)),
            (_BOUND_TRACER, _BOUND_TRACER.set(bound)),
        ]
        try:
            return fn(*args, **kwargs)
        finally:
            for var, token in reversed(tokens):
                var.reset(token)

    return wrapper


@contextmanager
def bind_tracer(tracer: "Tracer | None"):
    """Route spans in this execution context into ``tracer``.

    ``None`` is a no-op (keep the ambient tracer), so call sites can
    write ``with bind_tracer(shard.tracer):`` without a conditional.
    """
    if tracer is None:
        yield
        return
    token = _BOUND_TRACER.set(tracer)
    try:
        yield
    finally:
        _BOUND_TRACER.reset(token)


def bound_tracer() -> "Tracer | None":
    """The context-bound tracer, or ``None`` when unbound."""
    return _BOUND_TRACER.get()


# --------------------------------------------------------- serialization


def span_to_dict(span: "Span") -> dict:
    """One span subtree as plain JSON-able dicts (the wire format)."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "error": span.error,
        "secrecy": span.secrecy,
        "attributes": dict(span.attributes),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(payload: dict) -> "Span":
    """Rebuild a span subtree from :func:`span_to_dict` output."""
    from repro.telemetry.spans import Span

    span = Span(
        name=payload.get("name", ""),
        attributes=dict(payload.get("attributes", {})),
        start=payload.get("start", 0.0),
        end=payload.get("end"),
        error=payload.get("error"),
        trace_id=payload.get("trace_id", ""),
        span_id=payload.get("span_id", ""),
        parent_id=payload.get("parent_id"),
        secrecy=payload.get("secrecy", "public-size"),
    )
    span.children = [
        span_from_dict(child) for child in payload.get("children", [])
    ]
    return span


def assemble(roots: Iterable["Span"]) -> list["Span"]:
    """Graft disconnected local-root subtrees into whole trace trees.

    Each process (router) and each shard buffers only *local* roots —
    subtrees whose parent lives in another tracer, linked by
    ``parent_id`` alone.  Given every buffered root, this stitches
    children under their parents (in ascending start order for
    determinism) and returns the true roots, oldest first.  Inputs are
    deep-copied; the per-tracer buffers are never mutated.
    """
    copies = [span_from_dict(span_to_dict(root)) for root in roots]
    by_span_id: dict[str, "Span"] = {}
    for copy in copies:
        for node in copy.walk():
            by_span_id[node.span_id] = node
    orphans: list["Span"] = []
    for copy in copies:
        parent = (
            by_span_id.get(copy.parent_id)
            if copy.parent_id is not None
            else None
        )
        if parent is not None and parent is not copy:
            parent.children.append(copy)
        else:
            orphans.append(copy)
    for node in by_span_id.values():
        node.children.sort(key=lambda child: (child.start, child.span_id))
    orphans.sort(key=lambda root: (root.start, root.span_id))
    return orphans


def find_trace(roots: Iterable["Span"], trace_id: str) -> "Span | None":
    """The assembled tree for ``trace_id``, or ``None`` if unknown."""
    for root in assemble(roots):
        if root.trace_id == trace_id:
            return root
    return None


# ------------------------------------------------------- public summaries


def public_span_summary(span: "Span") -> dict | None:
    """The leakage-audit view of one subtree: structure, not timings.

    Includes span names, ids, error types, and attributes of
    ``public-size`` spans; excludes every duration/timestamp (timing is
    a side channel) and prunes subtrees explicitly tagged
    ``data-dependent``.  Children are sorted canonically so thread
    interleaving cannot make two equal runs *look* different.
    """
    from repro.telemetry.metrics import PUBLIC_SIZE

    if span.secrecy != PUBLIC_SIZE:
        return None
    children = [public_span_summary(child) for child in span.children]
    summary = {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "error": span.error,
        "attributes": {
            key: span.attributes[key] for key in sorted(span.attributes)
        },
        "children": sorted(
            (child for child in children if child is not None),
            key=lambda child: (child["name"], child["span_id"]),
        ),
    }
    return summary


def public_trace_summary(roots: Iterable["Span"]) -> list[dict]:
    """Public summaries for an assembled forest, canonically ordered."""
    summaries = [
        summary
        for summary in (
            public_span_summary(root) for root in assemble(roots)
        )
        if summary is not None
    ]
    summaries.sort(key=lambda summary: summary["trace_id"])
    return summaries


def stage_timings(root: "Span") -> dict[str, float]:
    """Total seconds per ``stage=`` attribute across one assembled tree."""
    totals: dict[str, float] = {}
    for node in root.walk():
        stage = node.attributes.get("stage")
        if stage is not None:
            totals[stage] = totals.get(stage, 0.0) + node.duration
    return totals
