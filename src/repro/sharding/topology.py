"""Cell-id → shard placement: deterministic, unkeyed, public-size.

The sharded tier partitions *by cell-id*, the same unit the bin store
already exposes to the host: which cell-ids a query touches is exactly
the L_q access-pattern leakage of the paper, so routing on a public
hash of the cell-id tells the adversary nothing it does not already
see.  Deliberately **unkeyed** (plain SHA-256 over the cell-id, no
secret material): a keyed map would suggest the placement hides
something, and a hidden placement could not be computed by the
untrusted router anyway.

Determinism matters twice over: the data provider partitions records
with the same map the router plans queries with (no resharding
metadata to ship), and chaos replays depend on the map never moving
between runs or hosts (``PYTHONHASHSEED`` does not affect it).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class ShardTopology:
    """The static cell-id → shard map for one deployment.

    >>> topo = ShardTopology(4)
    >>> topo.shard_of(7) == topo.shard_of(7)
    True
    >>> sorted(topo.shards_for([0, 1, 2, 3]).keys()) == sorted(
    ...     {topo.shard_of(c) for c in range(4)})
    True
    """

    shard_count: int

    def __post_init__(self):
        if self.shard_count < 1:
            raise ValueError("shard_count must be >= 1")

    def shard_of(self, cell_id: int) -> int:
        """The shard owning one cell-id (uniform by SHA-256 avalanche)."""
        digest = hashlib.sha256(b"concealer-shard|%d" % cell_id).digest()
        return int.from_bytes(digest[:8], "big") % self.shard_count

    def shards_for(self, cell_ids) -> dict[int, list[int]]:
        """Group cell-ids by owning shard, both axes sorted.

        The sorted return order is what makes scatter-gather merges
        deterministic: participants are visited in ascending shard id
        regardless of the set/iteration order the planner produced.
        """
        owners: dict[int, list[int]] = {}
        for cell_id in sorted(set(cell_ids)):
            owners.setdefault(self.shard_of(cell_id), []).append(cell_id)
        return dict(sorted(owners.items()))

    def all_shards(self) -> tuple[int, ...]:
        return tuple(range(self.shard_count))
