"""``python -m repro --serve`` — the sharded fleet behind a TCP door.

A deliberately tiny JSON-lines protocol (one request object per line,
one response object per line) so load generators, the service bench,
and ``nc`` can all drive the fleet without a client library:

Requests::

    {"op": "point", "index_values": ["ap1"], "timestamp": 120}
    {"op": "range", "index_values": [["ap0", "ap1"]],
     "time_start": 0, "time_end": 1800,
     "aggregate": "count", "method": "ebpb"}
    {"op": "health"}
    {"op": "heal"}

plus the read-only **ops plane** (PR 7):

    {"op": "metrics", "format": "json" | "prom"}
    {"op": "traces", "limit": 16}       # assembled cross-shard trees
    {"op": "trace", "trace_id": "..."}  # one assembled tree
    {"op": "slo"}                       # objectives, burn rates, alerts

Query requests may carry ``"traceparent": "00-<trace>-<span>-01"``; the
server joins the client's trace and every query response carries the
``trace_id`` it ran under, so a client can fetch the assembled tree for
exactly the query it just saw time out.  Each shard buffers its spans
in its *own* tracer (the disconnected subtrees the ops plane merges) —
that is the same wire/assembly machinery a genuinely multi-process
deployment needs, exercised in one process.

Responses carry ``ok``; query responses add ``answer``, ``partial``,
``verified_shards`` / ``missing_shards`` (the QueryStats shard
accounting), and failures carry the *typed* error name — a
``ShardUnavailable`` on the wire is distinguishable from a verification
failure, exactly like in process.

Lifecycle: SIGTERM / SIGINT stop the accept loop, **drain** in-flight
queries under a deadline, checkpoint every shard, and exit 0 — the
graceful-shutdown contract the systemd/K8s style supervisors assume.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal

from repro import telemetry
from repro.core.queries import Aggregate, PointQuery, RangeQuery
from repro.exceptions import ConcealerError, TelemetryError
from repro.sharding.results import PartialResult
from repro.sharding.router import AsyncShardRouter
from repro.telemetry import tracing
from repro.telemetry.slo import SLOMonitor


def _parse_index_values(raw) -> tuple:
    """JSON slots → query slots (lists become wildcard tuples)."""
    return tuple(
        tuple(slot) if isinstance(slot, list) else slot for slot in raw
    )


def attach_ops_plane(router: AsyncShardRouter, trace_capacity: int = 256):
    """Wire the fleet for observation: per-shard span buffers + SLO.

    Each shard gets its own :class:`~repro.telemetry.spans.Tracer`
    (leaving any already-assigned buffer alone) and the router gets an
    :class:`SLOMonitor` on the fleet clock.  Returns the monitor.
    """
    sharded = router.sharded
    for shard in sharded.shards:
        if shard.tracer is None:
            shard.tracer = telemetry.Tracer(
                clock=sharded.clock, capacity=trace_capacity
            )
    if router.slo is None:
        router.slo = SLOMonitor(clock=sharded.clock)
    return router.slo


def fleet_tracers(router: AsyncShardRouter) -> dict:
    """Every span buffer the fleet writes into, by component name."""
    tracers = {"router": telemetry.get_tracer()}
    for shard in router.sharded.shards:
        if shard.tracer is not None:
            tracers[f"shard-{shard.shard_id}"] = shard.tracer
    return tracers


def assemble_fleet_traces(router: AsyncShardRouter) -> tuple[list, dict]:
    """Merge all buffers into whole trees + per-buffer drop counts.

    The shard tracers hold *local roots* (spans whose parent lives in
    the router's buffer); :func:`tracing.assemble` grafts them back
    under their parents by span id.
    """
    roots: list = []
    dropped: dict = {}
    for component, tracer in fleet_tracers(router).items():
        roots.extend(tracer.traces())
        dropped[component] = tracer.dropped
    return tracing.assemble(roots), dropped


def _query_response(answer, stats) -> dict:
    response = {
        "ok": True,
        "partial": isinstance(answer, PartialResult),
        "verified_shards": list(stats.verified_shards),
        "missing_shards": list(stats.missing_shards),
        "verified": stats.merged.verified,
    }
    if isinstance(answer, PartialResult):
        response["answer"] = answer.answer
        response["served_shards"] = list(answer.served_shards)
        response["errors"] = dict(answer.errors)
    else:
        response["answer"] = answer
    return response


class ShardServer:
    """Asyncio JSON-lines front end over an :class:`AsyncShardRouter`."""

    def __init__(
        self,
        router: AsyncShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_seconds: float = 10.0,
        trace_capacity: int = 256,
    ):
        self.router = router
        self.host = host
        self.port = port
        self.drain_seconds = drain_seconds
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()
        # Ops plane: each shard buffers spans in its own tracer (the
        # disconnected subtrees a multi-process fleet would ship home),
        # and the router records request outcomes into an SLO monitor
        # on the fleet's injectable clock.
        self.slo = attach_ops_plane(router, trace_capacity=trace_capacity)

    def _assembled_traces(self) -> tuple[list, dict]:
        return assemble_fleet_traces(self.router)

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_stop(self) -> None:
        """Signal-handler entry point: begin graceful shutdown."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_stop)

    async def serve_until_stopped(self) -> bool:
        """Accept until a stop is requested, then drain and checkpoint.

        Returns the drain verdict (True = all in-flight work finished
        before the deadline).  Callers exit 0 either way — shutdown
        completed and state was checkpointed; the verdict is logged so
        an operator can tell a clean drain from a deadline expiry.
        """
        await self._stop.wait()
        # Stop accepting before draining: a connection racing shutdown
        # gets a RouterFenced response, never a hung socket.
        self._server.close()
        await self._server.wait_closed()
        return await self.router.shutdown(self.drain_seconds)

    # ------------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_request(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_request(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            operation = request.get("op")
            if operation in ("point", "range"):
                return await self._handle_query(operation, request)
            if operation == "metrics":
                fmt = request.get("format", "json")
                if fmt == "prom":
                    return {
                        "ok": True,
                        "format": "prom",
                        "text": telemetry.get_registry().to_prometheus(),
                    }
                if fmt != "json":
                    return {"ok": False, "error": "BadRequest",
                            "message": f"unknown metrics format {fmt!r}"}
                return {
                    "ok": True,
                    "format": "json",
                    "metrics": telemetry.get_registry().snapshot(),
                }
            if operation == "traces":
                limit = int(request.get("limit", 16))
                roots, dropped = self._assembled_traces()
                return {
                    "ok": True,
                    "traces": [
                        tracing.span_to_dict(root) for root in roots[-limit:]
                    ],
                    "assembled": len(roots),
                    "dropped": dropped,
                }
            if operation == "trace":
                trace_id = request.get("trace_id", "")
                roots, _dropped = self._assembled_traces()
                matches = [
                    root for root in roots if root.trace_id == trace_id
                ]
                if not matches:
                    return {"ok": False, "error": "TraceNotFound",
                            "message": f"no buffered trace {trace_id!r}"}
                return {
                    "ok": True,
                    "trace_id": trace_id,
                    "roots": [tracing.span_to_dict(root) for root in matches],
                }
            if operation == "slo":
                return {"ok": True, "slo": self.slo.snapshot()}
            if operation == "health":
                # Structured per-shard causes (satellite of PR 8): the
                # old single-string reason masked secondary causes — a
                # crashed enclave hid two quarantined replicas.  The
                # `status` field keeps the old string contract;
                # everything else is additive.  Read-only: built from
                # non-mutating breaker/quarantine state so polling
                # health can never perturb a breaker's half-open probe.
                sharded = self.router.sharded
                shard_health = {}
                for shard in sharded.shards:
                    detail = shard.isolation_detail()
                    detail["status"] = (
                        "healthy"
                        if detail["primary"] == "healthy"
                        else detail["primary"]
                    )
                    detail["replica_breakers"] = [
                        breaker.state
                        for breaker in (
                            shard.replicated_engine().breakers
                            if shard.replicated_engine() is not None
                            else []
                        )
                    ]
                    shard_health[shard.shard_id] = detail
                return {
                    "ok": True,
                    "shards": shard_health,
                    "inflight": self.router.inflight,
                    "epochs": sharded.ingested_epochs(),
                }
            if operation == "heal":
                return {"ok": True, "actions": await self.router.heal()}
            return {"ok": False, "error": "BadRequest",
                    "message": f"unknown op {operation!r}"}
        except ConcealerError as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as error:
            return {
                "ok": False,
                "error": "BadRequest",
                "message": f"{type(error).__name__}: {error}",
            }

    async def _handle_query(self, operation: str, request: dict) -> dict:
        """Run a point/range op, joining the client's trace if offered.

        The ``server.request`` span is the server-side root: a client
        traceparent makes it a child of the caller's span; without one
        it starts a fresh trace.  Either way its trace id rides back on
        the response so the client can fetch the assembled tree.
        """
        remote = None
        traceparent = request.get("traceparent")
        if traceparent is not None:
            try:
                remote = tracing.SpanContext.parse(traceparent)
            except TelemetryError:
                return {"ok": False, "error": "BadRequest",
                        "message": f"bad traceparent {traceparent!r}"}
        trace_id = None
        try:
            with tracing.activate(remote):
                with telemetry.span("server.request", op=operation) as srv:
                    trace_id = getattr(srv, "trace_id", None)
                    if operation == "point":
                        query = PointQuery(
                            index_values=_parse_index_values(
                                request["index_values"]
                            ),
                            timestamp=int(request["timestamp"]),
                            aggregate=Aggregate(
                                request.get("aggregate", "count")
                            ),
                            target=request.get("target"),
                            k=int(request.get("k", 1)),
                        )
                        answer, stats = await self.router.execute_point(query)
                    else:
                        query = RangeQuery(
                            index_values=_parse_index_values(
                                request["index_values"]
                            ),
                            time_start=int(request["time_start"]),
                            time_end=int(request["time_end"]),
                            aggregate=Aggregate(
                                request.get("aggregate", "count")
                            ),
                            target=request.get("target"),
                            k=int(request.get("k", 1)),
                        )
                        answer, stats = await self.router.execute_range(
                            query, method=request.get("method", "ebpb")
                        )
            response = _query_response(answer, stats)
        except ConcealerError as error:
            response = {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        if trace_id is not None:
            response["trace_id"] = trace_id
        return response


def build_demo_fleet(
    shards: int, workdir, seed: int = 99, hedge_delay=None, replicas: int = 1
):
    """A provisioned, ingested fleet + router for --serve and the bench.

    One WiFi epoch (same generator as the demo) lands on ``shards``
    shards via the two-phase coordinator; with ``replicas > 1`` every
    shard fronts its own replica group.  The caller owns teardown.
    """
    import random

    from repro import WIFI_SCHEMA, DataProvider, GridSpec
    from repro.sharding.coordinator import ingest_epoch_sharded
    from repro.sharding.service import ShardedConfig, ShardedService
    from repro.workloads import WifiConfig, generate_wifi_epoch

    config = WifiConfig(access_points=16, devices=80, seed=seed)
    records = generate_wifi_epoch(config, epoch_start=0, epoch_duration=3600)
    spec = GridSpec(
        dimension_sizes=(16, 30), cell_id_count=128, epoch_duration=3600
    )
    provider = DataProvider(
        WIFI_SCHEMA, spec, first_epoch_id=0,
        time_granularity=60, rng=random.Random(seed),
    )
    sharded = ShardedService.build(
        provider,
        ShardedConfig(shards=shards, replicas=replicas),
        workdir,
        retry_rng_seed=f"serve-{seed}",
    )
    ingest_epoch_sharded(sharded, records, epoch_id=0)
    router = AsyncShardRouter(sharded, hedge_delay=hedge_delay)
    return sharded, router, records


async def serve(
    shards: int,
    port: int,
    workdir,
    drain_seconds: float = 10.0,
    replicas: int = 1,
) -> int:
    """The ``--serve`` entry point; returns a process exit code."""
    sharded, router, records = build_demo_fleet(
        shards, workdir, replicas=replicas
    )
    server = ShardServer(router, port=port, drain_seconds=drain_seconds)
    bound = await server.start()
    server.install_signal_handlers()
    replica_note = (
        f" x {replicas} replica(s)" if replicas > 1 else ""
    )
    print(
        f"serving {len(records)} records across {shards} shard(s)"
        f"{replica_note} on 127.0.0.1:{bound} — JSON lines; SIGTERM "
        "drains and checkpoints",
        flush=True,
    )
    drained = await server.serve_until_stopped()
    print(
        "shutdown: "
        + ("drained cleanly" if drained else "drain deadline expired")
        + ", all shards checkpointed",
        flush=True,
    )
    return 0
