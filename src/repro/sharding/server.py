"""``python -m repro --serve`` — the sharded fleet behind a TCP door.

A deliberately tiny JSON-lines protocol (one request object per line,
one response object per line) so load generators, the service bench,
and ``nc`` can all drive the fleet without a client library:

Requests::

    {"op": "point", "index_values": ["ap1"], "timestamp": 120}
    {"op": "range", "index_values": [["ap0", "ap1"]],
     "time_start": 0, "time_end": 1800,
     "aggregate": "count", "method": "ebpb"}
    {"op": "health"}
    {"op": "heal"}

Responses carry ``ok``; query responses add ``answer``, ``partial``,
``verified_shards`` / ``missing_shards`` (the QueryStats shard
accounting), and failures carry the *typed* error name — a
``ShardUnavailable`` on the wire is distinguishable from a verification
failure, exactly like in process.

Lifecycle: SIGTERM / SIGINT stop the accept loop, **drain** in-flight
queries under a deadline, checkpoint every shard, and exit 0 — the
graceful-shutdown contract the systemd/K8s style supervisors assume.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal

from repro.core.queries import Aggregate, PointQuery, RangeQuery
from repro.exceptions import ConcealerError
from repro.sharding.results import PartialResult
from repro.sharding.router import AsyncShardRouter


def _parse_index_values(raw) -> tuple:
    """JSON slots → query slots (lists become wildcard tuples)."""
    return tuple(
        tuple(slot) if isinstance(slot, list) else slot for slot in raw
    )


def _query_response(answer, stats) -> dict:
    response = {
        "ok": True,
        "partial": isinstance(answer, PartialResult),
        "verified_shards": list(stats.verified_shards),
        "missing_shards": list(stats.missing_shards),
        "verified": stats.merged.verified,
    }
    if isinstance(answer, PartialResult):
        response["answer"] = answer.answer
        response["served_shards"] = list(answer.served_shards)
        response["errors"] = dict(answer.errors)
    else:
        response["answer"] = answer
    return response


class ShardServer:
    """Asyncio JSON-lines front end over an :class:`AsyncShardRouter`."""

    def __init__(
        self,
        router: AsyncShardRouter,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_seconds: float = 10.0,
    ):
        self.router = router
        self.host = host
        self.port = port
        self.drain_seconds = drain_seconds
        self._server: asyncio.AbstractServer | None = None
        self._stop = asyncio.Event()

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def request_stop(self) -> None:
        """Signal-handler entry point: begin graceful shutdown."""
        self._stop.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self.request_stop)

    async def serve_until_stopped(self) -> bool:
        """Accept until a stop is requested, then drain and checkpoint.

        Returns the drain verdict (True = all in-flight work finished
        before the deadline).  Callers exit 0 either way — shutdown
        completed and state was checkpointed; the verdict is logged so
        an operator can tell a clean drain from a deadline expiry.
        """
        await self._stop.wait()
        # Stop accepting before draining: a connection racing shutdown
        # gets a RouterFenced response, never a hung socket.
        self._server.close()
        await self._server.wait_closed()
        return await self.router.shutdown(self.drain_seconds)

    # ------------------------------------------------------------- connections

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_request(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _handle_request(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            operation = request.get("op")
            if operation == "point":
                query = PointQuery(
                    index_values=_parse_index_values(request["index_values"]),
                    timestamp=int(request["timestamp"]),
                    aggregate=Aggregate(request.get("aggregate", "count")),
                    target=request.get("target"),
                    k=int(request.get("k", 1)),
                )
                answer, stats = await self.router.execute_point(query)
                return _query_response(answer, stats)
            if operation == "range":
                query = RangeQuery(
                    index_values=_parse_index_values(request["index_values"]),
                    time_start=int(request["time_start"]),
                    time_end=int(request["time_end"]),
                    aggregate=Aggregate(request.get("aggregate", "count")),
                    target=request.get("target"),
                    k=int(request.get("k", 1)),
                )
                answer, stats = await self.router.execute_range(
                    query, method=request.get("method", "ebpb")
                )
                return _query_response(answer, stats)
            if operation == "health":
                sharded = self.router.sharded
                return {
                    "ok": True,
                    "shards": {
                        shard.shard_id: (
                            "healthy"
                            if shard.healthy()
                            else shard.isolation_reason()
                        )
                        for shard in sharded.shards
                    },
                    "inflight": self.router.inflight,
                    "epochs": sharded.ingested_epochs(),
                }
            if operation == "heal":
                return {"ok": True, "actions": await self.router.heal()}
            return {"ok": False, "error": "BadRequest",
                    "message": f"unknown op {operation!r}"}
        except ConcealerError as error:
            return {
                "ok": False,
                "error": type(error).__name__,
                "message": str(error),
            }
        except (KeyError, ValueError, TypeError, json.JSONDecodeError) as error:
            return {
                "ok": False,
                "error": "BadRequest",
                "message": f"{type(error).__name__}: {error}",
            }


def build_demo_fleet(shards: int, workdir, seed: int = 99, hedge_delay=None):
    """A provisioned, ingested fleet + router for --serve and the bench.

    One WiFi epoch (same generator as the demo) lands on ``shards``
    shards via the two-phase coordinator; the caller owns teardown.
    """
    import random

    from repro import WIFI_SCHEMA, DataProvider, GridSpec
    from repro.sharding.coordinator import ingest_epoch_sharded
    from repro.sharding.service import ShardedConfig, ShardedService
    from repro.workloads import WifiConfig, generate_wifi_epoch

    config = WifiConfig(access_points=16, devices=80, seed=seed)
    records = generate_wifi_epoch(config, epoch_start=0, epoch_duration=3600)
    spec = GridSpec(
        dimension_sizes=(16, 30), cell_id_count=128, epoch_duration=3600
    )
    provider = DataProvider(
        WIFI_SCHEMA, spec, first_epoch_id=0,
        time_granularity=60, rng=random.Random(seed),
    )
    sharded = ShardedService.build(
        provider,
        ShardedConfig(shards=shards),
        workdir,
        retry_rng_seed=f"serve-{seed}",
    )
    ingest_epoch_sharded(sharded, records, epoch_id=0)
    router = AsyncShardRouter(sharded, hedge_delay=hedge_delay)
    return sharded, router, records


async def serve(shards: int, port: int, workdir, drain_seconds: float = 10.0) -> int:
    """The ``--serve`` entry point; returns a process exit code."""
    sharded, router, records = build_demo_fleet(shards, workdir)
    server = ShardServer(router, port=port, drain_seconds=drain_seconds)
    bound = await server.start()
    server.install_signal_handlers()
    print(
        f"serving {len(records)} records across {shards} shard(s) "
        f"on 127.0.0.1:{bound} — JSON lines; SIGTERM drains and "
        "checkpoints",
        flush=True,
    )
    drained = await server.serve_until_stopped()
    print(
        "shutdown: "
        + ("drained cleanly" if drained else "drain deadline expired")
        + ", all shards checkpointed",
        flush=True,
    )
    return 0
