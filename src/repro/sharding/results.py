"""Typed results for scatter-gather queries over a degraded fleet.

The sharded tier's contract under failure is *fail open, loudly typed*:
a range query whose participant set includes isolated shards does not
raise — it returns a :class:`PartialResult` that names exactly which
shards answered (verified) and which were missing, with the merged
answer covering only the served partitions.  Callers that need
completeness check :attr:`PartialResult.complete`; callers that can
tolerate partial coverage (dashboards, monitoring) read the answer and
the shard sets.  A partial answer that *mis-states* its served set
would be silent wrongness — the sharded chaos oracle checks partial
answers against the truth restricted to the named served shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.queries import QueryStats


@dataclass(frozen=True)
class PartialResult:
    """A scatter-gather answer covering only the healthy shards.

    ``answer`` merges the served shards' sub-answers (ascending shard
    id); ``missing_shards`` names every participant that was isolated,
    with ``errors`` carrying the typed error name each one failed with.
    """

    answer: object
    served_shards: tuple[int, ...]
    missing_shards: tuple[int, ...]
    errors: dict[int, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.missing_shards

    def __repr__(self) -> str:  # compact, oracle-friendly
        return (
            f"PartialResult(answer={self.answer!r}, "
            f"served={list(self.served_shards)}, "
            f"missing={list(self.missing_shards)})"
        )


def merged_stats(
    per_shard: dict[int, QueryStats],
    missing: tuple[int, ...] = (),
) -> QueryStats:
    """Fold per-shard stats into one request-level view.

    Volume counters add; ``verified`` holds only if *every* serving
    shard verified.  The verified shard set rides in ``extra`` —
    ``verified_shards`` / ``missing_shards`` — which is how QueryStats
    names the shards behind a (partial) answer without growing a new
    field for every consumer of the existing struct.
    """
    merged = QueryStats()
    for shard_id in sorted(per_shard):
        stats = per_shard[shard_id]
        merged.trapdoors_generated += stats.trapdoors_generated
        merged.rows_fetched += stats.rows_fetched
        merged.rows_matched += stats.rows_matched
        merged.rows_decrypted += stats.rows_decrypted
        merged.bins_fetched += stats.bins_fetched
        merged.failovers += stats.failovers
        merged.cache_hits += stats.cache_hits
        merged.cache_misses += stats.cache_misses
        merged.rows_from_cache += stats.rows_from_cache
        merged.degraded = merged.degraded or stats.degraded
        merged.oblivious = merged.oblivious or stats.oblivious
    merged.verified = bool(per_shard) and all(
        stats.verified for stats in per_shard.values()
    )
    merged.degraded = merged.degraded or bool(missing)
    merged.extra["verified_shards"] = tuple(
        shard_id
        for shard_id in sorted(per_shard)
        if per_shard[shard_id].verified
    )
    merged.extra["missing_shards"] = tuple(sorted(missing))
    return merged


@dataclass
class ShardedQueryStats:
    """Request-level stats plus the per-shard breakdown."""

    merged: QueryStats
    per_shard: dict[int, QueryStats] = field(default_factory=dict)

    @property
    def verified_shards(self) -> tuple[int, ...]:
        return self.merged.extra.get("verified_shards", ())

    @property
    def missing_shards(self) -> tuple[int, ...]:
        return self.merged.extra.get("missing_shards", ())
