"""The asyncio front door: fault-isolated scatter-gather over shards.

The router owns one small thread pool *per shard*, so a shard that
stalls (slow storage, injected ``shard.slow``, a wedged enclave call)
blocks only its own threads — sub-queries to every other shard keep
flowing.  On top of that isolation it adds:

- **asyncio admission**: at most ``max_inflight`` requests execute at
  once and at most ``admission_queue`` more may wait; everything beyond
  is shed with a typed :class:`~repro.exceptions.ServiceOverloaded`
  before any shard work starts (counts are public-size — functions of
  arrival, never of plaintext).
- **hedged dispatch**: when a sub-query has not returned within
  ``hedge_delay`` seconds, a duplicate attempt is launched on the same
  shard's second thread; the first success wins.  Because a shard's
  execution is serialized by its lock, the hedge acts as an immediate
  retry when the primary dies to a transient — it cannot double-apply
  work.  Both failing raises the *primary's* error (the hedge's is
  recorded as telemetry only).
- **graceful drain**: :meth:`AsyncShardRouter.drain` stops admitting,
  waits for in-flight requests under a deadline, and reports whether
  the fleet went idle; :meth:`AsyncShardRouter.shutdown` drains, then
  checkpoints every shard and tears the pools down — the SIGTERM path
  of ``python -m repro --serve``.

Per-shard deadline budgets and breaker bookkeeping live in
:meth:`ShardedService._dispatch` (shared with the sync path), so a
hedged attempt is governed by exactly the same budget as a primary.
"""

from __future__ import annotations

import asyncio
import functools
from concurrent.futures import ThreadPoolExecutor

from repro import telemetry
from repro.telemetry import tracing
from repro.core.queries import PointQuery, QueryStats, RangeQuery
from repro.exceptions import (
    ConcealerError,
    RouterFenced,
    ServiceOverloaded,
    ShardUnavailable,
)
from repro.sharding.results import ShardedQueryStats, merged_stats
from repro.sharding.service import Shard, ShardedService, _count_isolated


def _count_shed(kind: str) -> None:
    telemetry.counter(
        "concealer_router_shed_total",
        "requests shed by the async router's admission gate, by kind",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("kind",),
    ).labels(kind=kind).inc()


def _count_hedge(shard_id: int, outcome: str) -> None:
    telemetry.counter(
        "concealer_hedged_dispatch_total",
        "hedged (duplicate) sub-query attempts, by shard and outcome",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("shard", "outcome"),
    ).labels(shard=shard_id, outcome=outcome).inc()


class AsyncShardRouter:
    """Async scatter-gather over a :class:`ShardedService`.

    The router never touches bins or keys itself: planning and
    execution run on shard threads through the sync core, so the
    verification, leakage, and partial-result semantics are byte-for-
    byte those of :class:`ShardedService` — this class only decides
    *where and when* the work runs.
    """

    def __init__(
        self,
        sharded: ShardedService,
        hedge_delay: float | None = None,
        max_inflight: int | None = None,
        admission_queue: int | None = None,
        slo=None,
    ):
        self.sharded = sharded
        self.hedge_delay = hedge_delay
        # Optional SLOMonitor: every admitted query's latency + outcome
        # feeds the availability and latency objectives.
        self.slo = slo
        self.max_inflight = (
            max_inflight
            if max_inflight is not None
            else sharded.config.max_inflight
        )
        self.admission_queue = (
            admission_queue
            if admission_queue is not None
            else sharded.config.admission_queue
        )
        # Two workers per shard: one for the primary attempt, one so a
        # hedge (or a plan probe) is never stuck behind it in the pool.
        self._executors = {
            shard.shard_id: ThreadPoolExecutor(
                max_workers=2, thread_name_prefix=f"shard-{shard.shard_id}"
            )
            for shard in sharded.shards
        }
        self._inflight = 0
        self._queued = 0
        self._slots: asyncio.Semaphore | None = None
        self._idle: asyncio.Event | None = None
        self._draining = False
        self._closed = False

    # -------------------------------------------------------------- admission

    def _lazy_async_state(self) -> None:
        # Created on first use so the router can be constructed outside
        # a running event loop (e.g. by the server before asyncio.run).
        if self._slots is None:
            self._slots = asyncio.Semaphore(self.max_inflight)
            self._idle = asyncio.Event()
            self._idle.set()

    async def _admit(self, kind: str):
        self._lazy_async_state()
        if self._draining or self._closed:
            _count_shed(kind)
            raise RouterFenced(
                "router is draining; new queries are rejected — retry "
                "against the restarted service"
            )
        if self._slots.locked() and self._queued >= self.admission_queue:
            _count_shed(kind)
            raise ServiceOverloaded(
                f"router admission queue full ({self._inflight} inflight, "
                f"{self._queued} queued); {kind!r} request shed"
            )
        self._queued += 1
        try:
            await self._slots.acquire()
        finally:
            self._queued -= 1
        self._inflight += 1
        self._idle.clear()

    def _release(self) -> None:
        self._inflight -= 1
        self._slots.release()
        if self._inflight == 0:
            self._idle.set()

    def _observe_slo(self, started: float, ok: bool) -> None:
        if self.slo is not None:
            self.slo.record(self.sharded.clock.now() - started, ok=ok)

    # --------------------------------------------------------------- dispatch

    async def _run_on(self, shard: Shard, fn):
        """Run a callable on the shard's own thread pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executors[shard.shard_id], fn)

    async def _dispatch(self, shard: Shard, kind: str, thunk):
        """One sub-query with optional hedging; same budget semantics
        as the sync path (``ShardedService._dispatch`` does the breaker
        and deadline work on the shard thread).

        Thread pools do not carry context variables, so both attempts
        are wrapped with :func:`tracing.propagate` — the shard-side
        spans join this request's trace instead of starting their own.
        """
        captured = tracing.capture()
        primary = asyncio.ensure_future(
            self._run_on(
                shard,
                tracing.propagate(
                    functools.partial(
                        self.sharded._dispatch, shard, kind, thunk
                    ),
                    captured,
                ),
            )
        )
        if self.hedge_delay is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=self.hedge_delay)
        if primary in done:
            return primary.result()
        _count_hedge(shard.shard_id, "launched")
        tracing.annotate(**{f"hedge_shard_{shard.shard_id}": "launched"})
        hedge = asyncio.ensure_future(
            self._run_on(
                shard,
                tracing.propagate(
                    functools.partial(
                        self.sharded._dispatch, shard, f"{kind}-hedge", thunk
                    ),
                    captured,
                ),
            )
        )
        pending = {primary, hedge}
        failures: list[tuple[bool, BaseException]] = []
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for future in done:
                error = future.exception()
                if error is None:
                    outcome = "hedge-won" if future is hedge else "primary-won"
                    _count_hedge(shard.shard_id, outcome)
                    tracing.annotate(
                        **{f"hedge_shard_{shard.shard_id}": outcome}
                    )
                    # The loser finishes on the shard thread; retrieve
                    # its eventual exception so it never surfaces as an
                    # un-consumed future warning.
                    for late in pending:
                        late.add_done_callback(lambda f: f.exception())
                    return future.result()
                failures.append((future is primary, error))
        _count_hedge(shard.shard_id, "both-failed")
        tracing.annotate(**{f"hedge_shard_{shard.shard_id}": "both-failed"})
        failures.sort(key=lambda pair: not pair[0])  # primary's error first
        raise failures[0][1]

    # ---------------------------------------------------------------- queries

    async def execute_point(
        self, query: PointQuery, epoch_id: int | None = None
    ) -> tuple[object, ShardedQueryStats]:
        """Admission-gated async point query (single owning shard)."""
        await self._admit("point")
        started = self.sharded.clock.now()
        ok = False
        try:
            with telemetry.span("router.query", kind="point"):
                self.sharded._check_fence()
                eid, cell_id, owner_id = await self._plan(
                    lambda: self.sharded.plan_point(query, epoch_id)
                )
                owner = self.sharded.shards[owner_id]
                if not owner.healthy():
                    _count_isolated(owner.shard_id, owner.isolation_reason())
                    raise ShardUnavailable(
                        f"shard {owner.shard_id} owning cell-id {cell_id} is "
                        f"isolated ({owner.isolation_reason()})",
                        shard_ids=(owner.shard_id,),
                    )
                owner.assert_owns((cell_id,))
                answer, stats = await self._dispatch(
                    owner,
                    "point",
                    lambda: owner.service.execute_point(query, epoch_id=eid),
                )
                ok = True
                return answer, ShardedQueryStats(
                    merged=merged_stats({owner.shard_id: stats}),
                    per_shard={owner.shard_id: stats},
                )
        finally:
            self._observe_slo(started, ok)
            self._release()

    async def execute_range(
        self,
        query: RangeQuery,
        method: str = "ebpb",
        epoch_id: int | None = None,
    ) -> tuple[object, ShardedQueryStats]:
        """Admission-gated async scatter-gather range query.

        Healthy participants run *concurrently*, each on its own shard
        thread under its own deadline budget; isolated or failing
        shards degrade to the same :class:`PartialResult` semantics as
        the sync path (:meth:`ShardedService.finish_range` is shared).
        """
        await self._admit("range")
        started = self.sharded.clock.now()
        ok = False
        try:
            with telemetry.span("router.query", kind="range"):
                self.sharded._check_fence()
                eid, method, participants = await self._plan(
                    lambda: self.sharded.plan_range(query, method, epoch_id)
                )

                answers: dict[int, object] = {}
                per_shard: dict[int, QueryStats] = {}
                errors: dict[int, str] = {}
                gathers = []
                for shard_id in participants:
                    shard = self.sharded.shards[shard_id]
                    if not shard.healthy():
                        _count_isolated(shard_id, shard.isolation_reason())
                        errors[shard_id] = "ShardUnavailable"
                        continue
                    gathers.append(
                        (
                            shard_id,
                            self._dispatch(
                                shard,
                                "range",
                                functools.partial(
                                    shard.service.execute_range,
                                    query,
                                    method=method,
                                    epoch_id=eid,
                                ),
                            ),
                        )
                    )
                outcomes = await asyncio.gather(
                    *(coro for _, coro in gathers), return_exceptions=True
                )
                for (shard_id, _), outcome in zip(gathers, outcomes):
                    if isinstance(outcome, ConcealerError):
                        errors[shard_id] = type(outcome).__name__
                    elif isinstance(outcome, BaseException):
                        raise outcome
                    else:
                        answers[shard_id], per_shard[shard_id] = outcome
                result = self.sharded.finish_range(
                    query, participants, answers, per_shard, errors
                )
                ok = True
                return result
        finally:
            self._observe_slo(started, ok)
            self._release()

    async def heal(self) -> dict[int, dict]:
        """Run the sync re-admission protocol off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.sharded.heal)

    async def _plan(self, fn):
        """Planning runs off the event loop (it decrypts metadata in an
        enclave); any pool works since the plan shard's lock is taken
        inside the sync core.  ``propagate`` carries the trace context
        onto the pool thread so ``router.plan`` joins this trace."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, tracing.propagate(fn))

    # ---------------------------------------------------------------- drain

    @property
    def inflight(self) -> int:
        return self._inflight

    async def drain(self, deadline_seconds: float = 10.0) -> bool:
        """Stop admitting and wait for in-flight work; True if idle.

        Queries arriving after drain starts are shed with a typed
        :class:`RouterFenced`.  Returns ``False`` when the deadline
        expired with requests still running (the caller may still
        checkpoint — shard state is only mutated under shard locks, so
        a checkpoint taken afterwards is consistent per shard).
        """
        self._lazy_async_state()
        self._draining = True
        if self._inflight == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=deadline_seconds)
            return True
        except asyncio.TimeoutError:
            return False

    async def shutdown(self, drain_seconds: float = 10.0) -> bool:
        """Drain, checkpoint every shard, and tear down the pools.

        Idempotent; returns the drain verdict.  After shutdown the
        router rejects all queries.
        """
        if self._closed:
            return True
        drained = await self.drain(drain_seconds)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.sharded.checkpoint_all)
        self._closed = True
        for executor in self._executors.values():
            executor.shutdown(wait=True, cancel_futures=True)
        return drained

    def close(self) -> None:
        """Synchronous teardown (no drain) for non-async callers."""
        self._closed = True
        self._draining = True
        for executor in self._executors.values():
            executor.shutdown(wait=False, cancel_futures=True)
