"""Two-phase epoch ingest and key rotation across the shard fleet.

Both operations share a shape: they mutate every shard, and a fleet
where only *some* shards applied the mutation serves wrong answers —
a half-ingested epoch under-counts, a half-rotated fleet cannot answer
at all under either key.  The coordinator therefore fences queries at
the router, applies a prepare/commit (or land/evict) protocol, and
guarantees that any crash leaves every shard on the *same* side:

**Ingest** — the provider partitions the epoch by the public topology
and encrypts one full package per shard; shards land them in shard
order.  A failure mid-fleet evicts the epoch from every shard that
already landed it and un-ships it at the provider, so a retry starts
from scratch — no shard ever serves an epoch its peers lack.

**Rotation** — phase 1 ``prepare_rotation`` on every shard (rows
rewritten under the journal, old key still sealed, rewrite fence
held); only when *all* shards prepared does phase 2 ``commit_rotation``
run.  A phase-1 crash aborts every prepared shard (journal rollback is
host-side, so a dead enclave cannot block it) — the old key stays
live fleet-wide.  A phase-2 crash reverse-rotates the shards that
already committed back to the old master (the coordinator knows both
keys, so it can mint the reverse token) and aborts the rest — again
converging on the old key.  Either way queries resume on a fleet that
is all-old or all-new, never mixed.

**Replicated shards** change nothing about the protocol but everything
about its blast radius.  ``prepare_rotation`` raises each shard
engine's ``begin_rewrite`` fence, and on a replica group the rewrite
(and any reverse rotation) fans out to *every* replica — including
quarantined ones — through the group's write path, so no replica is
left holding old-key ciphertexts the repairer could later resurrect.
Anti-entropy repair is doubly fenced: per-engine by the rewrite
generation, and fleet-wide by the router fence this module holds from
before phase 1 until after commit/rollback — a repair on shard A must
not apply a snapshot while shard B sits between prepare and commit,
because a phase-2 crash would reverse-rotate A under the journal and
invalidate what the repair just installed
(:meth:`ShardedService.repair_replicas` threads that fence down).
"""

from __future__ import annotations

from repro import telemetry
from repro.core.rotation import (
    PreparedRotation,
    abort_rotation,
    commit_rotation,
    prepare_rotation,
    rotate_service_keys,
    rotation_token,
)
from repro.exceptions import ConcealerError
from repro.sharding.service import Shard, ShardedService


def _count_phase(operation: str, phase: str) -> None:
    telemetry.counter(
        "concealer_sharded_twophase_total",
        "cross-shard two-phase transitions, by operation and phase",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("operation", "phase"),
    ).labels(operation=operation, phase=phase).inc()


def ingest_epoch_sharded(
    sharded: ShardedService, records, epoch_id: int
) -> dict[int, int]:
    """Land one epoch on every shard, all-or-nothing across the fleet.

    Returns ``{shard_id: stored_row_count}`` on success.  On failure
    the epoch is evicted from every shard that landed it, un-shipped at
    the provider, and the original error propagates — the fleet looks
    exactly as it did before the call (modulo fresh fake randomness on
    retry).
    """
    sharded.fence("ingest")
    _count_phase("ingest", "prepare")
    landed: list[Shard] = []
    try:
        packages = sharded.provider.encrypt_epoch_sharded(
            records, epoch_id, sharded.topology
        )
        try:
            for shard, package in zip(sharded.shards, packages):
                # A shard may be killed between its peers landing the
                # epoch and its own landing — the window the eviction
                # rollback below exists for.
                if not shard.service.enclave.crashed:
                    shard.service.enclave.kill_point("shard.kill")
                shard.service.ingest_epoch(package)
                landed.append(shard)
        except BaseException:
            # Roll back the shards that already landed the epoch; the
            # eviction is host-side (drop table + forget package), so a
            # crashed enclave on the failing shard cannot block it.
            for shard in landed:
                shard.service.evict_epoch(epoch_id)
            sharded.provider.unship_epoch(epoch_id)
            _count_phase("ingest", "rollback")
            raise
    finally:
        sharded.unfence()
    _count_phase("ingest", "commit")
    return {
        shard.shard_id: shard.service.engine.row_count(
            shard.service._table_name(epoch_id)
        )
        for shard in sharded.shards
    }


def rotate_sharded_keys(
    sharded: ShardedService, new_master: bytes, token: bytes
) -> int:
    """Rotate the fleet's master key with a cross-shard two-phase commit.

    ``token`` authorizes rotation from the *current* master (same
    construction as the single-service protocol; every shard verifies
    it independently against its own sealed key).  Returns the total
    number of rows re-encrypted.  On success the provider adopts the
    new master.  On any failure the fleet converges back to the old
    master — see the module docstring for both crash windows.
    """
    sharded.fence("rotation")
    prepared: dict[int, PreparedRotation] = {}
    old_master = None
    try:
        _count_phase("rotation", "prepare")
        try:
            for shard in sharded.shards:
                plan = prepare_rotation(shard.service, new_master, token)
                if old_master is None:
                    old_master = plan.old_master
                prepared[shard.shard_id] = plan
        except BaseException:
            # Phase-1 failure: nothing committed anywhere.  Abort every
            # prepared shard (host-side rollback) — the failing shard
            # already rolled itself back inside prepare_rotation.
            for plan in prepared.values():
                abort_rotation(plan)
            _count_phase("rotation", "rollback")
            raise

        _count_phase("rotation", "commit")
        committed: list[int] = []
        rotated_rows = 0
        try:
            for shard in sharded.shards:
                rotated_rows += commit_rotation(prepared[shard.shard_id])
                committed.append(shard.shard_id)
        except BaseException:
            # Phase-2 failure: some shards sealed the new key.  Reverse
            # them to the old master (the coordinator holds both keys),
            # abort the never-committed remainder, and surface the
            # original error.  Shards whose enclaves died mid-commit
            # are left un-swapped with their journal intact; abort
            # restores their bytes host-side and recovery re-provisions
            # the old master (the provider never adopted the new one).
            reverse = rotation_token(new_master, old_master)
            for shard_id in committed:
                rotate_service_keys(
                    sharded.shards[shard_id].service, old_master, reverse
                )
            for shard_id, plan in prepared.items():
                if shard_id not in committed:
                    try:
                        abort_rotation(plan)
                    except ConcealerError:
                        pass  # already settled by its own failure path
            _count_phase("rotation", "rollback")
            raise
    finally:
        sharded.unfence()
    sharded.provider.adopt_master(new_master)
    return rotated_rows
