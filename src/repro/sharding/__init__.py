"""``repro.sharding`` — the multi-enclave, fault-isolated service tier.

A single Concealer stack couples one enclave to one storage engine: one
AEX or one slow bin store takes the whole deployment down.  This
package partitions the bin store **by cell-id hash** across N shards —
each a full enclave + storage + recovery stack with its own circuit
breaker, admission controller, and checkpoint — behind a query router
that scatter-gathers range queries and isolates unhealthy shards
instead of failing closed.

Layout (host side; every shard's enclave is still the trust boundary):

- :mod:`repro.sharding.topology` — the deterministic, *unkeyed* cell-id
  → shard map (public-size by construction: the routed cell-id is
  already part of the L_q leakage the adversary sees);
- :mod:`repro.sharding.results` — :class:`PartialResult` and the
  per-shard :class:`ShardedQueryStats` naming the verified shard set;
- :mod:`repro.sharding.service` — :class:`ShardedService`: the
  synchronous scatter-gather core (what the chaos harness drives
  deterministically) plus shard health, isolation, and re-admission;
- :mod:`repro.sharding.coordinator` — two-phase epoch ingest and
  two-phase key rotation across shards, fenced by the router so no
  mixed-epoch or mixed-key answer is ever served;
- :mod:`repro.sharding.router` — the asyncio front door: per-shard
  worker threads, per-shard deadline budgets, hedged dispatch;
- :mod:`repro.sharding.server` — ``python -m repro --serve``: a
  JSON-lines TCP front end with graceful SIGTERM/SIGINT drain.
"""

from repro.sharding.coordinator import (
    ingest_epoch_sharded,
    rotate_sharded_keys,
)
from repro.sharding.results import PartialResult, ShardedQueryStats
from repro.sharding.router import AsyncShardRouter
from repro.sharding.server import ShardServer
from repro.sharding.service import Shard, ShardedConfig, ShardedService
from repro.sharding.topology import ShardTopology

__all__ = [
    "AsyncShardRouter",
    "PartialResult",
    "Shard",
    "ShardServer",
    "ShardTopology",
    "ShardedConfig",
    "ShardedQueryStats",
    "ShardedService",
    "ingest_epoch_sharded",
    "rotate_sharded_keys",
]
