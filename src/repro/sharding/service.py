"""The sharded service: N fault-isolated Concealer stacks, one front door.

Each :class:`Shard` is a *complete* service stack — its own enclave,
storage engine, admission controller, circuit breaker, quarantine log,
and :class:`~repro.faults.recovery.RecoveryCoordinator` with a private
checkpoint path — holding only the records whose cell-ids hash to it.
Every shard's epoch package is a full Algorithm-1 package over its
partition: non-owned cell-ids still get their fake-only bins (the bin
packer always materialises every cell-id), so the unmodified §4/§5
executors and the hash-chain verifier run per shard without knowing
sharding exists.

:class:`ShardedService` is the synchronous scatter-gather core:

- **point queries** route to the single owning shard (the topology map
  is public, so routing leaks nothing beyond the L_q cell-id);
- **range queries** scatter the *same* query to every shard owning a
  covered cell-id and merge the sub-answers in ascending shard id —
  each record lives on exactly one shard, so COUNT/SUM add, MIN/MAX
  combine, COLLECT concatenates;
- an isolated shard (crashed enclave, open breaker, spent deadline)
  is *skipped, not fatal*: point queries to healthy shards still
  succeed, and range queries return a typed
  :class:`~repro.sharding.results.PartialResult` naming the missing
  shards instead of failing closed;
- :meth:`ShardedService.heal` re-admits isolated shards only after
  re-attestation (+ checkpoint restore when storage was lost) and a
  successful per-epoch context probe.

The asyncio front door (:mod:`repro.sharding.router`) wraps this core;
the chaos harness drives it directly so schedules stay deterministic.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import telemetry
from repro.core.provider import DataProvider
from repro.core.queries import Aggregate, PointQuery, QueryStats, RangeQuery
from repro.core.service import RANGE_METHODS, ServiceConfig, ServiceProvider
from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.exceptions import (
    ConcealerError,
    EnclaveCrashed,
    NoHealthyShard,
    QueryError,
    RouterFenced,
    ShardMisrouted,
    ShardUnavailable,
)
from repro.faults.clock import SystemClock, VirtualClock
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.recovery import RecoveryCoordinator
from repro.replication.breaker import CircuitBreaker
from repro.replication.deadline import Deadline
from repro.replication.engine import ReplicatedStorageEngine, ReplicationPolicy
from repro.sharding.results import PartialResult, ShardedQueryStats, merged_stats
from repro.sharding.topology import ShardTopology
from repro.storage.engine import StorageEngine

# Aggregates whose sub-answers merge losslessly across disjoint record
# partitions.  AVG / TOP_K / DISTINCT_COUNT cannot be reconstructed
# from per-shard answers alone (they need cross-shard multiplicities),
# so multi-shard queries with them fail with a typed QueryError up
# front — single-shard ones still work.
MERGEABLE_AGGREGATES = frozenset(
    {
        Aggregate.COUNT,
        Aggregate.SUM,
        Aggregate.MIN,
        Aggregate.MAX,
        Aggregate.COLLECT,
    }
)


def _count_dispatch(shard_id: int, kind: str) -> None:
    telemetry.counter(
        "concealer_shard_dispatch_total",
        "sub-queries dispatched to shards, by shard and query kind",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("shard", "kind"),
    ).labels(shard=shard_id, kind=kind).inc()


def _count_isolated(shard_id: int, reason: str) -> None:
    telemetry.counter(
        "concealer_shard_isolated_total",
        "dispatches skipped or failed because a shard was isolated",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("shard", "reason"),
    ).labels(shard=shard_id, reason=reason).inc()


def build_replica_group(
    replicas: int,
    clock=None,
    fault_injector: FaultInjector | None = None,
    attempt_timeout: float | None = 2.0,
    min_healthy: int | None = None,
) -> ReplicatedStorageEngine:
    """A shard-local replica group of plain storage engines.

    Replica 0 carries the fault injector so the classic storage fault
    sites (transient read/write, row corrupt/drop/duplicate) keep
    firing inside a replicated shard exactly as they would against a
    single engine; peers stay clean so verify-then-failover has
    somewhere to go.  Byzantine response-channel faults are layered on
    by the chaos harness's engine factory, not here.
    """
    members = [
        StorageEngine(fault_injector=fault_injector if rid == 0 else None)
        for rid in range(replicas)
    ]
    return ReplicatedStorageEngine(
        members,
        clock=clock,
        policy=ReplicationPolicy(
            min_healthy=min_healthy, attempt_timeout=attempt_timeout
        ),
    )


@dataclass
class ShardedConfig:
    """Fleet-level knobs; per-shard ServiceConfig fields pass through."""

    shards: int = 2
    # Storage replicas *inside* each shard.  With replicas > 1 every
    # shard fronts its own ReplicatedStorageEngine: verify-then-failover
    # reads, per-replica breakers, quarantine, and anti-entropy repair
    # all run below the router — a single tampered or crashed storage
    # node never surfaces as a degraded shard.
    replicas: int = 1
    # Per-replica attempt budget (seconds) inside a shard's group.
    replica_attempt_timeout: float | None = 2.0
    # Healthy-replica count below which a shard's reads are flagged
    # degraded (None = all of them).
    replica_min_healthy: int | None = None
    verify: bool = True
    oblivious: bool = False
    # Per-shard dispatch budget in seconds (None = unbounded).  Minted
    # router-side per sub-query, so one slow shard burns only its own
    # budget, never the whole request's.
    deadline_seconds: float | None = None
    # Range queries over a degraded fleet return PartialResult when
    # True; fail with ShardUnavailable when False (fail-closed mode).
    allow_partial: bool = True
    # Consecutive soft failures (deadline, transient exhaustion) before
    # a shard's breaker isolates it; crashes isolate immediately.
    breaker_threshold: int = 2
    breaker_reset_seconds: float = 30.0
    bin_cache_bins: int = 0
    trapdoor_table_slots: int = 8192
    max_inflight: int = 64
    admission_queue: int = 128
    retry_jitter: float = 0.0


@dataclass
class Shard:
    """One enclave + storage + recovery stack owning a cell-id slice."""

    shard_id: int
    service: ServiceProvider
    coordinator: RecoveryCoordinator
    breaker: CircuitBreaker
    topology: ShardTopology
    # Serializes query execution on this shard: the async router runs
    # shards on separate threads (that's the fault isolation), but one
    # ServiceProvider's caches and context dicts are not re-entrant.
    # Cross-shard work still runs genuinely concurrently.
    lock: threading.Lock = field(default_factory=threading.Lock)
    # When set, spans opened while this shard executes record into this
    # dedicated buffer (the ``--serve`` ops plane serves and merges the
    # per-shard buffers); when None the shard shares the ambient tracer
    # and its spans attach to the caller's tree directly.
    tracer: object | None = None

    def healthy(self) -> bool:
        """Whether the router may dispatch to this shard right now.

        A replicated shard is additionally unhealthy when its *whole*
        replica group is exhausted — every replica breaker hard-open —
        because no read could be served anyway.  One bad replica never
        isolates the shard; that is the point of the group.
        """
        return (
            not self.service.enclave.crashed
            and self.service.enclave.provisioned
            and self.breaker.allow()
            and not self.replicas_exhausted()
        )

    def replicated_engine(self):
        """The shard's replica group, or ``None`` for a single engine."""
        engine = self.service.engine
        if getattr(engine, "supports_replicated_reads", False):
            return engine
        return None

    def replicas_exhausted(self) -> bool:
        """True when no replica in the group may be read from at all."""
        engine = self.replicated_engine()
        if engine is None:
            return False
        return not any(breaker.allow() for breaker in engine.breakers)

    def isolation_detail(self) -> dict:
        """Structured health causes — no fixed precedence masks anything.

        Chaos reports and the ops-plane ``health`` op surface this dict
        so an operator sees *every* contributing cause (a crashed
        enclave AND two quarantined replicas), not just the first one a
        precedence order happened to pick.  All fields are public-size:
        functions of fault behaviour and request arrival, never data.
        """
        engine = self.replicated_engine()
        detail = {
            "crashed": self.service.enclave.crashed,
            "unprovisioned": not self.service.enclave.provisioned,
            "breaker_open": self.breaker.state == "open",
            "replicas": len(engine.replicas) if engine is not None else 1,
            "replica_breakers_open": (
                sum(1 for b in engine.breakers if b.state == "open")
                if engine is not None
                else 0
            ),
            "replicas_quarantined": (
                len({rid for rid, _ in engine.quarantine.tables()})
                if engine is not None
                else 0
            ),
            "quarantined_scopes": len(engine.quarantine) if engine is not None else 0,
        }
        if detail["crashed"]:
            detail["primary"] = "enclave-crashed"
        elif detail["unprovisioned"]:
            detail["primary"] = "unprovisioned"
        elif detail["breaker_open"]:
            detail["primary"] = "breaker-open"
        elif engine is not None and detail["replica_breakers_open"] >= detail["replicas"]:
            detail["primary"] = "replicas-exhausted"
        elif self.breaker.state != "closed":
            # A half-open breaker with its probe outstanding still
            # blocks dispatch; report it rather than claiming health.
            detail["primary"] = "breaker-open"
        else:
            detail["primary"] = "healthy"
        return detail

    def isolation_reason(self) -> str:
        """The primary cause, for metric labels and error messages."""
        return self.isolation_detail()["primary"]

    def assert_owns(self, cell_ids) -> None:
        """Shard-side guard: single-shard work must match the public map.

        The shard re-checks the router's routing decision against its
        own copy of the topology — a buggy (or hostile) router sending
        a point query to the wrong shard would otherwise get a
        confidently wrong answer from fake-only bins.
        """
        strays = [
            cell_id
            for cell_id in cell_ids
            if self.topology.shard_of(cell_id) != self.shard_id
        ]
        if strays:
            raise ShardMisrouted(
                f"shard {self.shard_id} does not own cell-ids {strays}; "
                "router and shard disagree on the topology"
            )

    def probe(self) -> None:
        """Readmission self-check: every ingested epoch's context builds.

        Rebuilding a context decrypts the epoch's metadata vectors and
        grid key inside the (re-attested) enclave — if the wrong master
        was provisioned or storage restore left torn state, this fails
        loudly instead of re-admitting a shard that would answer
        queries wrongly.
        """
        for epoch_id in self.service.ingested_epochs():
            self.service.context_for(epoch_id)


class ShardedService:
    """Scatter-gather over N shards with per-shard fault isolation."""

    def __init__(
        self,
        provider: DataProvider,
        topology: ShardTopology,
        shards: list[Shard],
        clock: SystemClock | VirtualClock | None = None,
        config: ShardedConfig | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        if len(shards) != topology.shard_count:
            raise ValueError(
                f"topology expects {topology.shard_count} shards, "
                f"got {len(shards)}"
            )
        self.provider = provider
        self.topology = topology
        self.shards = shards
        self.clock = clock if clock is not None else SystemClock()
        self.config = config or ShardedConfig(shards=topology.shard_count)
        self.injector = fault_injector if fault_injector is not None else NULL_INJECTOR
        # The two-phase coordinator's query fence ("ingest"/"rotation").
        self._fence: str | None = None

    # ------------------------------------------------------------ construction

    @classmethod
    def build(
        cls,
        provider: DataProvider,
        config: ShardedConfig,
        workdir: str | Path,
        clock: SystemClock | VirtualClock | None = None,
        fault_injector: FaultInjector | None = None,
        retry_rng_seed: str | None = None,
        engine_factory=None,
    ) -> "ShardedService":
        """Build a provisioned N-shard fleet sharing one data provider.

        Each shard gets its own enclave (attested + provisioned by the
        provider), its own storage engine (``engine_factory(shard_id)``
        when given — e.g. a Byzantine-wrapped replica group for chaos),
        and a private checkpoint path under ``workdir``.  All shards
        share ``clock`` and ``fault_injector`` so chaos schedules
        replay.  With ``config.replicas > 1`` and no factory, every
        shard fronts its own :class:`ReplicatedStorageEngine` of plain
        replicas (replica 0 carries the fault injector so classic
        storage faults keep firing).
        """
        clock = clock if clock is not None else SystemClock()
        topology = ShardTopology(config.shards)
        workdir = Path(workdir)
        shards: list[Shard] = []
        for shard_id in range(config.shards):
            if engine_factory is not None:
                engine = engine_factory(shard_id)
            elif config.replicas > 1:
                engine = build_replica_group(
                    config.replicas,
                    clock=clock,
                    fault_injector=fault_injector,
                    attempt_timeout=config.replica_attempt_timeout,
                    min_healthy=config.replica_min_healthy,
                )
            else:
                engine = StorageEngine(fault_injector=fault_injector)
            service = ServiceProvider(
                provider.schema,
                ServiceConfig(
                    verify=config.verify,
                    oblivious=config.oblivious,
                    deadline_seconds=config.deadline_seconds,
                    bin_cache_bins=config.bin_cache_bins,
                    trapdoor_table_slots=config.trapdoor_table_slots,
                    max_inflight=config.max_inflight,
                    admission_queue=config.admission_queue,
                    retry_jitter=config.retry_jitter,
                    batch_workers=1,
                ),
                engine=engine,
                enclave=Enclave(EnclaveConfig(), fault_injector=fault_injector),
                clock=clock,
                retry_rng=(
                    random.Random(f"{retry_rng_seed}-shard-{shard_id}")
                    if retry_rng_seed is not None
                    else None
                ),
            )
            provider.provision_enclave(service.enclave)
            service.install_registry(provider.sealed_registry())
            shards.append(
                Shard(
                    shard_id=shard_id,
                    service=service,
                    coordinator=RecoveryCoordinator(
                        provider, service, workdir / f"shard-{shard_id}.ckpt"
                    ),
                    breaker=CircuitBreaker(
                        clock,
                        failure_threshold=config.breaker_threshold,
                        reset_timeout=config.breaker_reset_seconds,
                        name=f"shard-{shard_id}",
                    ),
                    topology=topology,
                )
            )
        return cls(
            provider,
            topology,
            shards,
            clock=clock,
            config=config,
            fault_injector=fault_injector,
        )

    # ----------------------------------------------------------------- fences

    def fence(self, operation: str) -> None:
        """Block queries while a cross-shard two-phase operation runs."""
        self._fence = operation

    def unfence(self) -> None:
        self._fence = None

    def _check_fence(self) -> None:
        if self._fence is not None:
            raise RouterFenced(
                f"cross-shard {self._fence} in flight; queries are fenced "
                "until it commits or rolls back"
            )

    # --------------------------------------------------------------- planning

    def healthy_shards(self) -> list[Shard]:
        return [shard for shard in self.shards if shard.healthy()]

    def _plan_context(self, epoch_id: int):
        """An epoch context on any healthy shard, for query planning.

        Planning (cell-id identification) needs a provisioned enclave;
        every shard's package carries the same grid-wide metadata, so
        any healthy shard can plan for the whole fleet.
        """
        last_error: ConcealerError | None = None
        for shard in self.healthy_shards():
            try:
                # context_for mutates the shard's context cache, so take
                # its lock — the router may be executing a sub-query on
                # this shard's thread at the same time.
                with shard.lock:
                    return shard.service.context_for(epoch_id)
            except ConcealerError as error:
                last_error = error
        if last_error is not None:
            raise last_error
        raise NoHealthyShard(
            "no healthy shard available to plan the query against"
        )

    def _epoch_of(self, timestamp: int) -> int:
        for shard in self.healthy_shards():
            return shard.service._epoch_of(timestamp)
        raise NoHealthyShard("no healthy shard available to resolve the epoch")

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, shard: Shard, kind: str, thunk):
        """Run one sub-query on one shard under its own budget.

        Success closes the shard's breaker; a deadline or transient
        failure records a breaker strike; an enclave crash isolates
        the shard immediately (health checks see ``enclave.crashed``).
        The ``shard.slow`` fault models a stalled shard: it burns this
        dispatch's entire budget on the virtual clock before the work
        starts, so the typed failure is a DeadlineExceeded attributed
        to exactly this shard.
        """
        _count_dispatch(shard.shard_id, kind)
        deadline = (
            Deadline.after(self.clock, self.config.deadline_seconds)
            if self.config.deadline_seconds is not None
            else None
        )
        try:
            # The dispatch span records into the shard's own tracer when
            # one is set (a local root the ops plane re-assembles); its
            # parent — the router's query span — is linked by parent_id.
            with telemetry.bind_tracer(shard.tracer), telemetry.span(
                "shard.dispatch", shard=shard.shard_id, kind=kind
            ) as dispatch_span:
                with shard.lock:
                    if not shard.service.enclave.crashed:
                        shard.service.enclave.kill_point("shard.kill")
                    if (
                        self.injector.fire("shard.slow") is not None
                        and deadline is not None
                    ):
                        self.clock.sleep(self.config.deadline_seconds * 2)
                    if deadline is not None:
                        deadline.check("shard.dispatch")
                    answer = thunk()
                self._note_replica_health(shard, answer, dispatch_span)
        except ConcealerError:
            if shard.service.enclave.crashed:
                _count_isolated(shard.shard_id, "enclave-crashed")
            else:
                shard.breaker.record_failure()
                if not shard.breaker.allow():
                    _count_isolated(shard.shard_id, "breaker-open")
            raise
        shard.breaker.record_success()
        return answer

    def _note_replica_health(self, shard: Shard, answer, dispatch_span) -> None:
        """Surface in-shard failovers the router otherwise never sees.

        The whole point of per-shard replica groups is that a tampered
        or dead replica is absorbed *below* the router — so without
        this annotation the event would be invisible: no PartialResult,
        no isolation counter, nothing.  The dispatch span and a
        public-size per-shard counter record that the answer was served
        through failover (how many attempts were abandoned) and whether
        the group is running below its healthy minimum.  Counts are
        functions of fault behaviour, never of data.
        """
        stats = answer[1] if isinstance(answer, tuple) and len(answer) == 2 else None
        failovers = getattr(stats, "failovers", 0)
        degraded = bool(getattr(stats, "degraded", False))
        if failovers:
            dispatch_span.set(replica_failovers=failovers)
            telemetry.counter(
                "concealer_shard_replica_failovers_total",
                "in-shard replica failovers absorbed below the router",
                secrecy=telemetry.PUBLIC_SIZE,
                labels=("shard",),
            ).labels(shard=shard.shard_id).inc(failovers)
        if degraded and shard.replicated_engine() is not None:
            dispatch_span.set(replica_degraded=True)
            telemetry.counter(
                "concealer_shard_degraded_served_total",
                "dispatches served by a shard whose replica group was "
                "below its healthy minimum",
                secrecy=telemetry.PUBLIC_SIZE,
                labels=("shard",),
            ).labels(shard=shard.shard_id).inc()

    # ---------------------------------------------------------------- queries

    def plan_point(
        self, query: PointQuery, epoch_id: int | None = None
    ) -> tuple[int, int, int]:
        """Resolve a point query to ``(epoch_id, cell_id, owner_shard)``."""
        with telemetry.span("router.plan", stage="plan", kind="point") as plan:
            eid = (
                epoch_id if epoch_id is not None else self._epoch_of(query.timestamp)
            )
            context = self._plan_context(eid)
            cell_id = context.grid.place_values(
                query.index_values, query.timestamp
            )
            plan.set(epoch=eid)
            return eid, cell_id, self.topology.shard_of(cell_id)

    def plan_range(
        self,
        query: RangeQuery,
        method: str = "ebpb",
        epoch_id: int | None = None,
    ) -> tuple[int, str, tuple[int, ...]]:
        """Resolve a range query to ``(epoch_id, method, participants)``.

        Participants are the shards owning any covered cell-id, in
        ascending shard id.  Raises a typed :class:`QueryError` for
        aggregates that cannot be merged across a multi-shard
        participant set.
        """
        if method not in RANGE_METHODS:
            raise QueryError(
                f"unknown range method {method!r}; choose from {RANGE_METHODS}"
            )
        with telemetry.span("router.plan", stage="plan", kind="range") as plan:
            eid = (
                epoch_id
                if epoch_id is not None
                else self._epoch_of(query.time_start)
            )
            context = self._plan_context(eid)
            cells: set[int] = set()
            for combo in query.candidate_combinations():
                cells.update(
                    context.grid.cell_ids_for_range(
                        combo, query.time_start, query.time_end
                    )
                )
            owners = self.topology.shards_for(cells)
            if len(owners) > 1 and query.aggregate not in MERGEABLE_AGGREGATES:
                raise QueryError(
                    f"aggregate {query.aggregate.value!r} cannot be merged "
                    f"across {len(owners)} shards; supported cross-shard: "
                    f"{sorted(a.value for a in MERGEABLE_AGGREGATES)}"
                )
            if method == "auto":
                method = self.shards[
                    next(iter(owners))
                ].service.choose_range_method(query, context)
            plan.set(
                epoch=eid,
                method=method,
                cells=len(cells),
                participants=len(owners),
            )
            return eid, method, tuple(owners)

    def finish_range(
        self,
        query: RangeQuery,
        participants: tuple[int, ...],
        answers: dict[int, object],
        per_shard: dict[int, QueryStats],
        errors: dict[int, str],
    ) -> tuple[object, ShardedQueryStats]:
        """Merge gathered sub-answers into the request-level result.

        Shared by the sync path and the async router so partial-result
        semantics (and their telemetry) cannot drift between the two.
        """
        missing = tuple(sorted(errors))
        with telemetry.span(
            "router.merge",
            stage="merge",
            participants=len(participants),
            served=len(answers),
            missing=len(missing),
        ):
            if not answers:
                raise ShardUnavailable(
                    f"all {len(participants)} participating shards are "
                    f"isolated ({errors})",
                    shard_ids=missing,
                )
            merged_answer = merge_answers(query.aggregate, answers)
            stats = ShardedQueryStats(
                merged=merged_stats(per_shard, missing=missing),
                per_shard=per_shard,
            )
        if missing:
            if not self.config.allow_partial:
                raise ShardUnavailable(
                    f"shards {list(missing)} isolated and partial results "
                    "are disabled",
                    shard_ids=missing,
                )
            telemetry.counter(
                "concealer_partial_results_total",
                "range queries answered from a strict subset of shards",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc()
            partial = PartialResult(
                answer=merged_answer,
                served_shards=tuple(sorted(answers)),
                missing_shards=missing,
                errors=errors,
            )
            return partial, stats
        return merged_answer, stats

    def execute_point(
        self, query: PointQuery, epoch_id: int | None = None
    ) -> tuple[object, ShardedQueryStats]:
        """Route a point query to the single shard owning its cell-id.

        An isolated owner raises a typed :class:`ShardUnavailable`
        naming the shard — queries whose owners are healthy are
        unaffected, which is the point of partitioning.
        """
        self._check_fence()
        with telemetry.span("router.query", kind="point"):
            eid, cell_id, owner_id = self.plan_point(query, epoch_id)
            owner = self.shards[owner_id]
            if not owner.healthy():
                _count_isolated(owner.shard_id, owner.isolation_reason())
                raise ShardUnavailable(
                    f"shard {owner.shard_id} owning cell-id {cell_id} is "
                    f"isolated ({owner.isolation_reason()})",
                    shard_ids=(owner.shard_id,),
                )
            owner.assert_owns((cell_id,))
            answer = self._dispatch(
                owner,
                "point",
                lambda: owner.service.execute_point(query, epoch_id=eid),
            )
            result, stats = answer
            sharded = ShardedQueryStats(
                merged=merged_stats({owner.shard_id: stats}),
                per_shard={owner.shard_id: stats},
            )
            return result, sharded

    def execute_range(
        self,
        query: RangeQuery,
        method: str = "ebpb",
        epoch_id: int | None = None,
    ) -> tuple[object, ShardedQueryStats]:
        """Scatter a range query to every owning shard; gather and merge.

        Participants are visited in ascending shard id (deterministic
        merge order for chaos replay).  When some participants are
        isolated and the aggregate merges, the answer is a
        :class:`PartialResult` over the served shards; when *every*
        participant is isolated, a typed :class:`ShardUnavailable` is
        raised instead (there is nothing to answer from).
        """
        self._check_fence()
        with telemetry.span("router.query", kind="range"):
            eid, method, participants = self.plan_range(query, method, epoch_id)

            answers: dict[int, object] = {}
            per_shard: dict[int, QueryStats] = {}
            errors: dict[int, str] = {}
            for shard_id in participants:
                shard = self.shards[shard_id]
                if not shard.healthy():
                    _count_isolated(shard_id, shard.isolation_reason())
                    errors[shard_id] = "ShardUnavailable"
                    continue
                try:
                    answer, stats = self._dispatch(
                        shard,
                        "range",
                        lambda s=shard: s.service.execute_range(
                            query, method=method, epoch_id=eid
                        ),
                    )
                except ConcealerError as error:
                    errors[shard_id] = type(error).__name__
                    continue
                answers[shard_id] = answer
                per_shard[shard_id] = stats

            return self.finish_range(
                query, participants, answers, per_shard, errors
            )

    # ---------------------------------------------------------------- healing

    def heal(self) -> dict[int, dict]:
        """Recover and re-admit every isolated shard; returns actions.

        Re-admission requires, in order: a fresh enclave re-attested
        and re-provisioned by the data provider; storage restored from
        the shard's checkpoint when tables were lost; an anti-entropy
        repair pass over the shard's replica group (quarantined
        replicas re-sync from healthy peers or the DP's packages, and
        replicas whose quarantine cleared get their breakers reset —
        re-admitting a shard must re-admit its replicas, not just
        re-attest the enclave); and a successful per-epoch context
        probe.  Only then does the shard breaker reset — a shard that
        fails any step stays isolated.

        A *healthy* shard whose replica group is merely degraded
        (quarantined replicas, open replica breakers) also gets the
        repair pass — in-shard damage is healed before it can
        accumulate into replica exhaustion — but is not counted as a
        readmission.
        """
        actions: dict[int, dict] = {}
        for shard in self.shards:
            was_healthy = shard.healthy()
            if was_healthy and not self._replicas_degraded(shard):
                continue
            action = {
                "enclave": False,
                "storage": False,
                "replicas_repaired": 0,
                "readmitted": False,
            }
            try:
                with shard.lock:
                    if (
                        shard.service.enclave.crashed
                        or not shard.service.enclave.provisioned
                    ):
                        shard.coordinator.recover_enclave()
                        action["enclave"] = True
                    if self._storage_lost(shard):
                        shard.coordinator.recover_storage()
                        action["storage"] = True
                    action["replicas_repaired"] = self._heal_replicas(shard)
                    shard.probe()
            except ConcealerError:
                # Probe or recovery failed: stay isolated; a later heal
                # (or the breaker's half-open window) tries again.
                actions[shard.shard_id] = action
                continue
            if not was_healthy:
                shard.breaker.reset()
                action["readmitted"] = True
                telemetry.counter(
                    "concealer_shard_readmissions_total",
                    "shards re-admitted after re-attestation + probe",
                    secrecy=telemetry.PUBLIC_SIZE,
                    labels=("shard",),
                ).labels(shard=shard.shard_id).inc()
            actions[shard.shard_id] = action
        return actions

    @staticmethod
    def _replicas_degraded(shard: Shard) -> bool:
        """Whether the shard's replica group needs an anti-entropy pass."""
        engine = shard.replicated_engine()
        if engine is None:
            return False
        return bool(engine.quarantine.tables()) or any(
            breaker.state != "closed" for breaker in engine.breakers
        )

    def _heal_replicas(self, shard: Shard) -> int:
        """Repair the shard's replica group; re-admit cleared replicas.

        Runs one fenced anti-entropy pass (quarantined tables re-sync
        from peer majority or the DP master source), then resets the
        breaker of every replica with no remaining quarantine — a
        replica whose read failures tripped its breaker without any
        quarantined table (e.g. pure slowness) is also given a fresh
        start, since heal() is the operator saying "the fault condition
        is over".  Replicas still quarantined (repair fenced or
        source-less) keep their breakers untouched.  Returns the number
        of successful repairs.
        """
        engine = shard.replicated_engine()
        if engine is None:
            return 0
        outcomes = shard.coordinator.repair_replicas(
            fence=lambda: self._fence is not None
        )
        repaired = sum(1 for o in outcomes if o.outcome == "repaired")
        still_quarantined = {rid for rid, _ in engine.quarantine.tables()}
        for replica_id, breaker in enumerate(engine.breakers):
            if replica_id not in still_quarantined and breaker.state != "closed":
                breaker.reset()
        if repaired:
            telemetry.counter(
                "concealer_shard_replica_repairs_total",
                "replica tables repaired during shard heal, by shard",
                secrecy=telemetry.PUBLIC_SIZE,
                labels=("shard",),
            ).labels(shard=shard.shard_id).inc(repaired)
        return repaired

    def repair_replicas(self) -> dict[int, list]:
        """One fenced anti-entropy pass over every shard's replica group.

        The periodic-repair entry point (the chaos harness and an
        operator cron both drive it): each shard's quarantined replicas
        re-sync from healthy peers or the DP's retained packages.
        Every repair consults the *cross-shard* two-phase fence — while
        any shard of a fleet-wide ingest or rotation sits between
        prepare and commit, repairs decline with a "fenced" outcome
        rather than racing the journal (a phase-2 crash would
        reverse-rotate state the repair just overwrote).  Returns
        per-shard :class:`~repro.replication.repair.RepairOutcome`
        lists for shards that had work.
        """
        outcomes: dict[int, list] = {}
        for shard in self.shards:
            if shard.replicated_engine() is None:
                continue
            with shard.lock:
                batch = shard.coordinator.repair_replicas(
                    fence=lambda: self._fence is not None
                )
            if batch:
                outcomes[shard.shard_id] = batch
        return outcomes

    @staticmethod
    def _storage_lost(shard: Shard) -> bool:
        """Whether the shard's engine is missing ingested epoch tables."""
        tables = set(shard.service.engine.table_names())
        return any(
            shard.service._table_name(epoch_id) not in tables
            for epoch_id in shard.service.ingested_epochs()
        )

    def checkpoint_all(self) -> list[Path]:
        """Checkpoint every shard's storage (durability point)."""
        return [shard.coordinator.checkpoint() for shard in self.shards]

    def ingested_epochs(self) -> list[int]:
        """Epochs every *healthy* shard agrees it has ingested."""
        healthy = self.healthy_shards()
        if not healthy:
            return []
        common = set(healthy[0].service.ingested_epochs())
        for shard in healthy[1:]:
            common &= set(shard.service.ingested_epochs())
        return sorted(common)


def merge_answers(aggregate: Aggregate, answers: dict[int, object]):
    """Merge per-shard sub-answers (disjoint record partitions).

    ``answers`` is keyed by shard id; iteration is in ascending shard
    id so COLLECT output order is deterministic across runs.  SUM /
    MIN / MAX sub-answers are ``None`` when a shard matched no rows;
    those shards contribute nothing.
    """
    ordered = [answers[shard_id] for shard_id in sorted(answers)]
    if aggregate is Aggregate.COUNT:
        return sum(ordered)
    if aggregate is Aggregate.COLLECT:
        merged: list = []
        for sub in ordered:
            merged.extend(sub)
        return merged
    present = [sub for sub in ordered if sub is not None]
    if not present:
        return None
    if aggregate is Aggregate.SUM:
        return sum(present)
    if aggregate is Aggregate.MIN:
        return min(present)
    if aggregate is Aggregate.MAX:
        return max(present)
    if len(ordered) == 1:
        # Single-shard AVG/TOP_K/DISTINCT_COUNT: nothing to merge.
        return ordered[0]
    raise QueryError(
        f"aggregate {aggregate.value!r} cannot be merged across shards"
    )
