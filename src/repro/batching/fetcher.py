"""The shared whole-bin fetch path: overlay → cache → storage.

Both the BPB point executor and the multipoint range executor retrieve
*whole bins* (Theorem 4.1's fixed-size public retrieval unit).  The
:class:`BinFetcher` centralises that retrieval so a bin fetched once
can be reused — within a batch (the :class:`BatchOverlay`) and across
requests (the :class:`~repro.batching.cache.BinCache`) — without any
caller-visible change in answers.

Verification invariant: whenever a fetched bin may be *reused* (an
overlay or cache is active) and the service verifies, the bin's hash
chains are checked **before** it becomes reusable.  A later consumer
of the cached rows therefore never needs to re-verify, and a tampered
batch is rejected before it can poison the cache.  With neither
overlay nor cache in play the fetcher reproduces the legacy executor
behaviour byte for byte (end-of-query verification over the combined
row set).
"""

from __future__ import annotations

import threading

from repro import telemetry
from repro.core.queries import QueryStats


def _bin_reuses():
    return telemetry.counter(
        "concealer_batch_bin_reuses_total",
        "whole-bin fetches served from the in-batch overlay",
        secrecy=telemetry.PUBLIC_SIZE,
    )


def _is_packed(payload) -> bool:
    """Duck-typed PackedBin check (avoids importing repro.core here)."""
    return hasattr(payload, "row_count") and hasattr(payload, "unpack")


class BatchOverlay:
    """Per-batch map of already-fetched bins: (table, bin_index) → rows.

    Entries hold either a tuple of scalar rows or a packed bin (the
    columnar path shares bins in packed form so reuse keeps the
    vectorized STEP 4).  Lives only for one ``execute_batch`` call, so
    it needs no fencing — a rewrite cannot interleave with the
    read-only batch that owns it.  Thread-safe because the parallel
    prefetch fills it concurrently.
    """

    def __init__(self):
        self._entries: dict[tuple[str, int], tuple[object, bool]] = {}
        self._lock = threading.Lock()

    def get(self, key: tuple[str, int]) -> tuple[object, bool] | None:
        with self._lock:
            return self._entries.get(key)

    def put(self, key: tuple[str, int], rows, verified: bool) -> None:
        payload = rows if _is_packed(rows) else tuple(rows)
        with self._lock:
            self._entries[key] = (payload, verified)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries


class _CachedTreeNode:
    """One resident aggregate-tree node ciphertext.

    Wraps the node so the bin cache charges its *exact* byte size
    (``nbytes``) instead of the per-row EPC estimate, and counts it as
    one resident unit (``__len__``) in the rows-from-cache accounting.
    """

    __slots__ = ("node",)

    def __init__(self, node: bytes):
        self.node = node

    @property
    def nbytes(self) -> int:
        return len(self.node)

    def __len__(self) -> int:
        return 1


class BinFetcher:
    """Fetches whole bins for the executors, sharing where it is sound.

    ``cache`` is optional; without it (and without an overlay) this is
    exactly the legacy per-query fetch.  Oblivious (§4.3) execution
    bypasses both overlay and cache: Concealer+'s guarantee is an
    *identical in-enclave event trace* for every query, and serving
    from a cache would make the trace depend on the access history.
    """

    def __init__(self, engine, oblivious=False, verify=False, cache=None, packed=True):
        self.engine = engine
        self.oblivious = oblivious
        self.verify = verify
        self.cache = cache
        # Whole-bin columnar fetches (the vectorized hot path).  Forced
        # off under oblivious execution: Concealer+'s guarantee is a
        # per-query-identical in-enclave trace, which only the scalar
        # trapdoor schedule provides.
        self.packed = packed and not oblivious
        # Engines (and their access logs / breakers) are not reentrant;
        # concurrent prefetch workers serialise the storage round-trip
        # and parallelise what surrounds it (trapdoor generation,
        # verification — the in-enclave compute).
        self._engine_lock = threading.Lock()

    # ------------------------------------------------------------ query path

    def fetch_bin(
        self, context, fetch_bin, stats: QueryStats, deadline=None, overlay=None
    ) -> list:
        """Retrieve one whole bin for an executor, reusing where possible."""
        key = (context.table_name, fetch_bin.index)
        if overlay is not None:
            shared = overlay.get(key)
            if shared is not None:
                rows, verified = shared
                self._count_reuse(stats, rows, verified)
                # A packed entry unpacks bit-identically for scalar
                # consumers (the compat shim).
                return rows.unpack() if _is_packed(rows) else list(rows)
        reusable = overlay is not None or self._cache_active()
        rows, verified = self.fetch_bin_entry(
            context, fetch_bin, stats, deadline=deadline, ensure_verified=reusable
        )
        if overlay is not None:
            overlay.put(key, rows, verified)
        return list(rows)

    def fetch_bin_any(
        self, context, fetch_bin, stats: QueryStats, deadline=None, overlay=None
    ):
        """Like :meth:`fetch_bin`, preferring the packed representation.

        Returns a :class:`~repro.core.packed.PackedBin` when the engine
        holds one for this table, otherwise a scalar row list — the
        caller dispatches STEP 4 on the returned kind.
        """
        if not self.packed:
            return self.fetch_bin(
                context, fetch_bin, stats, deadline=deadline, overlay=overlay
            )
        key = (context.table_name, fetch_bin.index)
        if overlay is not None:
            shared = overlay.get(key)
            if shared is not None:
                payload, verified = shared
                self._count_reuse(stats, payload, verified)
                return payload if _is_packed(payload) else list(payload)
        reusable = overlay is not None or self._cache_active()
        payload, verified = self.fetch_entry_any(
            context, fetch_bin, stats, deadline=deadline, ensure_verified=reusable
        )
        if overlay is not None:
            overlay.put(key, payload, verified)
        return payload if _is_packed(payload) else list(payload)

    def fetch_bin_entry(
        self, context, fetch_bin, stats: QueryStats, deadline=None,
        ensure_verified=False,
    ) -> tuple[tuple, bool]:
        """Cache-then-storage retrieval; returns ``(rows, verified)``."""
        if self._cache_active():
            entry = self.cache.lookup(
                context.table_name, fetch_bin.index, require_verified=self.verify
            )
            if entry is not None:
                self._count_hit(stats, entry.rows, entry.verified)
                if _is_packed(entry.rows):
                    return tuple(entry.rows.unpack()), entry.verified
                return entry.rows, entry.verified
            stats.cache_misses += 1
        rows, verified = self._fetch_from_storage(
            context, fetch_bin, stats, deadline=deadline,
            ensure_verified=ensure_verified,
        )
        return tuple(rows), verified

    def fetch_entry_any(
        self, context, fetch_bin, stats: QueryStats, deadline=None,
        ensure_verified=False,
    ) -> tuple[object, bool]:
        """Packed-preferring cache-then-storage retrieval.

        Returns ``(payload, verified)`` where payload is a packed bin
        when available, else a scalar row tuple (the engine had no
        packed sidecar — post-insert, post-repair, or a legacy engine).
        """
        if not self.packed:
            return self.fetch_bin_entry(
                context, fetch_bin, stats, deadline=deadline,
                ensure_verified=ensure_verified,
            )
        if self._cache_active():
            entry = self.cache.lookup(
                context.table_name, fetch_bin.index, require_verified=self.verify
            )
            if entry is not None:
                self._count_hit(stats, entry.rows, entry.verified)
                return entry.rows, entry.verified
            stats.cache_misses += 1
        packed, verified = self._fetch_packed_from_storage(
            context, fetch_bin, stats, deadline=deadline,
            ensure_verified=ensure_verified,
        )
        if packed is not None:
            return packed, verified
        rows, verified = self._fetch_from_storage(
            context, fetch_bin, stats, deadline=deadline,
            ensure_verified=ensure_verified,
        )
        return tuple(rows), verified

    def fetch_tree_nodes(
        self, context, meta, coords, stats: QueryStats, deadline=None
    ):
        """Assemble aggregate-tree node ciphertexts for a range cover.

        Each node is its own fixed-size public retrieval unit, so the
        cache is consulted per node — misses are filled in a single
        storage round-trip.  Returns ciphertexts aligned with
        ``coords``, or ``None`` when the engine holds no tree sidecar
        (the caller falls back to the bin path).

        Cache entries are admitted as verified: unlike scalar rows, a
        tree node is *self-verifying* — every consumer authenticates it
        via E_d decryption plus the position header — so reuse can
        never serve a byte no check will cover.
        """
        if not self._cache_active():
            with self._engine_lock:
                return context.fetch_tree_nodes(
                    self.engine, meta, coords, stats,
                    deadline=deadline, verify=self.verify,
                )
        table = context.table_name
        nodes: list = [None] * len(coords)
        missing: list[int] = []
        for position, coord in enumerate(coords):
            entry = self.cache.lookup(table, ("tree",) + tuple(coord))
            if entry is None:
                stats.cache_misses += 1
                missing.append(position)
            else:
                self._count_hit(stats, entry.rows, entry.verified)
                nodes[position] = entry.rows.node
        if missing:
            # Fence stamp before the read, exactly like bins: nodes
            # racing a rewrite must not be cached under the post-rewrite
            # generation.
            generation = getattr(self.engine, "rewrite_generation", 0)
            fetch_coords = [coords[i] for i in missing]
            with self._engine_lock:
                fetched = context.fetch_tree_nodes(
                    self.engine, meta, fetch_coords, stats,
                    deadline=deadline, verify=self.verify,
                )
            if fetched is None:
                return None
            for position, node in zip(missing, fetched):
                nodes[position] = node
                self.cache.insert(
                    table,
                    ("tree",) + tuple(coords[position]),
                    _CachedTreeNode(node),
                    True,
                    generation,
                )
        return nodes

    # ---------------------------------------------------------- storage path

    def _fetch_from_storage(
        self, context, fetch_bin, stats: QueryStats, deadline=None,
        ensure_verified=False,
    ) -> tuple[list, bool]:
        engine = self.engine
        # Fence stamp *before* the read: rows racing a rewrite must not
        # be cached under the post-rewrite generation.
        generation = getattr(engine, "rewrite_generation", 0)
        replicated = getattr(engine, "supports_replicated_reads", False)
        verifier = context.verify_rows if (self.verify and replicated) else None
        if self.oblivious:
            trapdoors = context.oblivious_trapdoors_for_bin(fetch_bin)
        else:
            trapdoors = context.trapdoors_for_bin(fetch_bin)
        with self._engine_lock:
            rows = context.fetch(
                engine,
                trapdoors,
                stats,
                deadline=deadline,
                verifier=verifier,
                cells=fetch_bin.cell_ids,
            )
        verified = verifier is not None
        if self.verify and ensure_verified and not verified:
            # The bin becomes reusable, so it must be checked *now*:
            # a later overlay/cache consumer will trust it as-is.
            context.verify_rows(rows, fetch_bin.cell_ids)
            verified = True
            stats.verified = True
        if self._cache_active():
            self.cache.insert(
                context.table_name,
                fetch_bin.index,
                tuple(rows),
                verified,
                generation,
            )
        return rows, verified

    def _fetch_packed_from_storage(
        self, context, fetch_bin, stats: QueryStats, deadline=None,
        ensure_verified=False,
    ) -> tuple[object, bool]:
        """Whole-bin columnar storage fetch; ``(None, False)`` signals
        the scalar path is needed (no packed sidecar)."""
        engine = self.engine
        generation = getattr(engine, "rewrite_generation", 0)
        replicated = getattr(engine, "supports_replicated_reads", False)
        verifier = None
        if self.verify and replicated:
            verifier = lambda packed, cells: context.verify_packed([packed], cells)
        with self._engine_lock:
            packed = context.fetch_packed(
                engine, fetch_bin, stats, deadline=deadline, verifier=verifier
            )
        if packed is None:
            return None, False
        verified = verifier is not None
        if self.verify and ensure_verified and not verified:
            context.verify_packed([packed], fetch_bin.cell_ids)
            verified = True
            stats.verified = True
        if self._cache_active():
            self.cache.insert(
                context.table_name, fetch_bin.index, packed, verified, generation
            )
        return packed, verified

    # ------------------------------------------------------------ accounting

    def _cache_active(self) -> bool:
        return self.cache is not None and not self.oblivious

    def _count_hit(self, stats: QueryStats, rows, verified: bool) -> None:
        stats.cache_hits += 1
        stats.rows_from_cache += len(rows)
        if self.verify and verified:
            stats.verified = True

    def _count_reuse(self, stats: QueryStats, rows, verified: bool) -> None:
        _bin_reuses().inc()
        stats.cache_hits += 1
        stats.rows_from_cache += len(rows)
        if self.verify and verified:
            stats.verified = True
