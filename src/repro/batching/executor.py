"""Bounded-parallel prefetch of a batch's deduplicated bin units.

Each unit is one whole-bin fetch; the pool runs at most ``workers`` at
a time.  Trapdoor generation and hash-chain verification (the
in-enclave compute) parallelise; the storage round-trip itself is
serialised by the :class:`~repro.batching.fetcher.BinFetcher`'s engine
lock, because the engines — and their access logs, circuit breakers
and fault injectors — are stateful and not reentrant.

Determinism: results are merged (and the overlay filled) in *unit
order* regardless of completion order, and the first failure in unit
order is the one raised.  With ``workers=1`` the execution order is
exactly the plan order, which is what the chaos harness uses so fault
schedules replay byte-identically.

Every fetch threads the batch's :class:`Deadline` through to the
storage engine — replica attempts, retry backoff and the EPC charge
all observe the same budget the service minted at admission.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.queries import QueryStats


def merge_stats(into: QueryStats, source: QueryStats) -> QueryStats:
    """Fold one fetch's accounting into a batch-level aggregate."""
    into.trapdoors_generated += source.trapdoors_generated
    into.rows_fetched += source.rows_fetched
    into.rows_matched += source.rows_matched
    into.rows_decrypted += source.rows_decrypted
    into.cache_hits += source.cache_hits
    into.cache_misses += source.cache_misses
    into.rows_from_cache += source.rows_from_cache
    into.failovers += source.failovers
    into.degraded = into.degraded or source.degraded
    into.verified = into.verified or source.verified
    return into


class ParallelFetchExecutor:
    """Runs a plan's fetch units over a bounded worker pool."""

    def __init__(self, fetcher, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.fetcher = fetcher
        self.workers = workers
        # The worker pool persists across batches: spawning threads per
        # prefetch costs more than small batches' entire fetch work
        # (the pool is created lazily and its threads are reused).
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="concealer-prefetch",
                )
            return self._pool

    def close(self) -> None:
        """Shut the persistent pool down (idempotent)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    def prefetch(self, units, overlay, deadline=None) -> QueryStats:
        """Fetch every unit once, filling ``overlay``; returns the
        batch-level fetch accounting (trapdoors, rows, hits/misses).

        Raises the first unit's error (in unit order) after all workers
        settle, so a mid-batch fault surfaces deterministically and no
        partially fetched bin leaks into the overlay.
        """
        stats = QueryStats()
        units = list(units)
        if not units:
            return stats
        stats.bins_fetched = len(units)
        # Packed fetches are dominated by batched, GIL-bound kernel
        # crypto and a storage round-trip serialised by the engine lock,
        # so worker threads only add contention — run them inline.
        packed = getattr(self.fetcher, "packed", False)
        if packed or self.workers == 1 or len(units) == 1:
            for context, fetch_bin in units:
                rows, verified = self.fetcher.fetch_entry_any(
                    context, fetch_bin, stats,
                    deadline=deadline, ensure_verified=True,
                )
                overlay.put((context.table_name, fetch_bin.index), rows, verified)
            return stats

        def fetch_one(unit):
            context, fetch_bin = unit
            local = QueryStats()
            rows, verified = self.fetcher.fetch_entry_any(
                context, fetch_bin, local,
                deadline=deadline, ensure_verified=True,
            )
            return rows, verified, local

        outcomes: list = [None] * len(units)
        pool = self._ensure_pool()
        futures = [pool.submit(fetch_one, unit) for unit in units]
        for index, future in enumerate(futures):
            try:
                outcomes[index] = (True, future.result())
            except BaseException as error:  # re-raised below, in order
                outcomes[index] = (False, error)
        for index, (ok, outcome) in enumerate(outcomes):
            if not ok:
                raise outcome
            rows, verified, local = outcome
            context, fetch_bin = units[index]
            overlay.put((context.table_name, fetch_bin.index), rows, verified)
            merge_stats(stats, local)
        return stats
