"""The batch planner: queries → deduplicated whole-bin fetch units.

A batch is a sequence of :class:`PointQuery` / :class:`RangeQuery`
objects (a range may be wrapped as ``(query, method)`` to pin its §5
method).  The planner resolves every query to its epoch context and —
for the *shareable* methods — to the exact set of whole bins its
executor would fetch, then deduplicates those bins into one ordered
fetch plan.

Shareable means the method retrieves whole bins, the public retrieval
unit: BPB point queries (including §8 super-bin expansion) and the
§5.1 multipoint range method.  eBPB and winSecRange fetch padded
cell-id sets / λ-windows — not bins — and run "direct", as does the
aggregate-tree method (its nodes are their own retrieval unit with a
per-node cache) and every query under oblivious (§4.3) execution,
whose trace-identity guarantee forbids history-dependent reuse.

The planner reuses the executors' own bin-resolution code
(``BPBExecutor.bins_for`` / ``RangeExecutor.multipoint_bins``), so the
plan can never disagree with what execution actually fetches.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.queries import PointQuery, RangeQuery
from repro.exceptions import QueryError


@dataclass(frozen=True)
class PlannedQuery:
    """One batch member, resolved to its epoch and execution method."""

    position: int
    kind: str              # "point" | "range"
    query: object
    method: str            # "bpb" | "multipoint" | "ebpb" | "winsecrange" | "tree"
    epoch_id: int
    shared: bool           # True iff served through the shared-bin overlay


@dataclass
class BatchPlan:
    """The deduplicated fetch plan for one batch."""

    items: list[PlannedQuery] = field(default_factory=list)
    # Deduplicated (context, bin) fetch units in first-reference order —
    # a deterministic function of the batch, so runs replay.
    units: list[tuple] = field(default_factory=list)
    # Whole-bin references before deduplication; units after.  Their
    # ratio is the batch's overlap (dedup) factor.
    bin_references: int = 0

    @property
    def dedup_factor(self) -> float:
        """References per unique bin (≥ 1.0; 1.0 = no overlap)."""
        if not self.units:
            return 1.0
        return self.bin_references / len(self.units)


class QueryBatcher:
    """Plans batches for one :class:`ServiceProvider`."""

    def __init__(self, service):
        self.service = service

    def plan(self, queries, epoch_id: int | None = None) -> BatchPlan:
        """Resolve and deduplicate; raises on malformed members."""
        service = self.service
        plan = BatchPlan()
        units: OrderedDict[tuple[str, int], tuple] = OrderedDict()
        for position, item in enumerate(queries):
            query, method = self._normalize(item)
            if isinstance(query, PointQuery):
                kind = "point"
                eid = (
                    epoch_id if epoch_id is not None
                    else service._epoch_of(query.timestamp)
                )
            else:
                kind = "range"
                eid = (
                    epoch_id if epoch_id is not None
                    else service._epoch_of(query.time_start)
                )
                if epoch_id is None and service._epoch_of(query.time_end) != eid:
                    raise QueryError(
                        "range spans multiple epochs; use DynamicConcealer (§6)"
                    )
            context = service.context_for(eid)
            if kind == "range" and method == "auto":
                method = service.choose_range_method(query, context)
            shared = not service.config.oblivious and (
                kind == "point" or method == "multipoint"
            )
            if shared:
                if kind == "point":
                    bins = service._point_executor.bins_for(query, context)
                else:
                    bins = service._range_executor.multipoint_bins(query, context)
                plan.bin_references += len(bins)
                for fetch_bin in bins:
                    units.setdefault(
                        (context.table_name, fetch_bin.index),
                        (context, fetch_bin),
                    )
            plan.items.append(
                PlannedQuery(
                    position=position,
                    kind=kind,
                    query=query,
                    method=method,
                    epoch_id=eid,
                    shared=shared,
                )
            )
        plan.units = list(units.values())
        return plan

    @staticmethod
    def _normalize(item) -> tuple[object, str]:
        """Accept ``PointQuery``, ``RangeQuery``, or ``(RangeQuery, method)``."""
        from repro.core.service import RANGE_METHODS

        if isinstance(item, PointQuery):
            return item, "bpb"
        if isinstance(item, RangeQuery):
            return item, "ebpb"
        if (
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[0], RangeQuery)
        ):
            query, method = item
            if method not in RANGE_METHODS:
                raise QueryError(
                    f"unknown range method {method!r}; choose from {RANGE_METHODS}"
                )
            return query, method
        raise QueryError(
            f"batch member {item!r} is neither a PointQuery, a RangeQuery, "
            "nor a (RangeQuery, method) pair"
        )
