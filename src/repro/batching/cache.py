"""A fixed-capacity, epoch-fenced cache of verified whole bins.

The cache lives "inside" the enclave: its resident rows are charged
against the EPC budget (the same pressure any in-enclave working set
feels), and entries are only ever *whole bins* — the public retrieval
unit of Theorem 4.1.  A hit therefore reveals nothing beyond what the
storage access log already shows for a miss: which bin a query touched.

Staleness is handled the way :class:`RepairFenced` handles anti-entropy
repair: every entry is stamped with the storage engine's
``rewrite_generation`` at fill time, and a lookup that observes a newer
generation (or an in-flight rewrite) discards the entry instead of
serving it.  Key rotation and §6 dynamic bin rewrites both bump the
generation through ``begin/end_rewrite``, so a cached-then-rotated
epoch can never serve pre-rotation ciphertexts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import telemetry
from repro.exceptions import EnclaveMemoryError

# Same per-row EPC estimate the fetch path charges while a batch
# transits the enclave (see EpochContext.fetch).
ROW_ESTIMATE_BYTES = 256


def _hits():
    return telemetry.counter(
        "concealer_bin_cache_hits_total",
        "bin-cache hits (whole-bin lookups served without storage)",
        secrecy=telemetry.PUBLIC_SIZE,
    )


def _misses():
    return telemetry.counter(
        "concealer_bin_cache_misses_total",
        "bin-cache misses (whole-bin lookups that went to storage)",
        secrecy=telemetry.PUBLIC_SIZE,
    )


def _evictions():
    return telemetry.counter(
        "concealer_bin_cache_evictions_total",
        "bin-cache evictions, by reason",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("reason",),
    )


def _occupancy():
    return telemetry.gauge(
        "concealer_bin_cache_bins",
        "bins currently resident in the enclave bin cache",
        secrecy=telemetry.PUBLIC_SIZE,
    )


@dataclass(frozen=True)
class CachedBin:
    """One resident bin: its verified payload and the fence stamp.

    ``rows`` is either a tuple of scalar rows or a
    :class:`~repro.core.packed.PackedBin` (the columnar layout is cached
    in packed form — unpacking would forfeit the vectorized hot path).
    """

    rows: tuple | object
    verified: bool
    generation: int
    charged_bytes: int


class BinCache:
    """LRU cache of whole bins, EPC-charged and generation-fenced.

    Thread-safe: the parallel fetch executor's workers look up and
    insert concurrently.  ``capacity_bins`` bounds residency; the byte
    cost additionally competes with query working sets for the EPC, so
    an insert that would not fit is simply skipped (caching is an
    optimisation, never a correctness requirement).
    """

    def __init__(
        self,
        enclave,
        engine,
        capacity_bins: int,
        row_bytes: int = ROW_ESTIMATE_BYTES,
    ):
        if capacity_bins < 0:
            raise ValueError("capacity_bins must be >= 0")
        self.enclave = enclave
        self.engine = engine
        self.capacity_bins = capacity_bins
        self.row_bytes = row_bytes
        self._entries: OrderedDict[tuple[str, int], CachedBin] = OrderedDict()
        self._lock = threading.RLock()

    # --------------------------------------------------------------- lookups

    def lookup(
        self, table: str, bin_index: int, require_verified: bool = False
    ) -> CachedBin | None:
        """Return the resident bin, or ``None`` on miss.

        A resident entry whose generation predates the engine's current
        ``rewrite_generation`` — or that was filled while a rewrite is
        in flight — is evicted rather than served; the caller re-fetches
        the rewritten bytes from storage.  ``require_verified`` refuses
        entries cached without hash-chain verification (a verify=True
        service must never serve rows no one has checked).
        """
        key = (table, bin_index)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._stale(entry):
                self._evict(key, "generation")
                entry = None
            if entry is None or (require_verified and not entry.verified):
                _misses().inc()
                return None
            self._entries.move_to_end(key)
            _hits().inc()
            return entry

    def _stale(self, entry: CachedBin) -> bool:
        if getattr(self.engine, "rewrite_in_progress", False):
            return True
        return entry.generation != getattr(self.engine, "rewrite_generation", 0)

    # --------------------------------------------------------------- inserts

    def insert(
        self,
        table: str,
        bin_index: int,
        rows: tuple,
        verified: bool,
        generation: int,
    ) -> bool:
        """Admit a bin fetched under ``generation``; returns residency.

        ``generation`` must be the engine generation snapshotted *before*
        the fetch: if a rewrite began (or completed) between the
        snapshot and the insert, the rows may mix pre- and
        post-rewrite bytes and must not be cached.  An insert that
        cannot reserve EPC is skipped — the budget belongs to query
        working sets first.
        """
        if self.capacity_bins <= 0:
            return False
        if getattr(self.engine, "rewrite_in_progress", False):
            return False
        if generation != getattr(self.engine, "rewrite_generation", 0):
            return False
        if hasattr(rows, "nbytes"):
            # Packed bins carry their exact resident size; charging the
            # per-row estimate would mis-account the EPC (a packed bin
            # is typically much denser than row_bytes × rows).
            stored = rows
            charged = int(rows.nbytes)
        else:
            stored = tuple(rows)
            charged = self.row_bytes * len(stored)
        with self._lock:
            try:
                self.enclave.charge_memory(charged)
            except EnclaveMemoryError:
                _evictions().labels(reason="epc-full").inc()
                return False
            key = (table, bin_index)
            if key in self._entries:
                self._evict(key, "replaced")
            while len(self._entries) >= self.capacity_bins:
                oldest = next(iter(self._entries))
                self._evict(oldest, "capacity")
            self._entries[key] = CachedBin(
                rows=stored,
                verified=verified,
                generation=generation,
                charged_bytes=charged,
            )
            _occupancy().set(len(self._entries))
            return True

    # ------------------------------------------------------------ invalidation

    def invalidate_all(self, reason: str = "clear", release: bool = True) -> int:
        """Drop every entry; returns how many were resident.

        ``release=False`` skips returning the EPC charge — used when the
        owning enclave crashed (hardware wiped the EPC wholesale, so
        there is nothing to return and the instance refuses ecalls).
        """
        with self._lock:
            dropped = len(self._entries)
            for key in list(self._entries):
                self._evict(key, reason, release=release)
            return dropped

    def rebind_enclave(self, enclave) -> None:
        """Point at a replacement enclave after a crash.

        The dead instance's EPC was wiped by hardware, so entries are
        dropped without releasing their (already-gone) charge.
        """
        self.invalidate_all(reason="enclave-replaced", release=False)
        self.enclave = enclave

    def rebind_engine(self, engine) -> None:
        """Point at a replacement engine (checkpoint restore).

        Restored storage may hold different bytes than what was cached,
        so everything is dropped; the enclave is still alive, so its
        charge is returned.
        """
        self.invalidate_all(reason="engine-replaced", release=True)
        self.engine = engine

    def _evict(self, key: tuple[str, int], reason: str, release: bool = True) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        if release:
            self.enclave.release_memory(entry.charged_bytes)
        _evictions().labels(reason=reason).inc()
        _occupancy().set(len(self._entries))

    # ------------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    @property
    def resident_bytes(self) -> int:
        """EPC bytes currently charged to resident bins."""
        with self._lock:
            return sum(e.charged_bytes for e in self._entries.values())
