"""Batched query execution over a shared, epoch-fenced bin cache.

Concealer's cost model (§5, Theorem 4.1) makes the *bin fetch* the unit
of both work and leakage: every query touching a bin pays the full
fixed-size retrieval.  Concurrent queries over a hot spatial region
therefore redundantly re-fetch and re-verify identical bins.  This
package removes the redundancy without touching the leakage profile:

- :class:`~repro.batching.planner.QueryBatcher` resolves a batch of
  point/range queries to their bin sets and deduplicates them into a
  single per-(table, bin) fetch plan;
- :class:`~repro.batching.cache.BinCache` holds fully verified *whole*
  bins inside the enclave simulator, charged against the EPC budget and
  invalidated through the engines' ``begin/end_rewrite`` generations
  (the same fence that protects anti-entropy repair from rotation);
- :class:`~repro.batching.fetcher.BinFetcher` is the shared fetch path
  the point and multipoint-range executors call through — overlay →
  cache → storage, verifying each bin before it may be reused;
- :class:`~repro.batching.executor.ParallelFetchExecutor` drives the
  deduplicated plan over a bounded worker pool, threading ``Deadline``
  budgets and circuit-breaker state through every concurrent fetch.

Because the bin is the *public* retrieval unit (any query touching it
fetches all of it), cache hit/miss and batch-dedup behaviour are pure
functions of the publicly observable bin-identity sequence — all the
counters here are tagged public-size and the leakage auditor holds
them to it.
"""

from repro.batching.cache import BinCache, CachedBin
from repro.batching.executor import ParallelFetchExecutor
from repro.batching.fetcher import BatchOverlay, BinFetcher
from repro.batching.planner import BatchPlan, PlannedQuery, QueryBatcher

__all__ = [
    "BatchOverlay",
    "BatchPlan",
    "BinCache",
    "BinFetcher",
    "CachedBin",
    "ParallelFetchExecutor",
    "PlannedQuery",
    "QueryBatcher",
]
