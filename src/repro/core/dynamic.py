"""Dynamic insertion and cross-round query execution (§6).

Inserts are batched into rounds (= epochs); each round is encrypted
independently by Algorithm 1, which gives forward privacy for free
(fresh key per round).  But querying a value *across* rounds lets the
adversary correlate bins between rounds (Example 6.1).  The §6 fix,
inspired by Path-ORAM:

- a query spanning rounds fetches, **from every round in its span**,
  the same number of bins: the bins it needs plus randomly chosen
  extras, ``max(needed, ceil(log2 |Bin|))`` in total — rounds that
  contribute nothing are indistinguishable from rounds that do;
- every fetched bin is then *rewritten*: its rows are decrypted,
  re-encrypted under a fresh per-bin key (``k = s_k ‖ eid ‖ counter``,
  footnote 7), permuted among their storage slots, and written back —
  so a later query touching the same logical bin produces unlinkable
  trapdoors and row contents.

The enclave keeps the per-(round, bin) rewrite generation in sealed
memory — the "meta-index at the trusted entity" that lets Concealer
avoid Path-ORAM's external data structure.
"""

from __future__ import annotations

import math
import random

from repro import telemetry
from repro.core.aggregation import evaluate_aggregate
from repro.core.binning import Bin
from repro.core.context import EpochContext, _count_tuples
from repro.core.epoch import EpochPackage, fake_index_plaintext, index_plaintext
from repro.core.queries import Aggregate, Predicate, QueryStats, RangeQuery
from repro.core.service import ServiceProvider
from repro.crypto.det import DeterministicCipher
from repro.crypto.keys import derive_rewrite_key
from repro.exceptions import DecryptionError, QueryError
from repro.storage.table import Row


class DynamicConcealer:
    """Multi-round store and the §6 query executor.

    Wraps a provisioned :class:`ServiceProvider`; rounds are ingested
    through :meth:`ingest_round` and cross-round range queries run
    through :meth:`execute_range`.
    """

    def __init__(self, service: ServiceProvider, rng: random.Random | None = None):
        self.service = service
        self._rng = rng if rng is not None else random.Random()
        # (epoch_id, bin_index) -> rewrite generation (footnote 7 counter).
        self._generations: dict[tuple[int, int], int] = {}
        # (epoch_id, bin_index) -> DET cipher of the current generation.
        self._ciphers: dict[tuple[int, int], DeterministicCipher] = {}

    # -------------------------------------------------------------- ingestion

    def ingest_round(self, package: EpochPackage) -> None:
        """Land one round; Algorithm 1 ran independently at the provider."""
        self.service.ingest_epoch(package)

    def rounds(self) -> list[int]:
        """Ingested round (epoch) ids, sorted."""
        return self.service.ingested_epochs()

    def generation(self, epoch_id: int, bin_index: int) -> int:
        """Rewrite generation of one bin (0 = never rewritten)."""
        return self._generations.get((epoch_id, bin_index), 0)

    # ----------------------------------------------------------------- query

    def execute_range(self, query: RangeQuery) -> tuple[object, QueryStats]:
        """Run a range query spanning any number of rounds."""
        stats = QueryStats()
        span = self._rounds_in_span(query)
        if not span:
            raise QueryError("query range covers no ingested round")

        dynamic_bins = telemetry.counter(
            "concealer_dynamic_bins_fetched_total",
            "§6 cross-round bin fetches split needed vs. decoy (which "
            "rounds satisfy a query is exactly what the decoys hide)",
            labels=("role",),
        )
        all_matched: list[tuple[EpochContext, Bin, list[Row]]] = []
        with telemetry.span("dynamic.range_query", rounds=len(span)):
            for epoch_id in span:
                context = self.service.context_for(epoch_id)
                needed = self._needed_bins(query, context)
                fetch_set = self._fetch_set(needed, context)
                stats.bins_fetched += len(fetch_set)
                needed_indexes = {b.index for b in needed}
                dynamic_bins.labels(role="needed").inc(
                    sum(1 for b in fetch_set if b.index in needed_indexes)
                )
                dynamic_bins.labels(role="decoy").inc(
                    sum(1 for b in fetch_set if b.index not in needed_indexes)
                )

                self.service.engine.access_log.begin_query()
                try:
                    for chosen in fetch_set:
                        rows = self._fetch_bin(context, chosen, stats)
                        if any(b.index == chosen.index for b in needed):
                            all_matched.append((context, chosen, rows))
                        self._rewrite_bin(context, chosen, rows)
                finally:
                    self.service.engine.access_log.end_query()

        return self._aggregate(query, all_matched, stats)

    # ------------------------------------------------------------- internals

    def _rounds_in_span(self, query: RangeQuery) -> list[int]:
        rounds = []
        for epoch_id in self.rounds():
            ctx_duration = self.service.context_for(epoch_id).grid.spec.epoch_duration
            if epoch_id <= query.time_end and epoch_id + ctx_duration > query.time_start:
                rounds.append(epoch_id)
        return rounds

    def _needed_bins(self, query: RangeQuery, context: EpochContext) -> list[Bin]:
        """The bins actually satisfying the query within one round."""
        duration = context.grid.spec.epoch_duration
        start = max(query.time_start, context.epoch_id)
        end = min(query.time_end, context.epoch_id + duration - 1)
        if end < start:
            return []
        cids: list[int] = []
        for combo in query.candidate_combinations():
            for cid in context.grid.cell_ids_for_range(combo, start, end):
                if cid not in cids:
                    cids.append(cid)
        return context.layout.bins_of_cell_ids(cids)

    def _fetch_set(self, needed: list[Bin], context: EpochContext) -> list[Bin]:
        """Needed bins plus random decoys, ≥ ceil(log2 |Bin|) in total.

        Rounds with no matching bin still fetch the same floor count,
        hiding which rounds satisfy the query (§6 step ii).
        """
        total_bins = len(context.layout.bins)
        floor = min(total_bins, max(1, math.ceil(math.log2(max(total_bins, 2)))))
        target = max(len(needed), floor)
        chosen = {b.index: b for b in needed}
        candidates = [b for b in context.layout.bins if b.index not in chosen]
        self._rng.shuffle(candidates)
        for decoy in candidates:
            if len(chosen) >= target:
                break
            chosen[decoy.index] = decoy
        return list(chosen.values())

    def _bin_cipher(self, context: EpochContext, bin_index: int) -> DeterministicCipher:
        """DET cipher of a bin's current rewrite generation."""
        key = (context.epoch_id, bin_index)
        cipher = self._ciphers.get(key)
        if cipher is None:
            generation = self._generations.get(key, 0)
            if generation == 0:
                cipher = context.det
            else:
                cipher = DeterministicCipher(
                    derive_rewrite_key(
                        self.service.enclave.master_key, context.epoch_id, generation
                    )
                )
            self._ciphers[key] = cipher
        return cipher

    def _fetch_bin(
        self, context: EpochContext, chosen: Bin, stats: QueryStats
    ) -> list[Row]:
        """Fetch one bin under its generation's trapdoors."""
        cipher = self._bin_cipher(context, chosen.index)
        trapdoors = [
            cipher.encrypt(index_plaintext(cid, j))
            for cid in chosen.cell_ids
            for j in range(1, context.c_tuple[cid] + 1)
        ]
        real = len(trapdoors)
        trapdoors.extend(
            cipher.encrypt(fake_index_plaintext(fid)) for fid in chosen.fake_ids()
        )
        _count_tuples(real, len(trapdoors) - real)
        stats.trapdoors_generated += len(trapdoors)
        rows = self.service.engine.lookup_many(
            context.table_name, "index_key", trapdoors
        )
        stats.rows_fetched += len(rows)
        return rows

    def _rewrite_bin(
        self, context: EpochContext, chosen: Bin, rows: list[Row]
    ) -> None:
        """§6 step iii: permute, re-encrypt with a fresh key, write back."""
        key = (context.epoch_id, chosen.index)
        old_cipher = self._bin_cipher(context, chosen.index)
        new_generation = self._generations.get(key, 0) + 1
        new_cipher = DeterministicCipher(
            derive_rewrite_key(
                self.service.enclave.master_key, context.epoch_id, new_generation
            )
        )

        contents = []
        for row in rows:
            columns = []
            for ciphertext in row.columns:
                try:
                    columns.append(new_cipher.encrypt(old_cipher.decrypt(ciphertext)))
                except DecryptionError:
                    # Fake filter/payload columns are randomized garbage;
                    # refresh with new garbage of the same length (the
                    # 32 bytes of E_nd framing stay constant).
                    body = b"\x00" * max(0, len(ciphertext) - 32)
                    columns.append(context.nd.encrypt(body))
            contents.append(columns)

        slots = [row.row_id for row in rows]
        self._rng.shuffle(contents)
        # The write-back must be atomic with the generation bump: a
        # crash after some overwrites would otherwise leave the bin
        # half under generation g, half under g+1 — unreadable under
        # either.  On any failure the captured pre-rewrite rows are
        # restored (host-side bytes, so this works with a dead enclave)
        # and the generation stays put.
        enclave = self.service.enclave
        engine = self.service.engine
        # Fence generation-stamped consumers (the enclave bin cache,
        # anti-entropy repair): a bin cached before this rewrite must
        # not be served after it, even though the *logical* bin is the
        # same — its ciphertexts changed key and permutation.
        fenced = getattr(engine, "begin_rewrite", None) is not None
        if fenced:
            engine.begin_rewrite()
        written: list[int] = []
        try:
            try:
                for row_id, columns in zip(slots, contents):
                    enclave.kill_point("enclave.kill.rewrite")
                    engine.overwrite(context.table_name, row_id, columns)
                    written.append(row_id)
            except BaseException:
                originals = {row.row_id: row.columns for row in rows}
                for row_id in written:
                    engine.overwrite(
                        context.table_name, row_id, list(originals[row_id])
                    )
                raise
        finally:
            if fenced:
                engine.end_rewrite()

        self._generations[key] = new_generation
        self._ciphers[key] = new_cipher
        # Every fetched bin is rewritten, needed or decoy alike, so the
        # rewrite count is a pure function of the public fetch-set size.
        telemetry.counter(
            "concealer_bin_rewrites_total",
            "§6 step-iii bin rewrites (re-key + permute + write back)",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()

    def _aggregate(
        self,
        query: RangeQuery,
        matched_bins: list[tuple[EpochContext, Bin, list[Row]]],
        stats: QueryStats,
    ) -> tuple[object, QueryStats]:
        """Filter the needed bins' rows and fold the aggregate across rounds.

        Note: rows were captured *before* the rewrite, so they decrypt
        under the generation that fetched them.
        """
        records: list[tuple] = []
        count = 0
        for context, chosen, rows in matched_bins:
            cipher = self._bin_cipher_before_rewrite(context, chosen)
            predicate = self._resolve_predicate(query, context)
            duration = context.grid.spec.epoch_duration
            start = max(query.time_start, context.epoch_id)
            end = min(query.time_end, context.epoch_id + duration - 1)
            timestamps = context.query_timestamps(start, end)
            filters = {
                cipher.encrypt(
                    context.schema.filter_plaintext_for_values(
                        predicate.group, values, t
                    )
                )
                for values in self._predicate_combos(predicate)
                for t in timestamps
            }
            position = context.filter_group_position(predicate.group)
            payload_pos = len(context.schema.filter_groups)
            for row in rows:
                if row[position] in filters:
                    count += 1
                    if query.aggregate is not Aggregate.COUNT:
                        plaintext = cipher.decrypt(row[payload_pos])
                        records.append(context.schema.decode_payload(plaintext))
        stats.rows_matched = count
        stats.rows_decrypted = len(records)
        if query.aggregate is Aggregate.COUNT:
            return count, stats
        answer = evaluate_aggregate(
            query.aggregate, records, self.service.schema, query.target, query.k
        )
        return answer, stats

    def _bin_cipher_before_rewrite(
        self, context: EpochContext, chosen: Bin
    ) -> DeterministicCipher:
        """Cipher of the generation the rows were fetched under."""
        key = (context.epoch_id, chosen.index)
        generation = self._generations.get(key, 1) - 1
        if generation <= 0:
            return context.det
        return DeterministicCipher(
            derive_rewrite_key(
                self.service.enclave.master_key, context.epoch_id, generation
            )
        )

    @staticmethod
    def _predicate_combos(predicate: Predicate) -> list[tuple]:
        combos: list[list] = [[]]
        for value in predicate.values:
            options = list(value) if isinstance(value, (tuple, list)) else [value]
            combos = [prefix + [opt] for prefix in combos for opt in options]
        return [tuple(c) for c in combos]

    @staticmethod
    def _resolve_predicate(query: RangeQuery, context: EpochContext) -> Predicate:
        if query.predicate is not None:
            return query.predicate
        schema = context.schema
        for group in schema.filter_groups:
            if group == schema.index_attributes:
                return Predicate(group=group, values=tuple(query.index_values))
        group = schema.filter_groups[0]
        values = tuple(
            query.index_values[schema.index_attributes.index(attr)]
            for attr in group
        )
        return Predicate(group=group, values=values)
