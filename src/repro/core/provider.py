"""The data provider DP (Figure 1, left).

A trusted entity that collects spatial time-series readings, encrypts
them epoch by epoch with Algorithm 1, and ships the encrypted packages
— plus the encrypted user registry — to the untrusted service provider.
Before anything is shipped, the provider attests the service provider's
enclave and provisions the shared secret ``s_k`` into it.
"""

from __future__ import annotations

import os
import random
from collections.abc import Sequence

from repro.core.encryptor import EpochEncryptor, FakeStrategy
from repro.core.epoch import EpochPackage
from repro.core.grid import GridSpec
from repro.core.registry import Registry, UserCredential
from repro.core.schema import DatasetSchema
from repro.crypto.keys import derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.enclave.attestation import measure_code, verify_quote
from repro.enclave.enclave import ENCLAVE_CODE_IDENTITY, Enclave
from repro.exceptions import EpochError


class DataProvider:
    """Owns the data, the master key, and the user registry.

    >>> # A provider is configured once with schema + grid geometry:
    >>> # provider = DataProvider(WIFI_SCHEMA, spec, first_epoch_id=0)
    >>> # then: provider.provision_enclave(sp.enclave)
    >>> #       package = provider.encrypt_epoch(records, epoch_id=0)
    """

    def __init__(
        self,
        schema: DatasetSchema,
        grid_spec: GridSpec,
        first_epoch_id: int,
        master_key: bytes | None = None,
        fake_strategy: FakeStrategy = FakeStrategy.SIMULATED,
        bin_size: int | None = None,
        max_cells_per_bin: int | None = None,
        time_granularity: int = 1,
        rng: random.Random | None = None,
        ingest_workers: int = 1,
        agg_tree: bool = True,
        agg_tree_fanout: int = 4,
        agg_tree_entities: int | None = None,
    ):
        self.schema = schema
        self.grid_spec = grid_spec
        self.first_epoch_id = first_epoch_id
        self.master_key = master_key if master_key is not None else os.urandom(32)
        self.registry = Registry()
        self._rng = rng if rng is not None else random.Random()
        self.encryptor = EpochEncryptor(
            schema=schema,
            grid_spec=grid_spec,
            master_key=self.master_key,
            fake_strategy=fake_strategy,
            bin_size=bin_size,
            max_cells_per_bin=max_cells_per_bin,
            time_granularity=time_granularity,
            rng=self._rng,
            workers=ingest_workers,
            agg_tree=agg_tree,
            agg_tree_fanout=agg_tree_fanout,
            agg_tree_entities=agg_tree_entities,
        )
        self._shipped_epochs: set[int] = set()

    # ----------------------------------------------------------- attestation

    def provision_enclave(self, enclave: Enclave) -> None:
        """Attest the enclave, then provision ``s_k`` + epoch parameters.

        The provider challenges with a fresh nonce, verifies the quote
        against the *published* Concealer enclave measurement (never the
        enclave's self-reported one — that would be circular), and only
        then releases the key — the substitute for the paper's
        out-of-scope key-exchange machinery.
        """
        nonce = (
            self._rng.randbytes(16)
            if hasattr(self._rng, "randbytes")
            else os.urandom(16)
        )
        quote = enclave.quote(nonce)
        expected = measure_code(ENCLAVE_CODE_IDENTITY)
        verify_quote(quote, expected, nonce)
        enclave.provision(
            master_key=self.master_key,
            first_epoch_id=self.first_epoch_id,
            epoch_duration=self.grid_spec.epoch_duration,
        )

    # -------------------------------------------------------------- registry

    def register_user(
        self, user_id: str, device_id: str = "", aggregate_allowed: bool = True
    ) -> UserCredential:
        """Phase 0: enrol a user for this service provider's applications."""
        return self.registry.register(
            user_id, device_id=device_id, aggregate_allowed=aggregate_allowed,
            rng=self._rng if hasattr(self._rng, "randbytes") else None,
        )

    def sealed_registry(self) -> bytes:
        """The encrypted registry blob shipped alongside the data.

        Sealed under a registry-specific key derived from ``s_k`` (epoch
        id 0 of a reserved label), so only the enclave can open it.
        """
        cipher = RandomizedCipher(derive_epoch_key(self.master_key, 0))
        return self.registry.seal(cipher)

    # -------------------------------------------------------------- rotation

    def adopt_master(self, new_master: bytes) -> None:
        """Adopt a rotated master key (rotation protocol step 4).

        Called after :func:`repro.core.rotation.rotate_service_keys`
        succeeds: future epochs are encrypted under the new master, and
        a later :meth:`provision_enclave` (e.g. recovering a crashed
        enclave) provisions the new key — matching what the rotated
        service-side state now expects.
        """
        self.master_key = new_master
        self.encryptor.master_key = new_master

    # ------------------------------------------------------------------ data

    def encrypt_epoch(self, records: Sequence[tuple], epoch_id: int) -> EpochPackage:
        """Phase 1: run Algorithm 1 over one epoch's readings."""
        if epoch_id < self.first_epoch_id:
            raise EpochError(
                f"epoch {epoch_id} precedes first epoch {self.first_epoch_id}"
            )
        if (epoch_id - self.first_epoch_id) % self.grid_spec.epoch_duration:
            raise EpochError(
                f"epoch id {epoch_id} is not aligned to the epoch duration "
                f"{self.grid_spec.epoch_duration}"
            )
        if epoch_id in self._shipped_epochs:
            raise EpochError(f"epoch {epoch_id} was already encrypted and shipped")
        package = self.encryptor.encrypt_epoch(records, epoch_id)
        self._shipped_epochs.add(epoch_id)
        return package

    def partition_records(
        self, records: Sequence[tuple], epoch_id: int, topology
    ) -> list[list[tuple]]:
        """Split one epoch's records by owning shard (provider-side).

        Placement uses the *same* keyed grid construction Algorithm 1
        uses, then the public cell-id → shard map — so the shard a
        record lands on is exactly the shard whose bins a query for it
        will touch.  Record order within each partition is preserved
        (counter assignment, and therefore the verifiable tag chains,
        stay deterministic per shard).
        """
        from repro.core.grid import Grid, derive_grid_key

        grid = Grid(
            self.grid_spec,
            self.schema,
            self.master_key,
            epoch_id,
            grid_key=derive_grid_key(self.master_key, epoch_id),
        )
        partitions: list[list[tuple]] = [
            [] for _ in range(topology.shard_count)
        ]
        for record in records:
            partitions[topology.shard_of(grid.place(record))].append(record)
        return partitions

    def encrypt_epoch_sharded(
        self, records: Sequence[tuple], epoch_id: int, topology
    ) -> list[EpochPackage]:
        """Phase 1 for a sharded fleet: one full package per shard.

        Every shard's package is a complete Algorithm-1 run over its
        partition — its own fakes, bins, metadata vectors, and tag
        chains — so each shard verifies independently and non-owned
        cell-ids still materialise as fake-only bins (queries hashing
        there retrieve only fakes, exactly like empty cells today).
        The epoch is marked shipped once, for the whole fleet.
        """
        if epoch_id < self.first_epoch_id:
            raise EpochError(
                f"epoch {epoch_id} precedes first epoch {self.first_epoch_id}"
            )
        if (epoch_id - self.first_epoch_id) % self.grid_spec.epoch_duration:
            raise EpochError(
                f"epoch id {epoch_id} is not aligned to the epoch duration "
                f"{self.grid_spec.epoch_duration}"
            )
        if epoch_id in self._shipped_epochs:
            raise EpochError(f"epoch {epoch_id} was already encrypted and shipped")
        partitions = self.partition_records(records, epoch_id, topology)
        packages = [
            self.encryptor.encrypt_epoch(partition, epoch_id)
            for partition in partitions
        ]
        self._shipped_epochs.add(epoch_id)
        return packages

    def unship_epoch(self, epoch_id: int) -> None:
        """Forget a shipped epoch so it can be re-encrypted and re-sent.

        The two-phase sharded ingest calls this when a shard crashed
        mid-landing and the already-landed shards were evicted — the
        epoch never became queryable anywhere, so the provider may ship
        it again on retry.
        """
        self._shipped_epochs.discard(epoch_id)

    def epoch_id_for_time(self, timestamp: int) -> int:
        """Which epoch a reading belongs to."""
        duration = self.grid_spec.epoch_duration
        offset = (timestamp - self.first_epoch_id) // duration
        return self.first_epoch_id + offset * duration
