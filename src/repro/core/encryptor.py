"""Algorithm 1: data-provider-side epoch encryption.

For each epoch the data provider:

1. derives the epoch key ``k = KDF(s_k, eid)`` (Line 2);
2. places every tuple on the grid, bumps the per-cell-id counter, and
   DET-encrypts the filter columns, the full tuple, and the index key
   ``E_k(cid ‖ counter)`` (Lines 4–11);
3. manufactures fake tuples (Lines 12–15) using one of two strategies:
   ``EQUAL`` ships one fake per real tuple (the worst case Theorem 4.1
   allows), while ``SIMULATED`` runs the very same deterministic bin
   packing the enclave will run and ships exactly the fakes the padded
   bins need;
4. builds one hash chain per cell-id per encrypted column and seals the
   final digests as verifiable tags (Lines 16–21);
5. permutes real and fake rows together and emits the
   :class:`~repro.core.epoch.EpochPackage` (Lines 22–25).

Throughput of this function is the paper's Exp 1 (≈37,185 rows/min on
the authors' hardware).

**Fast paths.**  Lines 4–21 are embarrassingly parallel per cell-id:
every row's ciphertexts depend only on the epoch key and the row's own
``(cid, counter)`` assignment, and the per-cell hash chains never cross
cells.  The encryptor therefore supports

- ``use_kernels=True`` (default): rows run through the primed-HMAC
  batch kernels of :mod:`repro.crypto.kernels` instead of the scalar
  ciphers — byte-identical output, a sizeable constant-factor win;
- ``workers=N``: rows are partitioned *by cell-id* across a bounded
  process pool, each worker running Lines 4–21 for its cells, and the
  parent merging results by original row position.  Everything
  RNG-ordered — fake nonces, tag nonces, the Line-24 permutation, the
  metadata vectors — stays single-threaded in the parent, in a fixed
  sequence, so a ``workers=4`` package is **bit-for-bit identical** to
  ``workers=1`` (property-tested in
  ``tests/core/test_parallel_encryptor.py``).  Pool failures (no fork
  support, pickling issues) fall back to the serial kernel path.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from repro.core.aggtree import build_agg_tree, default_entity_count
from repro.core.binning import pack_bins
from repro.core.epoch import (
    FAKE_CHAIN_LABEL,
    EncryptedRow,
    EpochPackage,
    encode_int_vector,
    fake_index_plaintext,
    index_plaintext,
)
from repro.core.grid import Grid, GridSpec, derive_grid_key
from repro.core.schema import DatasetSchema
from repro.crypto.det import DeterministicCipher
from repro.crypto.kernels import CHAIN_INIT, DetKernel, NdKernel, record_kernel_ops
from repro.crypto.keys import derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.exceptions import EpochError


class FakeStrategy(str, Enum):
    """§3's two fake-tuple generation methods."""

    EQUAL = "equal"          # method (i): one fake per real tuple
    SIMULATED = "simulated"  # method (ii): simulate binning, ship exactly enough


@dataclass
class EncryptionReport:
    """Accounting emitted alongside a package (drives Exp 1 / Exp 6)."""

    epoch_id: int
    real_rows: int
    fake_rows: int
    bin_size: int
    bin_count: int
    metadata_bytes: int
    workers: int = 1


def _encrypt_partition(args: tuple) -> tuple[list, dict]:
    """Worker body: Lines 4–11 + 16–21 for one cell-id partition.

    ``jobs`` holds ``(slot, record, cid)`` triples — every job of a
    given cell-id, in original record order, lives in exactly one
    partition, so the worker recomputes the per-cell counters and the
    per-cell chain folds locally and they match the global assignment.
    Module-level (not a method) so the process pool can pickle it.
    """
    epoch_key, schema, jobs = args
    det = DetKernel(epoch_key)
    sha = hashlib.sha256
    filter_groups = schema.filter_groups
    column_count = len(filter_groups) + 1
    # Record positions whose values feed each filter column (the group's
    # attributes plus the folded time attribute) — the memo key below.
    group_positions: list[tuple[int, ...]] = []
    for group in filter_groups:
        positions = [schema.position(attr) for attr in group]
        if schema.fold_time_into_filters and schema.time_attribute not in group:
            positions.append(schema.position(schema.time_attribute))
        group_positions.append(tuple(positions))

    # Phase 1 — collect plaintexts, deduplicated.  DET is deterministic,
    # so identical plaintexts yield identical ciphertexts: filter
    # columns repeat across rows (few locations × time buckets), and
    # each repeat saves a full SIV encryption.  Plaintext *construction*
    # is memoized too, keyed by the contributing attribute values.
    unique: dict[bytes, int] = {}
    pt_cache: dict[tuple, bytes] = {}
    counters: dict[int, int] = {}
    row_refs: list[tuple[int, int, list[int]]] = []
    for slot, record, cid in jobs:
        counter = counters.get(cid, 0) + 1
        counters[cid] = counter
        refs: list[int] = []
        for gi, positions in enumerate(group_positions):
            cache_key = (gi, *[record[p] for p in positions])
            plaintext = pt_cache.get(cache_key)
            if plaintext is None:
                plaintext = schema.filter_plaintext(record, filter_groups[gi])
                pt_cache[cache_key] = plaintext
            index = unique.get(plaintext)
            if index is None:
                index = unique[plaintext] = len(unique)
            refs.append(index)
        for plaintext in (
            schema.payload_plaintext(record),
            index_plaintext(cid, counter),
        ):
            index = unique.get(plaintext)
            if index is None:
                index = unique[plaintext] = len(unique)
            refs.append(index)
        row_refs.append((slot, cid, refs))

    # Phase 2 — one batched SIV pass over the distinct plaintexts.
    ciphertexts = det.encrypt_many(list(unique), counted=False)

    # Phase 3 — assemble rows and fold the per-cell chains.
    digests: dict[int, list[bytes]] = {}
    rows: list[tuple[int, EncryptedRow]] = []
    filter_count = column_count - 1
    for slot, cid, refs in row_refs:
        columns = [ciphertexts[index] for index in refs]
        rows.append(
            (
                slot,
                EncryptedRow(
                    filters=tuple(columns[:filter_count]),
                    payload=columns[filter_count],
                    index_key=columns[-1],
                ),
            )
        )
        chain = digests.get(cid)
        if chain is None:
            chain = digests[cid] = [CHAIN_INIT] * column_count
        for position in range(column_count):
            chain[position] = sha(columns[position] + chain[position]).digest()
    return rows, digests


class EpochEncryptor:
    """Runs Algorithm 1 for a fixed schema/grid configuration.

    ``bin_size`` optionally overrides the packing bin size (default:
    the epoch's maximum cell-id population — the paper's ``|b| = max``).
    ``rng`` seeds the Line-24 permutation *and* the randomized-cipher
    nonces; pass a seeded ``random.Random`` for reproducible packages.
    ``workers`` sets the default ingest parallelism (overridable per
    call); ``use_kernels=False`` pins the original scalar ciphers — the
    pre-kernel baseline the throughput benchmarks compare against.
    """

    # A partition below this many rows is not worth a fork: the pool
    # spawn + pickle overhead would eat the win.
    min_rows_per_worker = 64

    def __init__(
        self,
        schema: DatasetSchema,
        grid_spec: GridSpec,
        master_key: bytes,
        fake_strategy: FakeStrategy = FakeStrategy.SIMULATED,
        bin_size: int | None = None,
        max_cells_per_bin: int | None = None,
        time_granularity: int = 1,
        rng: random.Random | None = None,
        workers: int = 1,
        use_kernels: bool = True,
        agg_tree: bool = True,
        agg_tree_fanout: int = 4,
        agg_tree_entities: int | None = None,
    ):
        self.schema = schema
        self.grid_spec = grid_spec
        self.master_key = master_key
        self.fake_strategy = FakeStrategy(fake_strategy)
        self.bin_size = bin_size
        self.max_cells_per_bin = max_cells_per_bin
        self.time_granularity = time_granularity
        # The hierarchical aggregate-tree sidecar (repro.core.aggtree):
        # fanout k of the time-aggregation tree and the public entity
        # capacity (None → one entity per time-free prefix cell).
        self.agg_tree = agg_tree
        self.agg_tree_fanout = agg_tree_fanout
        self.agg_tree_entities = agg_tree_entities
        # §1.2(iii): different per-epoch row counts (day vs night) leak;
        # optionally pad every shipped epoch to a fixed total row count
        # with additional fakes.  None disables (the paper's default).
        self.pad_epoch_rows_to: int | None = None
        self._rng = rng if rng is not None else random.Random()
        # Nonce source for E_nd: the caller's rng when one was supplied
        # (reproducible packages), os.urandom otherwise — matching the
        # scalar RandomizedCipher contract.
        self._nonce_rng = rng
        self.workers = workers
        self.use_kernels = use_kernels
        self.last_report: EncryptionReport | None = None

    def encrypt_epoch(
        self,
        records: Sequence[tuple],
        epoch_id: int,
        workers: int | None = None,
    ) -> EpochPackage:
        """Encrypt one epoch's records into a transmissible package.

        ``workers`` overrides the instance default for this call.  The
        produced package bytes depend only on ``(records, epoch_id,
        master_key, rng state)`` — never on ``workers`` or
        ``use_kernels``.
        """
        workers = self.workers if workers is None else workers
        if workers < 1:
            raise EpochError("workers must be >= 1")
        records = list(records)
        epoch_key = derive_epoch_key(self.master_key, epoch_id)
        nd = (
            NdKernel(epoch_key, rng=self._nonce_rng)
            if self.use_kernels
            else RandomizedCipher(epoch_key, rng=self._nonce_rng)
        )
        grid_key = derive_grid_key(self.master_key, epoch_id)
        grid = Grid(
            self.grid_spec, self.schema, self.master_key, epoch_id,
            grid_key=grid_key,
        )

        u = self.grid_spec.cell_id_count
        c_tuple = [0] * u
        cell_counts = [0] * self.grid_spec.total_cells
        column_count = len(self.schema.filter_groups) + 1

        # Serial pre-pass (Lines 4–7): validation, grid placement, and
        # the (cid, counter) assignment every later stage keys off.
        assignments: list[tuple[int, int]] = []
        cid_order: list[int] = []  # first-appearance order, fixes tag order
        seen_cids: set[int] = set()
        for record in records:
            self._check_record(record, epoch_id)
            flat = grid.flat_index(grid.coords(record))
            cid = grid.cell_id_of(flat)
            cell_counts[flat] += 1
            c_tuple[cid] += 1
            assignments.append((cid, c_tuple[cid]))
            if cid not in seen_cids:
                seen_cids.add(cid)
                cid_order.append(cid)

        # Row encryption + per-cell chain folds (Lines 8–11, 16–21).
        effective = min(workers, max(1, len(records) // self.min_rows_per_worker))
        if not self.use_kernels:
            real_rows, digests = self._encrypt_rows_scalar(
                records, assignments, epoch_key, column_count
            )
        elif effective > 1:
            real_rows, digests = self._encrypt_rows_parallel(
                records, assignments, epoch_key, column_count, effective
            )
        else:
            real_rows, digests = self._encrypt_rows_kernel(
                records, assignments, epoch_key, column_count
            )
        if self.use_kernels and records:
            # Worker-side encryptions are counted here, in the parent,
            # so the public kernel-op count is identical for every
            # ``workers`` setting (and for the pool-failure fallback).
            record_kernel_ops("det_encrypt", (column_count + 1) * len(records))

        fake_rows, fake_digests = self._make_fake_rows(
            epoch_key, nd, c_tuple, column_count
        )

        # Tag sealing consumes one nonce per (label, column), in cell
        # first-appearance order with the fake chain last — a fixed,
        # single-threaded sequence regardless of the row-encryption path.
        tags = {
            label: tuple(nd.encrypt(digest) for digest in digests[label])
            for label in cid_order
        }
        if fake_digests is not None:
            tags[FAKE_CHAIN_LABEL] = tuple(
                nd.encrypt(digest) for digest in fake_digests
            )

        all_rows = real_rows + fake_rows
        self._rng.shuffle(all_rows)  # Line 24: mix real and fake tuples

        packed_bins = self._build_packed_bins(
            all_rows, real_rows, fake_rows, assignments, c_tuple
        )

        # The aggregate-tree sidecar.  Built in the serial parent with a
        # fixed nd-nonce order (directory, root tag) *before* the
        # package's metadata-vector encryptions, so packages stay
        # bit-identical for every ``workers`` setting.
        agg_tree = None
        if self.agg_tree and records:
            agg_tree = build_agg_tree(
                records,
                self.schema,
                grid,
                epoch_key,
                nd,
                fanout=self.agg_tree_fanout,
                entity_count=self.agg_tree_entities
                or default_entity_count(
                    self.grid_spec.total_cells, self.grid_spec.time_buckets
                ),
                time_granularity=self.time_granularity,
            )
            if agg_tree is not None and self.use_kernels:
                record_kernel_ops("det_encrypt", agg_tree.node_count)

        package = EpochPackage(
            schema_name=self.schema.name,
            epoch_id=epoch_id,
            grid_spec=self.grid_spec,
            time_granularity=self.time_granularity,
            rows=all_rows,
            enc_cell_id_vector=nd.encrypt(encode_int_vector(grid.cell_id_vector())),
            enc_c_tuple_vector=nd.encrypt(encode_int_vector(c_tuple)),
            enc_cell_counts=nd.encrypt(encode_int_vector(cell_counts)),
            enc_tags=tags,
            real_count=len(real_rows),
            fake_count=len(fake_rows),
            bin_size=self.bin_size,
            max_cells_per_bin=self.max_cells_per_bin,
            enc_grid_key=nd.encrypt(grid_key),
            packed_bins=packed_bins,
            agg_tree=agg_tree,
        )
        layout_size = self.bin_size or max(max(c_tuple), 1)
        self.last_report = EncryptionReport(
            epoch_id=epoch_id,
            real_rows=len(real_rows),
            fake_rows=len(fake_rows),
            bin_size=layout_size,
            bin_count=-(-sum(c_tuple) // layout_size) if sum(c_tuple) else 0,
            metadata_bytes=package.metadata_bytes(),
            workers=effective if self.use_kernels else 1,
        )
        return package

    # --------------------------------------------------------- columnar bins

    def _build_packed_bins(
        self, all_rows, real_rows, fake_rows, assignments, c_tuple
    ):
        """Columnar form of the shuffled rows, one PackedBin per bin.

        Runs the same deterministic :func:`pack_bins` the enclave runs
        and lays each bin's member rows out in canonical slot order
        (per cell-id counters ``1..c_tuple[cid]``, then the bin's fake
        ids ascending).  Row ids are the rows' positions in the shuffled
        package — exactly the physical ids sequential ingest assigns —
        so the packed bins unpack byte-for-byte to what the scalar
        trapdoor fetch would return.  Returns ``None`` whenever packing
        is impossible (no real rows, or an explicit epoch-pad override
        shipped fewer fakes than the layout needs): consumers fall back
        to the scalar path.
        """
        from repro.core.packed import PackedBin
        from repro.storage.table import Row

        if not real_rows:
            return None
        layout = pack_bins(
            c_tuple,
            bin_size=self.bin_size,
            max_cells_per_bin=self.max_cells_per_bin,
        )
        if layout.total_fakes > len(fake_rows):
            return None
        position = {id(row): index for index, row in enumerate(all_rows)}
        slot_rows = {
            (cid, counter): row
            for row, (cid, counter) in zip(real_rows, assignments)
        }
        packed = []
        for chosen in layout.bins:
            members = []
            for cid in chosen.cell_ids:
                members.extend(
                    slot_rows[(cid, counter)]
                    for counter in range(1, c_tuple[cid] + 1)
                )
            members.extend(fake_rows[fid - 1] for fid in chosen.fake_ids())
            try:
                packed.append(
                    PackedBin.pack(
                        chosen.index,
                        [
                            Row(position[id(row)], tuple(row.as_columns()))
                            for row in members
                        ],
                    )
                )
            except ValueError:
                return None
        return packed

    # ------------------------------------------------------------- row paths

    def _encrypt_rows_scalar(
        self, records, assignments, epoch_key: bytes, column_count: int
    ) -> tuple[list[EncryptedRow], dict[int, list[bytes]]]:
        """The original per-row scalar path (the pre-kernel baseline)."""
        det = DeterministicCipher(epoch_key)
        schema = self.schema
        sha = hashlib.sha256
        rows: list[EncryptedRow] = []
        digests: dict[int, list[bytes]] = {}
        for record, (cid, counter) in zip(records, assignments):
            filters = tuple(
                det.encrypt(schema.filter_plaintext(record, group))
                for group in schema.filter_groups
            )
            payload = det.encrypt(schema.payload_plaintext(record))
            index_key = det.encrypt(index_plaintext(cid, counter))
            rows.append(
                EncryptedRow(filters=filters, payload=payload, index_key=index_key)
            )
            chain = digests.get(cid)
            if chain is None:
                chain = digests[cid] = [CHAIN_INIT] * column_count
            for position, ciphertext in enumerate((*filters, payload)):
                chain[position] = sha(ciphertext + chain[position]).digest()
        return rows, digests

    def _encrypt_rows_kernel(
        self, records, assignments, epoch_key: bytes, column_count: int
    ) -> tuple[list[EncryptedRow], dict[int, list[bytes]]]:
        """Serial path through the primed-HMAC DET kernel."""
        jobs = [
            (slot, record, cid)
            for slot, (record, (cid, _)) in enumerate(zip(records, assignments))
        ]
        indexed, digests = _encrypt_partition((epoch_key, self.schema, jobs))
        return [row for _, row in indexed], digests

    def _encrypt_rows_parallel(
        self, records, assignments, epoch_key: bytes, column_count: int, workers: int
    ) -> tuple[list[EncryptedRow], dict[int, list[bytes]]]:
        """Fan Lines 4–21 out over a bounded process pool, by cell-id.

        Partitioning by cell-id keeps each per-cell chain entirely
        inside one worker; the merge is order-free for chains and
        slot-indexed for rows, so the result is byte-identical to the
        serial path.  Any pool failure falls back to serial kernels.
        """
        by_cid: dict[int, list[int]] = {}
        for slot, (cid, _) in enumerate(assignments):
            by_cid.setdefault(cid, []).append(slot)
        # Greedy balance: biggest cells first onto the lightest worker.
        buckets: list[list[int]] = [[] for _ in range(workers)]
        loads = [0] * workers
        for cid in sorted(by_cid, key=lambda c: -len(by_cid[c])):
            lightest = loads.index(min(loads))
            buckets[lightest].append(cid)
            loads[lightest] += len(by_cid[cid])
        tasks = [
            (
                epoch_key,
                self.schema,
                [(slot, records[slot], cid) for cid in bucket for slot in by_cid[cid]],
            )
            for bucket in buckets
            if bucket
        ]
        try:
            import concurrent.futures

            with concurrent.futures.ProcessPoolExecutor(
                max_workers=len(tasks)
            ) as pool:
                partitions = list(pool.map(_encrypt_partition, tasks))
        except Exception:
            # No fork support / pickling trouble: correctness first.
            return self._encrypt_rows_kernel(
                records, assignments, epoch_key, column_count
            )
        rows: list[EncryptedRow | None] = [None] * len(records)
        digests: dict[int, list[bytes]] = {}
        for indexed, part_digests in partitions:
            for slot, row in indexed:
                rows[slot] = row
            digests.update(part_digests)
        return rows, digests

    # ------------------------------------------------------------------ fakes

    def _make_fake_rows(
        self,
        epoch_key: bytes,
        nd,
        c_tuple: list[int],
        column_count: int,
    ) -> tuple[list[EncryptedRow], list[bytes] | None]:
        """Lines 12–15: manufacture ciphertext-secure fake tuples.

        Fake filter/payload columns are randomized garbage (``E_nd``),
        indistinguishable from real DET ciphertexts to anyone without
        the key; index keys are ``E_k(f ‖ j)`` so the enclave can
        formulate fake trapdoors.  Fakes get their own hash chain so
        integrity covers them too (a reproduction extension).

        Returns ``(rows, chain_digests)``; digests are ``None`` when no
        fakes ship.  ``nd`` draws one nonce per encrypted column in row
        order — the sequence both the scalar and kernel paths follow.
        """
        total_real = sum(c_tuple)
        if self.fake_strategy is FakeStrategy.EQUAL:
            fake_total = total_real
        else:
            if total_real == 0:
                fake_total = 0
            else:
                layout = pack_bins(
                    c_tuple,
                    bin_size=self.bin_size,
                    max_cells_per_bin=self.max_cells_per_bin,
                )
                fake_total = layout.total_fakes
        if self.pad_epoch_rows_to is not None:
            if total_real + fake_total > self.pad_epoch_rows_to:
                raise EpochError(
                    f"epoch holds {total_real + fake_total} rows, above the "
                    f"fixed epoch size {self.pad_epoch_rows_to}"
                )
            fake_total = self.pad_epoch_rows_to - total_real

        if not fake_total:
            return [], None

        # Fake filter/payload ciphertexts must be byte-for-byte the same
        # LENGTH as real ones, or length alone would out them at rest.
        # E_nd carries 32 bytes of overhead vs DET's 16, hence the -16.
        fake_filter_body = b"\x00" * (self.schema.filter_pad_width - 16)
        fake_payload_body = b"\x00" * (self.schema.payload_pad_width - 16)

        # One E_nd per column per fake, nonces drawn in row order; the
        # batch kernel consumes the RNG identically to a scalar loop.
        bodies = ([fake_filter_body] * (column_count - 1) + [fake_payload_body]) * (
            fake_total
        )
        if self.use_kernels:
            encrypted = nd.encrypt_many(bodies)
            index_keys = DetKernel(epoch_key).encrypt_many(
                [fake_index_plaintext(fid) for fid in range(1, fake_total + 1)]
            )
        else:
            encrypted = [nd.encrypt(body) for body in bodies]
            det = DeterministicCipher(epoch_key)
            index_keys = [
                det.encrypt(fake_index_plaintext(fid))
                for fid in range(1, fake_total + 1)
            ]

        sha = hashlib.sha256
        fake_digests = [CHAIN_INIT] * column_count
        fake_rows: list[EncryptedRow] = []
        for fake_index in range(fake_total):
            columns = encrypted[
                fake_index * column_count : (fake_index + 1) * column_count
            ]
            fake_rows.append(
                EncryptedRow(
                    filters=tuple(columns[:-1]),
                    payload=columns[-1],
                    index_key=index_keys[fake_index],
                )
            )
            for position, ciphertext in enumerate(columns):
                fake_digests[position] = sha(
                    ciphertext + fake_digests[position]
                ).digest()
        return fake_rows, fake_digests

    # ------------------------------------------------------------------ misc

    def _check_record(self, record: tuple, epoch_id: int) -> None:
        if len(record) != len(self.schema.attributes):
            raise EpochError(
                f"record arity {len(record)} != schema arity "
                f"{len(self.schema.attributes)}"
            )
        timestamp = self.schema.time_of(record)
        if not (
            epoch_id <= timestamp < epoch_id + self.grid_spec.epoch_duration
        ):
            raise EpochError(
                f"record time {timestamp} outside epoch "
                f"[{epoch_id}, {epoch_id + self.grid_spec.epoch_duration})"
            )
