"""Algorithm 1: data-provider-side epoch encryption.

For each epoch the data provider:

1. derives the epoch key ``k = KDF(s_k, eid)`` (Line 2);
2. places every tuple on the grid, bumps the per-cell-id counter, and
   DET-encrypts the filter columns, the full tuple, and the index key
   ``E_k(cid ‖ counter)`` (Lines 4–11);
3. manufactures fake tuples (Lines 12–15) using one of two strategies:
   ``EQUAL`` ships one fake per real tuple (the worst case Theorem 4.1
   allows), while ``SIMULATED`` runs the very same deterministic bin
   packing the enclave will run and ships exactly the fakes the padded
   bins need;
4. builds one hash chain per cell-id per encrypted column and seals the
   final digests as verifiable tags (Lines 16–21);
5. permutes real and fake rows together and emits the
   :class:`~repro.core.epoch.EpochPackage` (Lines 22–25).

Throughput of this function is the paper's Exp 1 (≈37,185 rows/min on
the authors' hardware).
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass
from enum import Enum

from repro.core.binning import pack_bins
from repro.core.epoch import (
    FAKE_CHAIN_LABEL,
    EncryptedRow,
    EpochPackage,
    encode_int_vector,
    fake_index_plaintext,
    index_plaintext,
)
from repro.core.grid import Grid, GridSpec, derive_grid_key
from repro.core.schema import DatasetSchema
from repro.crypto.det import DeterministicCipher
from repro.crypto.hashchain import HashChain
from repro.crypto.keys import derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.exceptions import EpochError


class FakeStrategy(str, Enum):
    """§3's two fake-tuple generation methods."""

    EQUAL = "equal"          # method (i): one fake per real tuple
    SIMULATED = "simulated"  # method (ii): simulate binning, ship exactly enough


@dataclass
class EncryptionReport:
    """Accounting emitted alongside a package (drives Exp 1 / Exp 6)."""

    epoch_id: int
    real_rows: int
    fake_rows: int
    bin_size: int
    bin_count: int
    metadata_bytes: int


class EpochEncryptor:
    """Runs Algorithm 1 for a fixed schema/grid configuration.

    ``bin_size`` optionally overrides the packing bin size (default:
    the epoch's maximum cell-id population — the paper's ``|b| = max``).
    ``rng`` seeds the Line-24 permutation; pass a seeded
    ``random.Random`` for reproducible packages.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        grid_spec: GridSpec,
        master_key: bytes,
        fake_strategy: FakeStrategy = FakeStrategy.SIMULATED,
        bin_size: int | None = None,
        max_cells_per_bin: int | None = None,
        time_granularity: int = 1,
        rng: random.Random | None = None,
    ):
        self.schema = schema
        self.grid_spec = grid_spec
        self.master_key = master_key
        self.fake_strategy = FakeStrategy(fake_strategy)
        self.bin_size = bin_size
        self.max_cells_per_bin = max_cells_per_bin
        self.time_granularity = time_granularity
        # §1.2(iii): different per-epoch row counts (day vs night) leak;
        # optionally pad every shipped epoch to a fixed total row count
        # with additional fakes.  None disables (the paper's default).
        self.pad_epoch_rows_to: int | None = None
        self._rng = rng if rng is not None else random.Random()
        self.last_report: EncryptionReport | None = None

    def encrypt_epoch(self, records: Sequence[tuple], epoch_id: int) -> EpochPackage:
        """Encrypt one epoch's records into a transmissible package."""
        epoch_key = derive_epoch_key(self.master_key, epoch_id)
        det = DeterministicCipher(epoch_key)
        nd = RandomizedCipher(epoch_key)
        grid_key = derive_grid_key(self.master_key, epoch_id)
        grid = Grid(
            self.grid_spec, self.schema, self.master_key, epoch_id,
            grid_key=grid_key,
        )

        u = self.grid_spec.cell_id_count
        c_tuple = [0] * u
        cell_counts = [0] * self.grid_spec.total_cells

        # One hash chain per (cell-id, encrypted column).  Columns are the
        # filter groups plus the payload.
        column_count = len(self.schema.filter_groups) + 1
        chains: dict[int, list[HashChain]] = {}

        real_rows: list[EncryptedRow] = []
        for record in records:
            self._check_record(record, epoch_id)
            flat = grid.flat_index(grid.coords(record))
            cid = grid.cell_id_of(flat)
            cell_counts[flat] += 1
            c_tuple[cid] += 1
            counter = c_tuple[cid]

            filters = tuple(
                det.encrypt(self.schema.filter_plaintext(record, group))
                for group in self.schema.filter_groups
            )
            payload = det.encrypt(self.schema.payload_plaintext(record))
            index_key = det.encrypt(index_plaintext(cid, counter))
            row = EncryptedRow(filters=filters, payload=payload, index_key=index_key)
            real_rows.append(row)

            cell_chains = chains.setdefault(
                cid, [HashChain() for _ in range(column_count)]
            )
            for position, ciphertext in enumerate((*filters, payload)):
                cell_chains[position].update(ciphertext)

        fake_rows = self._make_fake_rows(
            det, nd, c_tuple, column_count, chains
        )

        tags = {
            label: tuple(nd.encrypt(chain.digest()) for chain in cell_chains)
            for label, cell_chains in chains.items()
        }

        all_rows = real_rows + fake_rows
        self._rng.shuffle(all_rows)  # Line 24: mix real and fake tuples

        package = EpochPackage(
            schema_name=self.schema.name,
            epoch_id=epoch_id,
            grid_spec=self.grid_spec,
            time_granularity=self.time_granularity,
            rows=all_rows,
            enc_cell_id_vector=nd.encrypt(encode_int_vector(grid.cell_id_vector())),
            enc_c_tuple_vector=nd.encrypt(encode_int_vector(c_tuple)),
            enc_cell_counts=nd.encrypt(encode_int_vector(cell_counts)),
            enc_tags=tags,
            real_count=len(real_rows),
            fake_count=len(fake_rows),
            bin_size=self.bin_size,
            max_cells_per_bin=self.max_cells_per_bin,
            enc_grid_key=nd.encrypt(grid_key),
        )
        layout_size = self.bin_size or max(max(c_tuple), 1)
        self.last_report = EncryptionReport(
            epoch_id=epoch_id,
            real_rows=len(real_rows),
            fake_rows=len(fake_rows),
            bin_size=layout_size,
            bin_count=-(-sum(c_tuple) // layout_size) if sum(c_tuple) else 0,
            metadata_bytes=package.metadata_bytes(),
        )
        return package

    # ------------------------------------------------------------------ fakes

    def _make_fake_rows(
        self,
        det: DeterministicCipher,
        nd: RandomizedCipher,
        c_tuple: list[int],
        column_count: int,
        chains: dict[int, list[HashChain]],
    ) -> list[EncryptedRow]:
        """Lines 12–15: manufacture ciphertext-secure fake tuples.

        Fake filter/payload columns are randomized garbage (``E_nd``),
        indistinguishable from real DET ciphertexts to anyone without
        the key; index keys are ``E_k(f ‖ j)`` so the enclave can
        formulate fake trapdoors.  Fakes get their own hash chain so
        integrity covers them too (a reproduction extension).
        """
        total_real = sum(c_tuple)
        if self.fake_strategy is FakeStrategy.EQUAL:
            fake_total = total_real
        else:
            if total_real == 0:
                fake_total = 0
            else:
                layout = pack_bins(
                    c_tuple,
                    bin_size=self.bin_size,
                    max_cells_per_bin=self.max_cells_per_bin,
                )
                fake_total = layout.total_fakes
        if self.pad_epoch_rows_to is not None:
            if total_real + fake_total > self.pad_epoch_rows_to:
                raise EpochError(
                    f"epoch holds {total_real + fake_total} rows, above the "
                    f"fixed epoch size {self.pad_epoch_rows_to}"
                )
            fake_total = self.pad_epoch_rows_to - total_real

        # Fake filter/payload ciphertexts must be byte-for-byte the same
        # LENGTH as real ones, or length alone would out them at rest.
        # E_nd carries 32 bytes of overhead vs DET's 16, hence the -16.
        fake_filter_body = b"\x00" * (self.schema.filter_pad_width - 16)
        fake_payload_body = b"\x00" * (self.schema.payload_pad_width - 16)

        fake_rows: list[EncryptedRow] = []
        if fake_total:
            fake_chains = chains.setdefault(
                FAKE_CHAIN_LABEL, [HashChain() for _ in range(column_count)]
            )
            for fake_id in range(1, fake_total + 1):
                filters = tuple(
                    nd.encrypt(fake_filter_body) for _ in range(column_count - 1)
                )
                payload = nd.encrypt(fake_payload_body)
                index_key = det.encrypt(fake_index_plaintext(fake_id))
                fake_rows.append(
                    EncryptedRow(filters=filters, payload=payload, index_key=index_key)
                )
                for position, ciphertext in enumerate((*filters, payload)):
                    fake_chains[position].update(ciphertext)
        return fake_rows

    # ------------------------------------------------------------------ misc

    def _check_record(self, record: tuple, epoch_id: int) -> None:
        if len(record) != len(self.schema.attributes):
            raise EpochError(
                f"record arity {len(record)} != schema arity "
                f"{len(self.schema.attributes)}"
            )
        timestamp = self.schema.time_of(record)
        if not (
            epoch_id <= timestamp < epoch_id + self.grid_spec.epoch_duration
        ):
            raise EpochError(
                f"record time {timestamp} outside epoch "
                f"[{epoch_id}, {epoch_id + self.grid_spec.epoch_duration})"
            )
