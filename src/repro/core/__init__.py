"""Concealer's core: the paper's contribution (§2–§8).

Modules, in the order the paper presents them:

- :mod:`repro.core.schema` — dataset schemas and records (relation
  ``R(L, T, O)`` and the multi-column TPC-H variants).
- :mod:`repro.core.grid` — §3's x×y grid, keyed placement hash, cell-id
  allocation, and the ``cell_id[]`` / ``c_tuple[]`` vectors.
- :mod:`repro.core.epoch` — the encrypted epoch package a data provider
  ships to a service provider (Table 2c plus encrypted vectors and
  verifiable tags).
- :mod:`repro.core.encryptor` — Algorithm 1, the data-provider-side
  epoch encryption (DET tuple encryption, fake-tuple generation, hash
  chains, permutation).
- :mod:`repro.core.binning` — §4.1 FFD/BFD bin packing with equi-sized
  padding and the Theorem 4.1 bounds.
- :mod:`repro.core.point_query` — Algorithm 2 (BPB) and its §4.3
  oblivious variant (Concealer+).
- :mod:`repro.core.range_query` — §5: multi-point BPB, eBPB, and
  winSecRange.
- :mod:`repro.core.dynamic` — §6 multi-epoch insertion and the
  ORAM-inspired cross-round query execution with rewrites.
- :mod:`repro.core.superbin` — §8 super-bins against query-workload
  frequency attacks.
- :mod:`repro.core.registry` — the R2 user registry and authentication.
- :mod:`repro.core.provider` / :mod:`repro.core.service` /
  :mod:`repro.core.client` — the Figure 1 entities (DP, SP, user).
"""

from repro.core.binning import Bin, BinLayout, pack_bins
from repro.core.client import Client, QueryResult
from repro.core.dynamic import DynamicConcealer
from repro.core.encryptor import EpochEncryptor, FakeStrategy
from repro.core.epoch import EpochPackage
from repro.core.grid import Grid, GridSpec
from repro.core.multi_index import MultiIndexDeployment
from repro.core.provider import DataProvider
from repro.core.queries import Aggregate, PointQuery, RangeQuery
from repro.core.registry import Registry, UserCredential
from repro.core.schema import (
    DatasetSchema,
    TPCH_2D_SCHEMA,
    TPCH_4D_SCHEMA,
    WIFI_OBS_SCHEMA,
    WIFI_SCHEMA,
)
from repro.core.service import ServiceProvider

__all__ = [
    "Aggregate",
    "Bin",
    "BinLayout",
    "Client",
    "DataProvider",
    "DatasetSchema",
    "DynamicConcealer",
    "EpochEncryptor",
    "EpochPackage",
    "FakeStrategy",
    "Grid",
    "GridSpec",
    "MultiIndexDeployment",
    "PointQuery",
    "QueryResult",
    "RangeQuery",
    "Registry",
    "ServiceProvider",
    "TPCH_2D_SCHEMA",
    "TPCH_4D_SCHEMA",
    "UserCredential",
    "WIFI_OBS_SCHEMA",
    "WIFI_SCHEMA",
    "pack_bins",
]
