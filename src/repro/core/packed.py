"""Columnar, bytes-backed bin layout (the vectorized hot-path unit).

A :class:`PackedBin` is one Theorem-4.1 bin flattened into contiguous
per-column byte arrays: for each storage column (filter ciphertexts,
DET payload, index key) all |b| cells are concatenated into a single
``bytes`` blob at a fixed per-column width.  The enclave hot path then
runs verify→filter→decrypt→aggregate as whole-bin batched kernel calls
(``decrypt_many``, ``batch_chain_extend``, ``numpy`` tag compare) with
no per-row Python objects in the loop.

Rows inside a packed bin sit in *canonical slot order* — for each
cell-id of the bin, counters ``1..c_tuple[cid]``, then the bin's fake
ids ascending.  That is exactly the order the scalar trapdoor fetch
returns, so ``unpack()`` (the compatibility shim) reproduces the legacy
row list byte-for-byte and packed answers are byte-identical to scalar
answers.

Every cell in a column has the same width (the schema pads plaintexts
and fakes are sized to match), so a bin's packed size is a public
function of |b| and the column widths — shipping and caching bins in
packed form leaks nothing beyond the row count the fixed-size argument
already makes public.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.storage.table import Row

_MAGIC = b"PBIN1"
_HEADER = struct.Struct("<5sIII")


@dataclass(frozen=True)
class PackedBin:
    """One bin as contiguous per-column ciphertext arrays."""

    bin_index: int
    row_count: int
    column_widths: tuple[int, ...]
    columns: tuple[bytes, ...]
    row_ids: tuple[int, ...]

    def __post_init__(self):
        if len(self.columns) != len(self.column_widths):
            raise ValueError("column/width arity mismatch")
        if len(self.row_ids) != self.row_count:
            raise ValueError("row-id/row-count mismatch")
        for width, blob in zip(self.column_widths, self.columns):
            if len(blob) != width * self.row_count:
                raise ValueError(
                    f"column blob is {len(blob)} bytes, "
                    f"want {width}*{self.row_count}"
                )

    def __len__(self) -> int:
        return self.row_count

    @property
    def nbytes(self) -> int:
        """Actual enclave-resident size: column blobs + 8B per row id."""
        return sum(len(blob) for blob in self.columns) + 8 * self.row_count

    # --------------------------------------------------------------- packing

    @classmethod
    def pack(cls, bin_index: int, rows: Sequence[Row]) -> "PackedBin":
        """Pack storage rows (canonical slot order) into columnar form.

        Raises ``ValueError`` when the rows are ragged (unequal column
        counts or widths) — callers treat that as "this bin cannot be
        packed" and stay on the scalar path.
        """
        if not rows:
            raise ValueError("cannot pack an empty bin")
        first = rows[0].columns
        widths = tuple(len(cell) for cell in first)
        for row in rows:
            if len(row.columns) != len(widths):
                raise ValueError("ragged rows: unequal column counts")
            for cell, width in zip(row.columns, widths):
                if not isinstance(cell, (bytes, bytearray)) or len(cell) != width:
                    raise ValueError("ragged rows: unequal column widths")
        columns = tuple(
            b"".join(row.columns[position] for row in rows)
            for position in range(len(widths))
        )
        return cls(
            bin_index=bin_index,
            row_count=len(rows),
            column_widths=widths,
            columns=columns,
            row_ids=tuple(row.row_id for row in rows),
        )

    def unpack(self) -> list[Row]:
        """Compatibility shim: the exact legacy row list, byte-for-byte."""
        per_column = [self.column_cells(i) for i in range(len(self.columns))]
        return [
            Row(self.row_ids[j], tuple(cells[j] for cells in per_column))
            for j in range(self.row_count)
        ]

    # --------------------------------------------------------------- slicing

    def cell(self, row: int, column: int) -> bytes:
        width = self.column_widths[column]
        blob = self.columns[column]
        return blob[row * width : (row + 1) * width]

    def column_cells(self, column: int) -> list[bytes]:
        """All cells of one column as per-row ``bytes`` slices."""
        width = self.column_widths[column]
        blob = self.columns[column]
        return [blob[j * width : (j + 1) * width] for j in range(self.row_count)]

    # ----------------------------------------------------------- wire format

    def to_bytes(self) -> bytes:
        """Self-delimiting binary encoding (ships on the shard wire)."""
        parts = [
            _HEADER.pack(_MAGIC, self.bin_index, self.row_count, len(self.columns)),
            struct.pack(f"<{len(self.column_widths)}I", *self.column_widths),
            struct.pack(f"<{self.row_count}Q", *self.row_ids),
        ]
        parts.extend(self.columns)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "PackedBin":
        try:
            magic, bin_index, row_count, column_count = _HEADER.unpack_from(blob, 0)
            if magic != _MAGIC:
                raise ValueError(f"bad magic {magic!r}")
            offset = _HEADER.size
            widths = struct.unpack_from(f"<{column_count}I", blob, offset)
            offset += 4 * column_count
            row_ids = struct.unpack_from(f"<{row_count}Q", blob, offset)
            offset += 8 * row_count
            columns = []
            for width in widths:
                span = width * row_count
                columns.append(blob[offset : offset + span])
                offset += span
            if offset != len(blob):
                raise ValueError("trailing bytes after packed bin")
        except struct.error as error:
            raise ValueError(f"truncated packed bin: {error}") from error
        return cls(
            bin_index=bin_index,
            row_count=row_count,
            column_widths=tuple(widths),
            columns=tuple(columns),
            row_ids=tuple(row_ids),
        )

    def digest(self) -> bytes:
        """Content digest for replica anti-entropy comparison."""
        return hashlib.sha256(self.to_bytes()).digest()

    # ------------------------------------------------- fault-channel helpers
    # Used by the storage/replica tamper sites so the chaos corpora
    # exercise the packed read path with the same adversary the scalar
    # path faces.  All are length-preserving per cell (corruption) or
    # whole-row (drop/duplicate) — the shapes verification must catch.

    def with_corrupted_cell(
        self, row: int, column: int, corrupt: Callable[[bytes], bytes]
    ) -> "PackedBin":
        width = self.column_widths[column]
        blob = self.columns[column]
        start = row * width
        tampered = corrupt(blob[start : start + width])
        if len(tampered) != width:
            raise ValueError("cell corruption must preserve length")
        columns = list(self.columns)
        columns[column] = blob[:start] + tampered + blob[start + width :]
        return PackedBin(
            bin_index=self.bin_index,
            row_count=self.row_count,
            column_widths=self.column_widths,
            columns=tuple(columns),
            row_ids=self.row_ids,
        )

    def without_row(self, row: int) -> "PackedBin":
        columns = tuple(
            blob[: row * width] + blob[(row + 1) * width :]
            for width, blob in zip(self.column_widths, self.columns)
        )
        return PackedBin(
            bin_index=self.bin_index,
            row_count=self.row_count - 1,
            column_widths=self.column_widths,
            columns=columns,
            row_ids=self.row_ids[:row] + self.row_ids[row + 1 :],
        )

    def with_duplicated_row(self, row: int) -> "PackedBin":
        columns = tuple(
            blob + blob[row * width : (row + 1) * width]
            for width, blob in zip(self.column_widths, self.columns)
        )
        return PackedBin(
            bin_index=self.bin_index,
            row_count=self.row_count + 1,
            column_widths=self.column_widths,
            columns=columns,
            row_ids=self.row_ids + (self.row_ids[row],),
        )
