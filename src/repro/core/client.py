"""The user / data consumer U (Figure 1, bottom).

A registered user formulates queries (Phase 2), authenticates to the
enclave, and decrypts answers (Phase 4).  The client wraps the
challenge-response dance and the two application families:

- **aggregate** queries (Q1–Q3): occupancy counts, top-k locations —
  over anyone's data, gated by ``aggregate_allowed``;
- **individualized** queries (Q4–Q5): over the user's *own* device id
  only — the enclave authorizes against the registry entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.queries import Aggregate, PointQuery, Predicate, QueryStats, RangeQuery
from repro.core.registry import Registry, UserCredential, unseal_answer
from repro.core.service import ServiceProvider
from repro.exceptions import QueryError


@dataclass
class QueryResult:
    """What the user ends up with: the answer plus execution stats."""

    answer: object
    stats: QueryStats


class Client:
    """A registered user of one service provider."""

    def __init__(self, service: ServiceProvider, credential: UserCredential):
        self.service = service
        self.credential = credential

    # ----------------------------------------------------------- authenticate

    def _login(self):
        """Challenge-response authentication; returns the registry entry."""
        challenge = self.service.challenge()
        response = self.credential.answer_challenge(challenge)
        return self.service.authenticate(self.credential, challenge, response)

    # ------------------------------------------------------------- aggregate

    def point_count(self, index_values: tuple, timestamp: int) -> QueryResult:
        """Q1 variant: count observations at one (values, time) point."""
        entry = self._login()
        Registry.authorize_aggregate(entry)
        query = PointQuery(
            index_values=index_values,
            timestamp=timestamp,
            aggregate=Aggregate.COUNT,
        )
        sealed, stats = self.service.execute_point_sealed(query, entry)
        answer = unseal_answer(self.credential.secret, sealed)
        return QueryResult(answer=answer, stats=stats)

    def range_aggregate(
        self,
        index_values: tuple,
        time_start: int,
        time_end: int,
        aggregate: Aggregate = Aggregate.COUNT,
        target: str | None = None,
        k: int = 1,
        method: str = "ebpb",
        predicate: Predicate | None = None,
    ) -> QueryResult:
        """Q1–Q3: aggregate over a time range."""
        entry = self._login()
        Registry.authorize_aggregate(entry)
        query = RangeQuery(
            index_values=index_values,
            time_start=time_start,
            time_end=time_end,
            aggregate=aggregate,
            target=target,
            k=k,
            predicate=predicate,
        )
        sealed, stats = self.service.execute_range_sealed(query, entry, method=method)
        answer = unseal_answer(self.credential.secret, sealed)
        return QueryResult(answer=answer, stats=stats)

    # --------------------------------------------------------- individualized

    def my_locations(
        self,
        location_domain: tuple,
        time_start: int,
        time_end: int,
        method: str = "winsecrange",
    ) -> QueryResult:
        """Q4: which locations saw *my* device during the range.

        The enclave authorizes the observation value against the
        registry entry's device id, so a user can never target another
        device.
        """
        entry = self._login()
        if not entry.device_id:
            raise QueryError(
                f"user {entry.user_id!r} has no registered device id"
            )
        Registry.authorize_individualized(entry, entry.device_id)
        schema = self.service.schema
        observation_group = None
        for group in schema.filter_groups:
            if schema.time_attribute not in group and "observation" in group and len(group) == 1:
                observation_group = group
                break
        if observation_group is None:
            raise QueryError(
                f"schema {schema.name!r} has no observation filter group"
            )
        query = RangeQuery(
            index_values=(location_domain,),
            time_start=time_start,
            time_end=time_end,
            aggregate=Aggregate.COLLECT,
            predicate=Predicate(group=observation_group, values=(entry.device_id,)),
        )
        sealed, stats = self.service.execute_range_sealed(query, entry, method=method)
        answer = unseal_answer(self.credential.secret, sealed)
        position = schema.position("location")
        locations = sorted({record[position] for record in answer})
        return QueryResult(answer=locations, stats=stats)

    def my_visits_count(
        self,
        location: str,
        location_domain: tuple,
        time_start: int,
        time_end: int,
        method: str = "winsecrange",
    ) -> QueryResult:
        """Q5: how often *my* device was observed at one location."""
        entry = self._login()
        if not entry.device_id:
            raise QueryError(
                f"user {entry.user_id!r} has no registered device id"
            )
        Registry.authorize_individualized(entry, entry.device_id)
        schema = self.service.schema
        combined_group = None
        for group in schema.filter_groups:
            if set(group) == {"location", "observation"}:
                combined_group = group
                break
        if combined_group is None:
            raise QueryError(
                f"schema {schema.name!r} has no (location, observation) group"
            )
        values = tuple(
            location if attr == "location" else entry.device_id
            for attr in combined_group
        )
        query = RangeQuery(
            index_values=(location,),
            time_start=time_start,
            time_end=time_end,
            aggregate=Aggregate.COUNT,
            predicate=Predicate(group=combined_group, values=values),
        )
        sealed, stats = self.service.execute_range_sealed(query, entry, method=method)
        answer = unseal_answer(self.credential.secret, sealed)
        return QueryResult(answer=answer, stats=stats)
