"""The service provider SP (Figure 1, right).

An *untrusted* host that stores the encrypted epochs in its DBMS and
runs the trusted query logic inside its enclave.  The service provider
itself only ever sees ciphertext rows, opaque trapdoors, and the
storage access log — everything the leakage analysis treats as the
adversary's view.

Query flow (Phase 3):

1. the user authenticates against the enclave-held registry
   (challenge-response);
2. the enclave authorizes the query (individualized queries only over
   the user's own device id);
3. the enclave builds/loads the epoch context and executes the chosen
   method (BPB / eBPB / winSecRange);
4. the answer is returned sealed for the user.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro import telemetry
from repro.batching.cache import BinCache
from repro.batching.executor import ParallelFetchExecutor
from repro.batching.fetcher import BatchOverlay, BinFetcher
from repro.batching.planner import BatchPlan, QueryBatcher
from repro.core.context import EpochContext
from repro.core.epoch import EpochPackage
from repro.core.point_query import BPBExecutor
from repro.core.queries import PointQuery, QueryStats, RangeQuery
from repro.core.range_query import RangeExecutor
from repro.core.registry import Registry, RegistryEntry, UserCredential
from repro.core.schema import DatasetSchema
from repro.core.trapdoor_table import TrapdoorTable
from repro.crypto.keys import derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.exceptions import (
    AuthenticationError,
    EpochError,
    IntegrityViolation,
    QueryError,
)
from repro.faults.clock import RetryPolicy, SystemClock, VirtualClock
from repro.faults.quarantine import QuarantineLog
from repro.replication.admission import AdmissionController
from repro.replication.deadline import Deadline
from repro.storage.engine import StorageEngine

RANGE_METHODS = ("multipoint", "ebpb", "winsecrange", "tree", "auto")


def _record_query(
    kind: str, method: str, stats: QueryStats, seconds: float | None
) -> None:
    """Fold one finished query's stats into the ambient registry.

    Fetch-side volumes (trapdoors, rows fetched, bins) are tagged
    public-size — volume hiding promises they depend only on the query
    shape, and the leakage auditor holds the registry to that promise.
    Match/decrypt counts are the query's *answer* volume and stay
    data-dependent, as do wall-clock durations (timing side channel).
    ``seconds=None`` skips the latency histogram: batch members have no
    individual wall-clock; the batch records one duration for all.
    """
    telemetry.counter(
        "concealer_queries_total",
        "queries executed, by kind and method",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("kind", "method"),
    ).labels(kind=kind, method=method).inc()
    telemetry.counter(
        "concealer_bins_fetched_total",
        "bins retrieved from storage",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("kind",),
    ).labels(kind=kind).inc(stats.bins_fetched)
    telemetry.counter(
        "concealer_trapdoors_total",
        "trapdoor ciphertexts submitted to the DBMS",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("kind",),
    ).labels(kind=kind).inc(stats.trapdoors_generated)
    telemetry.counter(
        "concealer_rows_fetched_total",
        "encrypted rows pulled into the enclave",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("kind",),
    ).labels(kind=kind).inc(stats.rows_fetched)
    telemetry.counter(
        "concealer_rows_matched_total",
        "rows matching the query predicate (enclave-private)",
        labels=("kind",),
    ).labels(kind=kind).inc(stats.rows_matched)
    telemetry.counter(
        "concealer_rows_decrypted_total",
        "answer payloads decrypted (enclave-private)",
        labels=("kind",),
    ).labels(kind=kind).inc(stats.rows_decrypted)
    if stats.degraded:
        telemetry.counter(
            "concealer_queries_degraded_total",
            "queries answered below the healthy-replica threshold",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("kind",),
        ).labels(kind=kind).inc()
    if stats.failovers:
        telemetry.counter(
            "concealer_query_failovers_total",
            "replica failovers absorbed while serving queries",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("kind",),
        ).labels(kind=kind).inc(stats.failovers)
    if stats.cache_hits:
        telemetry.counter(
            "concealer_query_cache_hits_total",
            "whole-bin fetches served from the enclave bin cache/overlay",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("kind",),
        ).labels(kind=kind).inc(stats.cache_hits)
    if stats.cache_misses:
        telemetry.counter(
            "concealer_query_cache_misses_total",
            "whole-bin fetches that missed the enclave bin cache",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("kind",),
        ).labels(kind=kind).inc(stats.cache_misses)
    if seconds is not None:
        # The exemplar links each latency bucket to the last trace that
        # landed in it — "what does a p99 query look like?" becomes a
        # trace lookup.  The histogram stays data-dependent (timing),
        # and exemplars never enter the auditor's public view.
        telemetry.histogram(
            "concealer_query_seconds",
            "end-to-end query latency (timing is a side channel: never public)",
            labels=("kind",),
        ).labels(kind=kind).observe(
            seconds, trace_id=telemetry.current_trace_id()
        )


def _record_batch(plan: BatchPlan, fetch_stats: QueryStats, seconds: float) -> None:
    """Batch-level accounting: size, dedup, and the prefetch volumes.

    Batch size and bin counts are part of the request *shape* (the host
    sees how many queries arrive and which bins are fetched), so the
    counters are public-size; the wall clock stays a side channel.
    """
    telemetry.counter(
        "concealer_batches_total",
        "query batches executed",
        secrecy=telemetry.PUBLIC_SIZE,
    ).inc()
    telemetry.counter(
        "concealer_batch_queries_total",
        "queries executed inside batches",
        secrecy=telemetry.PUBLIC_SIZE,
    ).inc(len(plan.items))
    telemetry.counter(
        "concealer_batch_bin_references_total",
        "whole-bin references named by batched queries (pre-dedup)",
        secrecy=telemetry.PUBLIC_SIZE,
    ).inc(plan.bin_references)
    telemetry.counter(
        "concealer_batch_unique_bins_total",
        "deduplicated whole-bin fetch units executed for batches",
        secrecy=telemetry.PUBLIC_SIZE,
    ).inc(len(plan.units))
    _record_query("batch", "prefetch", fetch_stats, seconds)


@dataclass
class ServiceConfig:
    """Service-side execution knobs."""

    oblivious: bool = False          # Concealer vs Concealer+ (§4.3)
    verify: bool = False             # hash-chain verification (Exp 4)
    window_subintervals: int = 8     # winSecRange λ, in subintervals
    super_bin_count: int | None = None  # §8 workload defence (point queries)
    btree_order: int = 64
    table_prefix: str = ""           # distinguishes co-hosted indexes (§9.1)
    # Retry policy for transient storage faults (capped exponential
    # backoff; see repro.faults.clock).  Queries and per-row ingestion
    # inserts are retried; integrity violations and crashes are not.
    retry_attempts: int = 4
    retry_base_delay: float = 0.01
    retry_max_delay: float = 1.0
    # Backoff jitter fraction in [0, 1]; the RNG is threaded in by the
    # caller (ServiceProvider's ``retry_rng``) so runs stay replayable.
    retry_jitter: float = 0.0
    # Per-request deadline budget in seconds (None = unbounded).  The
    # deadline is minted at the service edge and checked at every
    # fetch, replica attempt, and retry-backoff decision.
    deadline_seconds: float | None = None
    # Admission control: at most max_inflight requests execute at once
    # plus admission_queue waiting; the rest shed with ServiceOverloaded.
    max_inflight: int = 64
    admission_queue: int = 128
    # repro.batching: capacity (in whole bins) of the enclave-resident
    # verified-bin cache; 0 disables it.  Off by default — the cache
    # changes per-query fetch volumes (repeat queries stop touching
    # storage), which volume-hiding analyses reason about, so turning
    # it on is an explicit deployment decision.  Ignored under
    # oblivious execution (§4.3 trace identity forbids reuse).
    bin_cache_bins: int = 0
    # Bounded worker pool for batch prefetches; 1 = fully sequential
    # (what the chaos harness uses so fault schedules replay).
    batch_workers: int = 4
    # Capacity (in memoized trapdoors) of the enclave-resident
    # TrapdoorTable; 0 disables it.  On by default: unlike the bin
    # cache it never changes *storage* fetch volumes — every trapdoor
    # is still submitted — it only skips re-deriving ciphertexts the
    # host has already seen as index-lookup keys, so the observable
    # view is unchanged (see DESIGN.md §12).  Ignored under oblivious
    # execution (§4.3 trace identity forbids memoization).
    trapdoor_table_slots: int = 8192
    # Columnar whole-bin fetches: ingest stores each epoch's bins as a
    # packed (contiguous-bytes) sidecar, and point/multipoint queries
    # consume them whole so verify→filter→decrypt run as batched
    # kernel calls.  Answers are byte-identical to the scalar path;
    # the flag exists for A/B benchmarking and as an escape hatch.
    # Forced off under oblivious execution (trace identity needs the
    # scalar trapdoor schedule).
    packed_bins: bool = True
    # Hierarchical aggregate-tree sidecar: ingest stores each epoch's
    # sealed k-ary aggregate tree and the auto planner routes eligible
    # long-window COUNT/SUM/MIN/MAX to it (O(log range) node fetches
    # instead of O(range) bins).  The planner gate below is a pure
    # function of public inputs; the tree is forced off under oblivious
    # execution (trace identity).
    agg_tree: bool = True
    # Minimum fully-covered leaf buckets before the auto planner
    # prefers the tree: shorter windows fetch so few bins that the
    # node cover would not pay for itself.
    agg_tree_min_buckets: int = 8


class ServiceProvider:
    """Hosts the DBMS and the enclave; executes queries for users."""

    def __init__(
        self,
        schema: DatasetSchema,
        config: ServiceConfig | None = None,
        engine: StorageEngine | None = None,
        enclave: Enclave | None = None,
        clock: SystemClock | VirtualClock | None = None,
        retry_rng=None,
    ):
        """``engine`` / ``enclave`` may be shared between the services
        hosting several indexes of one relation (§9.1 builds two TPC-H
        indexes and three WiFi indexes on one machine).  ``clock`` is
        injectable so tests exercise retry backoff without sleeping;
        ``retry_rng`` (a seeded ``random.Random``) drives backoff
        jitter when ``config.retry_jitter`` is non-zero."""
        self.schema = schema
        self.config = config or ServiceConfig()
        self.engine = engine if engine is not None else StorageEngine(
            btree_order=self.config.btree_order
        )
        self.enclave = enclave if enclave is not None else Enclave(EnclaveConfig())
        self.clock = clock if clock is not None else SystemClock()
        self.retry = RetryPolicy(
            attempts=self.config.retry_attempts,
            base_delay=self.config.retry_base_delay,
            max_delay=self.config.retry_max_delay,
            clock=self.clock,
            jitter=self.config.retry_jitter,
            rng=retry_rng,
        )
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.admission_queue,
        )
        # Cells with standing hash-chain violations; queries touching
        # them fail fast with a structured IntegrityViolation.
        self.quarantine = QuarantineLog()
        self._packages: dict[int, EpochPackage] = {}
        self._contexts: dict[int, EpochContext] = {}
        self._registry: Registry | None = None
        # Outstanding authentication challenges: each is single-use, so a
        # network adversary replaying a captured (challenge, response)
        # pair is rejected (§1.2(ii) replay concern, enclave-side).
        self._open_challenges: set[bytes] = set()
        # Whole-bin cache + shared fetch path (repro.batching).  The
        # cache is enclave-resident (EPC-charged) and generation-fenced
        # against the engine's begin/end_rewrite; oblivious execution
        # never caches, so the cache is not even built.
        self.bin_cache: BinCache | None = None
        if self.config.bin_cache_bins > 0 and not self.config.oblivious:
            self.bin_cache = BinCache(
                self.enclave, self.engine, capacity_bins=self.config.bin_cache_bins
            )
        # Trapdoor memo table (repro.core.trapdoor_table): skips
        # re-deriving DET trapdoors for slots already issued, fenced on
        # both the engine rewrite generation and the enclave key
        # generation.  Never built under oblivious execution.
        self.trapdoor_table: TrapdoorTable | None = None
        if self.config.trapdoor_table_slots > 0 and not self.config.oblivious:
            self.trapdoor_table = TrapdoorTable(
                self.enclave, self.engine,
                capacity=self.config.trapdoor_table_slots,
            )
        self._fetcher = BinFetcher(
            self.engine,
            oblivious=self.config.oblivious,
            verify=self.config.verify,
            cache=self.bin_cache,
            packed=self.config.packed_bins,
        )
        # One persistent prefetch pool per service: batches reuse its
        # worker threads instead of paying thread spawn per request.
        self._prefetch_executor = ParallelFetchExecutor(
            self._fetcher, workers=self.config.batch_workers
        )
        self._point_executor = BPBExecutor(
            self.engine,
            oblivious=self.config.oblivious,
            verify=self.config.verify,
            super_bin_count=self.config.super_bin_count,
            quarantine=self.quarantine,
            fetcher=self._fetcher,
        )
        self._range_executor = RangeExecutor(
            self.engine,
            oblivious=self.config.oblivious,
            verify=self.config.verify,
            window_subintervals=self.config.window_subintervals,
            fetcher=self._fetcher,
        )

    # -------------------------------------------------------------- ingestion

    def install_registry(self, sealed_registry: bytes) -> None:
        """Receive the encrypted registry; the enclave opens it."""
        self.enclave.require_provisioned()
        cipher = RandomizedCipher(derive_epoch_key(self.enclave.master_key, 0))
        self._registry = Registry.unseal(sealed_registry, cipher)

    def ingest_epoch(self, package: EpochPackage) -> None:
        """Phase 1 landing: insert the epoch's rows; DBMS builds the index."""
        if package.schema_name != self.schema.name:
            raise EpochError(
                f"package schema {package.schema_name!r} does not match "
                f"service schema {self.schema.name!r}"
            )
        if package.epoch_id in self._packages:
            raise EpochError(f"epoch {package.epoch_id} already ingested")
        table = self._table_name(package.epoch_id)
        self.engine.create_table(table, package.column_names)
        self.engine.create_index(table, "index_key")
        try:
            for row in package.rows:
                # Transient write faults raise before applying, so the
                # per-row retry never double-inserts.
                self.retry.call(lambda r=row: self.engine.insert(table, r.as_columns()))
        except BaseException:
            # All-or-nothing landing: a half-ingested epoch must not be
            # queryable (its bins would silently under-count).
            self.engine.drop_table(table)
            raise
        # Packed sidecar lands *after* the rows: every insert above
        # invalidates it, and a failed landing must not leave one
        # behind.  Purely derived data — engines without the columnar
        # layout (or packages without packed bins) just skip it.
        store = getattr(self.engine, "store_packed_bins", None)
        if (
            self.config.packed_bins
            and not self.config.oblivious
            and store is not None
            and package.packed_bins
        ):
            store(table, package.packed_bins)
        # Aggregate-tree sidecar, same contract as the packed bins:
        # derived data, landed after the rows so a failed landing (or
        # any later mutation) can never leave a live tree behind.
        store_tree = getattr(self.engine, "store_agg_tree", None)
        if (
            self.config.agg_tree
            and not self.config.oblivious
            and store_tree is not None
            and getattr(package, "agg_tree", None) is not None
        ):
            store_tree(table, package.agg_tree)
        self._packages[package.epoch_id] = package

    def ingested_epochs(self) -> list[int]:
        """Epoch ids landed so far, sorted."""
        return sorted(self._packages)

    def evict_epoch(self, epoch_id: int) -> bool:
        """Drop one landed epoch entirely (table, package, context).

        The sharded two-phase ingest uses this to roll back shards that
        already landed an epoch when a later shard failed — a fleet
        must never serve an epoch only some shards hold, or range
        queries would silently under-count.  Returns whether anything
        was evicted.  Cached bins for the epoch are flushed via the
        engine rebind (the cache is fenced on table identity, not
        epoch, so a partial flush is not expressible).
        """
        evicted = epoch_id in self._packages
        table = self._table_name(epoch_id)
        if table in self.engine.table_names():
            self.engine.drop_table(table)
            evicted = True
        self._packages.pop(epoch_id, None)
        self._contexts.pop(epoch_id, None)
        if evicted and self.bin_cache is not None:
            self.bin_cache.rebind_engine(self.engine)
        return evicted

    # ------------------------------------------------------------ epoch state

    def context_for(self, epoch_id: int) -> EpochContext:
        """Enclave-side lazy construction of the epoch context (STEP 0)."""
        if epoch_id not in self._contexts:
            package = self._packages.get(epoch_id)
            if package is None:
                raise EpochError(f"epoch {epoch_id} was never ingested")
            self._contexts[epoch_id] = EpochContext(
                self.enclave, package, self.schema,
                table_name=self._table_name(epoch_id),
                trapdoor_table=self.trapdoor_table,
            )
        return self._contexts[epoch_id]

    # -------------------------------------------------------------- recovery

    def adopt_enclave(self, enclave: Enclave) -> None:
        """Install a replacement enclave after a crash.

        A killed enclave loses every sealed byte (keys, registry,
        decrypted metadata), so the cached per-epoch contexts and the
        unsealed registry are discarded; the replacement must be
        re-attested and re-provisioned by the data provider (see
        :class:`repro.faults.recovery.RecoveryCoordinator`), after which
        contexts rebuild lazily from the stored epoch packages.
        """
        self.enclave = enclave
        self._contexts.clear()
        self._registry = None
        if self.bin_cache is not None:
            # The dead instance's EPC (and every cached bin in it) was
            # wiped by hardware; drop entries without releasing charge.
            self.bin_cache.rebind_enclave(enclave)
        if self.trapdoor_table is not None:
            self.trapdoor_table.rebind_enclave(enclave)

    def adopt_engine(self, engine: StorageEngine) -> None:
        """Swap in a storage engine restored from a checkpoint."""
        self.engine = engine
        self._point_executor.engine = engine
        self._range_executor.engine = engine
        self._fetcher.engine = engine
        if self.bin_cache is not None:
            # Restored storage may not match what was cached; flush.
            self.bin_cache.rebind_engine(engine)
        if self.trapdoor_table is not None:
            self.trapdoor_table.rebind_engine(engine)

    # ---------------------------------------------------------- authentication

    def challenge(self) -> bytes:
        """A fresh, single-use authentication challenge for a user."""
        challenge = os.urandom(16)
        self._open_challenges.add(challenge)
        return challenge

    def authenticate(
        self, credential: UserCredential, challenge: bytes, response: bytes
    ) -> RegistryEntry:
        """Verify a user against the enclave-held registry.

        The challenge must be one this service issued and not yet
        consumed — replaying a captured (challenge, response) pair
        fails even though the HMAC verifies.
        """
        if self._registry is None:
            raise AuthenticationError("no registry installed at this service")
        if challenge not in self._open_challenges:
            raise AuthenticationError(
                "unknown or already-used challenge (replay rejected)"
            )
        self._open_challenges.discard(challenge)
        return self._registry.authenticate(credential.user_id, challenge, response)

    @property
    def registry(self) -> Registry:
        """The enclave-held registry; raises until one is installed."""
        if self._registry is None:
            raise AuthenticationError("no registry installed at this service")
        return self._registry

    # --------------------------------------------------------------- queries

    def execute_point(
        self, query: PointQuery, epoch_id: int | None = None
    ) -> tuple[object, QueryStats]:
        """Run a point query (Algorithm 2) inside the enclave."""
        with self.admission.admit("point"):
            eid = epoch_id if epoch_id is not None else self._epoch_of(query.timestamp)
            context = self.context_for(eid)
            deadline = self._new_deadline()
            with telemetry.span("service.point_query", epoch=eid) as query_span:
                self.engine.access_log.begin_query()
                try:
                    answer, stats = self._execute_resilient(
                        lambda: self._point_executor.execute(
                            query, context, deadline=deadline
                        ),
                        deadline=deadline,
                    )
                finally:
                    self.engine.access_log.end_query()
        _record_query("point", "bpb", stats, query_span.duration)
        return answer, stats

    def execute_range(
        self,
        query: RangeQuery,
        method: str = "ebpb",
        epoch_id: int | None = None,
    ) -> tuple[object, QueryStats]:
        """Run a range query with the chosen §5 method."""
        if method not in RANGE_METHODS:
            raise QueryError(
                f"unknown range method {method!r}; choose from {RANGE_METHODS}"
            )
        eid = epoch_id if epoch_id is not None else self._epoch_of(query.time_start)
        if epoch_id is None and self._epoch_of(query.time_end) != eid:
            raise QueryError(
                "range spans multiple epochs; use DynamicConcealer (§6)"
            )
        with self.admission.admit("range"):
            context = self.context_for(eid)
            if method == "auto":
                method = self.choose_range_method(query, context)
            deadline = self._new_deadline()
            executor = self._range_executor
            with telemetry.span(
                "service.range_query", epoch=eid, method=method
            ) as query_span:
                self.engine.access_log.begin_query()
                try:
                    if method == "multipoint":
                        run = lambda: executor.execute_multipoint(
                            query, context, deadline=deadline
                        )
                    elif method == "ebpb":
                        run = lambda: executor.execute_ebpb(
                            query, context, deadline=deadline
                        )
                    elif method == "tree":
                        run = lambda: executor.execute_tree(
                            query, context, deadline=deadline
                        )
                    else:
                        run = lambda: executor.execute_winsecrange(
                            query, context, deadline=deadline
                        )
                    answer, stats = self._execute_resilient(run, deadline=deadline)
                finally:
                    self.engine.access_log.end_query()
        _record_query("range", method, stats, query_span.duration)
        return answer, stats

    def execute_batch(
        self, queries, epoch_id: int | None = None
    ) -> list[tuple[object, QueryStats]]:
        """Execute a batch of queries over one shared, deduplicated fetch.

        ``queries`` mixes :class:`PointQuery`, :class:`RangeQuery`
        (default eBPB), and ``(RangeQuery, method)`` pairs.  The batch
        planner resolves every query's whole-bin set and deduplicates
        it into one fetch plan; the parallel fetch executor retrieves
        each unique bin exactly once (verified before reuse), and every
        query then runs through its normal §5 executor against the
        shared overlay — answers are byte-identical to running the
        queries sequentially, while bins overlapping across the batch
        are fetched once instead of once per query.

        Admission charges the batch as a single request; one deadline
        budget covers planning, prefetch, and every member's execution.
        Returns ``[(answer, stats), ...]`` in input order.
        """
        items = list(queries)
        if not items:
            return []
        with self.admission.admit("batch"):
            deadline = self._new_deadline()
            plan = QueryBatcher(self).plan(items, epoch_id=epoch_id)
            with telemetry.span(
                "service.batch",
                queries=len(plan.items),
                unique_bins=len(plan.units),
                references=plan.bin_references,
            ) as batch_span:
                self.engine.access_log.begin_query()
                try:
                    fetch_stats, results = self._execute_resilient(
                        lambda: self._run_batch(plan, deadline),
                        deadline=deadline,
                    )
                finally:
                    self.engine.access_log.end_query()
        _record_batch(plan, fetch_stats, batch_span.duration)
        for planned, (answer, stats) in zip(plan.items, results):
            _record_query(planned.kind, planned.method, stats, None)
        return results

    def _run_batch(self, plan: BatchPlan, deadline: Deadline | None):
        """One attempt at a planned batch (read-only, so retry-safe).

        A retry after a transient fault rebuilds the overlay from
        scratch; with the bin cache enabled the bins verified before
        the fault are served from it, so retries converge quickly.
        """
        overlay = BatchOverlay()
        fetch_stats = self._prefetch_executor.prefetch(
            plan.units, overlay, deadline=deadline
        )
        results: list[tuple[object, QueryStats]] = []
        for item in plan.items:
            context = self.context_for(item.epoch_id)
            shared_overlay = overlay if item.shared else None
            if item.kind == "point":
                results.append(
                    self._point_executor.execute(
                        item.query, context,
                        deadline=deadline, overlay=shared_overlay,
                    )
                )
            elif item.method == "multipoint":
                results.append(
                    self._range_executor.execute_multipoint(
                        item.query, context,
                        deadline=deadline, overlay=shared_overlay,
                    )
                )
            elif item.method == "ebpb":
                results.append(
                    self._range_executor.execute_ebpb(
                        item.query, context, deadline=deadline
                    )
                )
            elif item.method == "tree":
                results.append(
                    self._range_executor.execute_tree(
                        item.query, context,
                        deadline=deadline, overlay=shared_overlay,
                    )
                )
            else:
                results.append(
                    self._range_executor.execute_winsecrange(
                        item.query, context, deadline=deadline
                    )
                )
        return fetch_stats, results

    def _new_deadline(self) -> Deadline | None:
        """Mint this request's deadline budget (None = unbounded)."""
        if self.config.deadline_seconds is None:
            return None
        return Deadline.after(self.clock, self.config.deadline_seconds)

    def _execute_resilient(self, run, deadline: Deadline | None = None):
        """Retry transient storage faults; quarantine integrity failures.

        Queries are read-only, so re-running the executor after a
        transient fault is safe.  An :class:`IntegrityViolation` is
        *permanent*: its cell is quarantined and the structured report
        filed before the violation propagates to the caller.  The
        deadline gates every backoff sleep: a request whose budget is
        spent fails with :class:`DeadlineExceeded` instead of retrying.
        """
        try:
            return self.retry.call(run, deadline=deadline)
        except IntegrityViolation as violation:
            self.quarantine.record(violation)
            raise

    # ------------------------------------------------------- sealed answers

    def execute_point_sealed(
        self, query: PointQuery, entry: RegistryEntry, epoch_id: int | None = None
    ) -> tuple[bytes, QueryStats]:
        """Point query whose answer leaves the enclave sealed for the user.

        Phase 3's final step: the host relays an opaque authenticated
        blob it can neither read nor substitute; only the user's
        registry secret opens it (Phase 4).
        """
        from repro.core.registry import seal_answer

        answer, stats = self.execute_point(query, epoch_id=epoch_id)
        return seal_answer(entry.secret, answer), stats

    def execute_range_sealed(
        self,
        query: RangeQuery,
        entry: RegistryEntry,
        method: str = "ebpb",
        epoch_id: int | None = None,
    ) -> tuple[bytes, QueryStats]:
        """Range query with a sealed answer (see
        :meth:`execute_point_sealed`)."""
        from repro.core.registry import seal_answer

        answer, stats = self.execute_range(query, method=method, epoch_id=epoch_id)
        return seal_answer(entry.secret, answer), stats

    def execute_batch_sealed(
        self, queries, entry: RegistryEntry, epoch_id: int | None = None
    ) -> list[tuple[bytes, QueryStats]]:
        """Batched execution with every answer sealed for one user.

        The whole batch must belong to a single authenticated user —
        answers are sealed under that user's registry secret, exactly
        as :meth:`execute_point_sealed` does per query.
        """
        from repro.core.registry import seal_answer

        results = self.execute_batch(queries, epoch_id=epoch_id)
        return [
            (seal_answer(entry.secret, answer), stats)
            for answer, stats in results
        ]

    def choose_range_method(self, query: RangeQuery, context) -> str:
        """Pick a §5 method from the query's *public* shape.

        Uses only L_s-grade information (candidate-combination count,
        covered subinterval span, grid geometry, aggregate kind, tree
        geometry from the epoch metadata) so the choice itself leaks
        nothing beyond the query shape the adversary observes anyway:

        - decomposable aggregates over long windows → the aggregate
          tree (O(log range) sealed nodes instead of O(range) bins);
        - queries sweeping most of the value domain fetch whole time
          slices regardless of method → winSecRange (also the
          strongest security);
        - selective queries → eBPB (tightest fetch volume);
        - tiny spans (≤ one subinterval) → multipoint, which fetches a
          single point-query bin.

        Every decision is recorded in a public-size counter: the
        leakage auditor holds the planner to its publicness claim.
        """
        method = self._choose_range_method(query, context)
        telemetry.counter(
            "concealer_planner_decisions_total",
            "auto-planner range-method decisions, by chosen method",
            secrecy=telemetry.PUBLIC_SIZE,
            labels=("method",),
        ).labels(method=method).inc()
        return method

    def tree_enabled_for(self, query: RangeQuery, context) -> bool:
        """Whether the auto planner may route this query to the tree.

        Pure function of public inputs: the service config, the query
        *shape* (aggregate kind, target, candidate count, time span),
        the epoch geometry, and the tree's public directory header
        (fanout/leaf count — identical for every cell by construction).
        Data values are never consulted, so the planner's choice leaks
        nothing the storage access log does not already show.
        """
        if not self.config.agg_tree or self.config.oblivious:
            return False
        if not RangeExecutor.tree_eligible(query, self.schema):
            return False
        fetch_meta = getattr(self.engine, "fetch_agg_tree_meta", None)
        if fetch_meta is None:
            return False
        meta = fetch_meta(context.table_name)
        if meta is None:
            return False
        from repro.core.aggtree import decompose_range

        span = decompose_range(
            context.epoch_id,
            context.grid.spec.epoch_duration,
            meta.leaf_count,
            query.time_start,
            query.time_end,
        )
        return span.full_buckets >= self.config.agg_tree_min_buckets

    def _choose_range_method(self, query: RangeQuery, context) -> str:
        if self.tree_enabled_for(query, context):
            return "tree"
        combos = len(query.candidate_combinations())
        span = len(
            context.grid.time_buckets_for_range(query.time_start, query.time_end)
        )
        non_time_columns = (
            context.grid.spec.total_cells // context.grid.spec.time_buckets
        )
        if combos >= max(2, non_time_columns // 2):
            return "winsecrange"
        if span <= 1:
            return "multipoint"
        return "ebpb"

    def _table_name(self, epoch_id: int) -> str:
        """Storage table hosting one epoch of this index."""
        return f"{self.config.table_prefix}epoch_{epoch_id}"

    def _epoch_of(self, timestamp: int) -> int:
        """Map a timestamp to an ingested epoch id."""
        self.enclave.require_provisioned()
        return self.enclave.key_schedule.epoch_id_for_time(timestamp)
