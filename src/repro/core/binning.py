"""Bin packing over cell-ids (§4.1) with equi-sized padding.

The unit of retrieval in Concealer is the *bin*: a fixed-size group of
cell-ids whose rows are always fetched together, which is what hides
output size.  Bins are built once, inside the enclave, by running
First-Fit-Decreasing (or Best-Fit-Decreasing) over the ``c_tuple[]``
populations with bin capacity ``|b| = max`` (the largest cell-id
population).  FFD/BFD guarantee every bin except at most one is at
least half-full, which yields Theorem 4.1's bounds:

- at most ``2n/|b|`` bins, and
- at most ``n + |b|/2`` fake tuples

for ``n`` real tuples.  Each bin is padded to exactly ``|b|`` rows with
fake tuples drawn from **disjoint** fake-id ranges — Example 4.1 shows
why sharing fake ids between bins would leak.

The same function is run by the data provider (to know how many fakes
to manufacture, fake strategy (ii)) and by the enclave (STEP 0 of
Algorithm 2); both must produce identical layouts, so packing is fully
deterministic: ties break on cell-id.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import BinningError


@dataclass(frozen=True)
class Bin:
    """One fixed-size retrieval unit.

    ``fake_id_range`` is the inclusive 1-based ``(lo, hi)`` range of
    fake-tuple ids padding this bin, or ``None`` when the bin is full
    of real tuples.  Ranges are disjoint across bins (Example 4.1).
    """

    index: int
    cell_ids: tuple[int, ...]
    real_tuples: int
    capacity: int
    fake_id_range: tuple[int, int] | None

    @property
    def fake_count(self) -> int:
        """How many fake tuples pad this bin."""
        if self.fake_id_range is None:
            return 0
        lo, hi = self.fake_id_range
        return hi - lo + 1

    @property
    def total_tuples(self) -> int:
        """Real plus fake tuples — always the bin capacity."""
        return self.real_tuples + self.fake_count

    def fake_ids(self) -> list[int]:
        """The fake-tuple ids this bin retrieves."""
        if self.fake_id_range is None:
            return []
        lo, hi = self.fake_id_range
        return list(range(lo, hi + 1))


@dataclass
class BinLayout:
    """The complete packing of an epoch's cell-ids into bins."""

    bins: list[Bin]
    bin_size: int
    total_real: int
    total_fakes: int
    algorithm: str

    def bin_of_cell_id(self, cell_id: int) -> Bin:
        """STEP 2 of Algorithm 2: the bin containing a cell-id."""
        for candidate in self.bins:
            if cell_id in candidate.cell_ids:
                return candidate
        raise BinningError(f"no bin contains cell-id {cell_id}")

    def bins_of_cell_ids(self, cell_ids: Sequence[int]) -> list[Bin]:
        """Distinct bins covering several cell-ids (order of first need)."""
        selected: list[Bin] = []
        seen: set[int] = set()
        for cid in cell_ids:
            chosen = self.bin_of_cell_id(cid)
            if chosen.index not in seen:
                seen.add(chosen.index)
                selected.append(chosen)
        return selected

    def verify_equal_sizes(self) -> None:
        """Every bin must retrieve exactly ``bin_size`` tuples."""
        for b in self.bins:
            if b.total_tuples != self.bin_size:
                raise BinningError(
                    f"bin {b.index} holds {b.total_tuples} tuples, "
                    f"expected {self.bin_size}"
                )

    def theorem_4_1_holds(self) -> bool:
        """Check the paper's upper bounds on bins and fakes.

        Bounds assume ``n >> |b|``; the +1 slack below covers the small
        regimes the asymptotic statement glosses over.
        """
        if self.total_real == 0:
            return True
        max_bins = 2 * self.total_real / self.bin_size + 1
        max_fakes = self.total_real + self.bin_size / 2 + self.bin_size
        return len(self.bins) <= max_bins and self.total_fakes <= max_fakes


def pack_bins(
    c_tuple: Sequence[int],
    bin_size: int | None = None,
    algorithm: str = "ffd",
    first_fake_id: int = 1,
    max_cells_per_bin: int | None = None,
) -> BinLayout:
    """Pack cell-id populations into equi-sized bins.

    ``c_tuple[z]`` is the number of real tuples with cell-id ``z``.
    ``bin_size`` defaults to the maximum population (the paper's
    ``|b| = max``); an explicit larger size trades fewer bins for more
    fakes (Exp 6 sweeps this).  ``algorithm`` is ``"ffd"`` or ``"bfd"``.
    Zero-population cell-ids are packed too — a query can hash to an
    empty cell-id and its bin must exist (it retrieves only fakes).

    ``max_cells_per_bin`` caps the cell-ids per bin.  The §4.3 oblivious
    trapdoor schedule generates ``#Cmax × #max`` candidate slots, and on
    skewed data FFD can stuff hundreds of tiny cell-ids into one bin,
    making ``#Cmax`` (and the Concealer+ cost) explode; capping it
    bounds that cost at the price of extra bins and fakes.  An
    engineering extension beyond the paper — benchmarked in the
    ablations.

    >>> layout = pack_bins([79, 2, 73, 7, 7])      # Example 4.1
    >>> layout.bin_size
    79
    >>> len(layout.bins)
    3
    >>> layout.total_fakes                          # 4 + 65, disjoint ids
    69
    """
    if algorithm not in ("ffd", "bfd"):
        raise BinningError(f"unknown bin-packing algorithm {algorithm!r}")
    if max_cells_per_bin is not None and max_cells_per_bin < 1:
        raise BinningError("max_cells_per_bin must be positive")
    populations = list(c_tuple)
    if not populations:
        raise BinningError("cannot pack an empty c_tuple vector")
    if any(p < 0 for p in populations):
        raise BinningError("cell-id populations must be non-negative")
    largest = max(populations)
    if bin_size is None:
        bin_size = max(largest, 1)
    if bin_size < largest:
        raise BinningError(
            f"bin size {bin_size} smaller than largest population {largest}"
        )

    # Decreasing-weight order with deterministic tie-break on cell-id.
    order = sorted(range(len(populations)), key=lambda z: (-populations[z], z))

    bin_cells: list[list[int]] = []
    bin_loads: list[int] = []
    for cid in order:
        weight = populations[cid]
        target = _choose_bin(
            bin_loads, weight, bin_size, algorithm, bin_cells, max_cells_per_bin
        )
        if target is None:
            bin_cells.append([cid])
            bin_loads.append(weight)
        else:
            bin_cells[target].append(cid)
            bin_loads[target] += weight

    bins: list[Bin] = []
    next_fake = first_fake_id
    total_fakes = 0
    for index, (cells, load) in enumerate(zip(bin_cells, bin_loads)):
        deficit = bin_size - load
        fake_range = None
        if deficit > 0:
            fake_range = (next_fake, next_fake + deficit - 1)
            next_fake += deficit
            total_fakes += deficit
        bins.append(
            Bin(
                index=index,
                cell_ids=tuple(cells),
                real_tuples=load,
                capacity=bin_size,
                fake_id_range=fake_range,
            )
        )

    layout = BinLayout(
        bins=bins,
        bin_size=bin_size,
        total_real=sum(populations),
        total_fakes=total_fakes,
        algorithm=algorithm,
    )
    layout.verify_equal_sizes()
    return layout


def _choose_bin(
    loads: list[int],
    weight: int,
    bin_size: int,
    algorithm: str,
    cells: list[list[int]],
    max_cells: int | None,
) -> int | None:
    """First-fit or best-fit placement; ``None`` opens a new bin."""
    def fits(index: int) -> bool:
        if loads[index] + weight > bin_size:
            return False
        return max_cells is None or len(cells[index]) < max_cells

    if algorithm == "ffd":
        for index in range(len(loads)):
            if fits(index):
                return index
        return None
    best: int | None = None
    best_remaining = bin_size + 1
    for index, load in enumerate(loads):
        remaining = bin_size - load - weight
        if remaining >= 0 and remaining < best_remaining and fits(index):
            best = index
            best_remaining = remaining
    return best
