"""User registry and authentication (requirement R2, Phase 0).

The data provider maintains, per service provider, a registry of the
users allowed to query — so the service provider cannot masquerade as a
user to extract cleartext answers.  The registry is shipped encrypted;
the enclave decrypts it and authenticates every query with an
HMAC-based challenge-response over the user's secret (standing in for
the paper's public/private key pairs — the property used is only
"holder of the registered credential can answer a fresh challenge").

Individualized queries (Q4/Q5: "my own movements") are additionally
*authorized*: a user may only target the observation identity (their
device id) recorded in their registry entry, never someone else's.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
from dataclasses import dataclass

from repro.crypto.nondet import RandomizedCipher
from repro.exceptions import AuthenticationError, AuthorizationError


@dataclass(frozen=True)
class UserCredential:
    """What a registered user holds: an id and a secret."""

    user_id: str
    secret: bytes

    def answer_challenge(self, challenge: bytes) -> bytes:
        """Prove possession of the secret for a fresh challenge."""
        return hmac.new(self.secret, challenge, hashlib.sha256).digest()


@dataclass(frozen=True)
class RegistryEntry:
    """One registered user, as stored by the data provider.

    ``device_id`` is the user's observation identity — the value their
    individualized queries are allowed to target (empty string: none).
    ``aggregate_allowed`` gates Q1–Q3-style aggregate applications.
    """

    user_id: str
    secret: bytes
    device_id: str = ""
    aggregate_allowed: bool = True


class Registry:
    """The provider-side registry plus its encrypted wire format."""

    def __init__(self):
        self._entries: dict[str, RegistryEntry] = {}

    def register(
        self,
        user_id: str,
        device_id: str = "",
        aggregate_allowed: bool = True,
        rng=None,
    ) -> UserCredential:
        """Phase 0: enrol a user; returns the credential handed to them."""
        if user_id in self._entries:
            raise AuthenticationError(f"user {user_id!r} already registered")
        secret = rng.randbytes(32) if rng is not None else os.urandom(32)
        self._entries[user_id] = RegistryEntry(
            user_id=user_id,
            secret=secret,
            device_id=device_id,
            aggregate_allowed=aggregate_allowed,
        )
        return UserCredential(user_id=user_id, secret=secret)

    def revoke(self, user_id: str) -> None:
        """Remove a user; subsequent authentication fails."""
        self._entries.pop(user_id, None)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------ wire format

    def seal(self, cipher: RandomizedCipher) -> bytes:
        """Encrypt the registry for shipping to the service provider."""
        payload = json.dumps(
            [
                {
                    "user_id": e.user_id,
                    "secret": e.secret.hex(),
                    "device_id": e.device_id,
                    "aggregate_allowed": e.aggregate_allowed,
                }
                for e in self._entries.values()
            ]
        ).encode("utf-8")
        return cipher.encrypt(payload)

    @staticmethod
    def unseal(blob: bytes, cipher: RandomizedCipher) -> "Registry":
        """Enclave-side: decrypt a shipped registry."""
        registry = Registry()
        for item in json.loads(cipher.decrypt(blob).decode("utf-8")):
            registry._entries[item["user_id"]] = RegistryEntry(
                user_id=item["user_id"],
                secret=bytes.fromhex(item["secret"]),
                device_id=item["device_id"],
                aggregate_allowed=item["aggregate_allowed"],
            )
        return registry

    # ---------------------------------------------------------- authentication

    def authenticate(self, user_id: str, challenge: bytes, response: bytes) -> RegistryEntry:
        """Verify a challenge-response; returns the entry on success."""
        entry = self._entries.get(user_id)
        if entry is None:
            raise AuthenticationError(f"user {user_id!r} not registered")
        expected = hmac.new(entry.secret, challenge, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, response):
            raise AuthenticationError(f"user {user_id!r} failed authentication")
        return entry

    @staticmethod
    def authorize_individualized(entry: RegistryEntry, observation: str) -> None:
        """A user may only target their own observation identity."""
        if entry.device_id != observation:
            raise AuthorizationError(
                f"user {entry.user_id!r} may not query observation "
                f"{observation!r}"
            )

    @staticmethod
    def authorize_aggregate(entry: RegistryEntry) -> None:
        """Gate for aggregate applications."""
        if not entry.aggregate_allowed:
            raise AuthorizationError(
                f"user {entry.user_id!r} is not entitled to aggregate queries"
            )


# --------------------------------------------------------------- Phase 4
# Answer sealing: the paper's Phase 3 ends with the enclave "providing
# the final answers encrypted using the public key of the user" and
# Phase 4 has the user decrypt them.  We derive a per-user answer key
# from the registry secret both sides hold; the sealed blob is
# authenticated, so the host can neither read nor substitute answers.
# (Blobs carry pickled Python values — safe to load because only the
# enclave, which is trusted, can produce blobs that authenticate.)

def _answer_key(secret: bytes) -> bytes:
    from repro.crypto.prf import Prf

    return Prf(secret)(b"answer-sealing-key")


def seal_answer(secret: bytes, answer: object) -> bytes:
    """Enclave-side: encrypt a final answer for one user."""
    import pickle

    return RandomizedCipher(_answer_key(secret)).encrypt(
        pickle.dumps(answer, protocol=pickle.HIGHEST_PROTOCOL)
    )


def unseal_answer(secret: bytes, sealed: bytes) -> object:
    """User-side (Phase 4): decrypt and authenticate a sealed answer."""
    import pickle

    return pickle.loads(RandomizedCipher(_answer_key(secret)).decrypt(sealed))
