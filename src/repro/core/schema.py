"""Dataset schemas and records.

The paper's running relation is ``R(L, T, O)`` — location, time,
observation (§2.2, Table 2a) — but §9 also builds Concealer over nine
TPC-H LineItem columns with 2-D and 4-D grids.  A
:class:`DatasetSchema` abstracts over both:

- ``attributes`` — every column of the relation;
- ``time_attribute`` — the column that partitions data into epochs and
  subintervals (LineItem uses a synthetic row-arrival time);
- ``index_attributes`` — the columns (other than time) spanned by the
  §3 grid, e.g. ``("location",)`` for WiFi or
  ``("orderkey", "partkey", "suppkey", "linenumber")`` for the 4-D
  TPC-H grid;
- ``filter_groups`` — the column combinations that become encrypted
  filter columns (Table 2c has three: ``E_k(l‖t)``, ``E_k(o‖t)``,
  ``E_k(l‖t‖o)``).

Records are plain tuples aligned with ``attributes``; the schema
provides canonical byte encodings used everywhere a value is hashed or
encrypted, so the data provider and the enclave always agree bit-for-bit.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.exceptions import QueryError

# Unit separator: cannot appear in attribute values, so concatenated
# encodings never collide ("a"+"bc" vs "ab"+"c").
_SEP = b"\x1f"


def pad_plaintext(plaintext: bytes, width: int) -> bytes:
    """Length-prefix and zero-pad a plaintext to a fixed width.

    Equal-width plaintexts give equal-width ciphertexts, which closes a
    side channel the paper does not discuss: without padding, ciphertext
    *lengths* mirror value lengths, and the Concealer+ oblivious
    comparisons would emit length-dependent traces.
    """
    if len(plaintext) + 4 > width:
        raise QueryError(
            f"plaintext of {len(plaintext)} bytes exceeds pad width {width}"
        )
    return len(plaintext).to_bytes(4, "big") + plaintext + b"\x00" * (
        width - 4 - len(plaintext)
    )


def unpad_plaintext(padded: bytes) -> bytes:
    """Invert :func:`pad_plaintext`."""
    if len(padded) < 4:
        raise QueryError("padded plaintext too short")
    length = int.from_bytes(padded[:4], "big")
    if length > len(padded) - 4:
        raise QueryError("corrupt padding length")
    return padded[4 : 4 + length]


def encode_value(value) -> bytes:
    """Canonical byte encoding of one attribute value."""
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    raise TypeError(f"unsupported attribute value type {type(value).__name__}")


def encode_values(values: Sequence) -> bytes:
    """Canonical encoding of an ordered value sequence (separator-joined)."""
    return _SEP.join(encode_value(v) for v in values)


@dataclass(frozen=True)
class DatasetSchema:
    """The shape of a Concealer-managed relation.

    >>> WIFI_SCHEMA.position("time")
    1
    >>> WIFI_SCHEMA.record(location="ap1", time=5, observation="dev9")
    ('ap1', 5, 'dev9')
    """

    name: str
    attributes: tuple[str, ...]
    time_attribute: str
    index_attributes: tuple[str, ...]
    filter_groups: tuple[tuple[str, ...], ...]
    # Whether filter plaintexts fold the timestamp in (the paper's
    # ``E_k(l‖t)``).  True for spatial time-series data, where it makes
    # repeated values unique; False for key-like data (TPC-H), where the
    # filter-group combination is already unique and queriers do not
    # know row arrival times.
    fold_time_into_filters: bool = True
    # Fixed plaintext widths (bytes) for filter and payload columns, so
    # ciphertext lengths are value-independent (see pad_plaintext).
    filter_pad_width: int = 64
    payload_pad_width: int = 192

    def __post_init__(self):
        if self.time_attribute not in self.attributes:
            raise ValueError(
                f"time attribute {self.time_attribute!r} not in attributes"
            )
        for attr in self.index_attributes:
            if attr not in self.attributes:
                raise ValueError(f"index attribute {attr!r} not in attributes")
            if attr == self.time_attribute:
                raise ValueError(
                    "index_attributes must not repeat the time attribute; "
                    "time is always the last grid dimension"
                )
        for group in self.filter_groups:
            for attr in group:
                if attr not in self.attributes:
                    raise ValueError(f"filter attribute {attr!r} not in attributes")

    # ------------------------------------------------------------- positions

    def position(self, attribute: str) -> int:
        """Index of an attribute within a record tuple."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise QueryError(
                f"schema {self.name!r} has no attribute {attribute!r}"
            ) from None

    @property
    def time_position(self) -> int:
        """Index of the time attribute within a record tuple."""
        return self.position(self.time_attribute)

    # --------------------------------------------------------------- records

    def record(self, **values) -> tuple:
        """Build a record tuple from keyword values (all attributes required)."""
        missing = set(self.attributes) - set(values)
        extra = set(values) - set(self.attributes)
        if missing or extra:
            raise QueryError(
                f"record fields mismatch: missing={sorted(missing)}, "
                f"extra={sorted(extra)}"
            )
        return tuple(values[attr] for attr in self.attributes)

    def record_from_mapping(self, mapping: Mapping) -> tuple:
        """Build a record tuple from any mapping of attribute -> value."""
        return self.record(**dict(mapping))

    def value(self, record: Sequence, attribute: str):
        """Read one attribute out of a record tuple."""
        return record[self.position(attribute)]

    def time_of(self, record: Sequence) -> int:
        """The record's timestamp."""
        return record[self.time_position]

    # ------------------------------------------------------------- encodings

    def filter_plaintext(self, record: Sequence, group: tuple[str, ...]) -> bytes:
        """Canonical plaintext for a filter column of ``group`` columns.

        The paper always folds the timestamp in (``E_k(l‖t)``), which is
        what makes the DET ciphertexts unique; we therefore append the
        time attribute whenever the group does not already include it.
        """
        columns = list(group)
        if self.fold_time_into_filters and self.time_attribute not in columns:
            columns.append(self.time_attribute)
        raw = b"flt" + _SEP + encode_values(
            [self.value(record, attr) for attr in columns]
        )
        return pad_plaintext(raw, self.filter_pad_width)

    def filter_plaintext_for_values(
        self, group: tuple[str, ...], values: Sequence, time
    ) -> bytes:
        """Plaintext a querier encodes to match :meth:`filter_plaintext`.

        ``values`` are the group's non-time attribute values in group
        order; ``time`` is the timestamp being probed.
        """
        columns = list(group)
        ordered = list(values)
        if self.time_attribute in columns:
            ordered.insert(columns.index(self.time_attribute), time)
        elif self.fold_time_into_filters:
            ordered.append(time)
        raw = b"flt" + _SEP + encode_values(ordered)
        return pad_plaintext(raw, self.filter_pad_width)

    def payload_plaintext(self, record: Sequence) -> bytes:
        """Canonical plaintext of the full tuple (Table 2c's Tuple column)."""
        raw = b"row" + _SEP + encode_values(list(record))
        return pad_plaintext(raw, self.payload_pad_width)

    def decode_payload(self, padded: bytes) -> tuple:
        """Invert :meth:`payload_plaintext` back into a record tuple."""
        plaintext = unpad_plaintext(padded)
        prefix = b"row" + _SEP
        if not plaintext.startswith(prefix):
            raise QueryError("not a payload plaintext")
        parts = plaintext[len(prefix):].split(_SEP)
        values = []
        for part in parts:
            kind, body = part[:1], part[1:]
            if kind == b"s":
                values.append(body.decode("utf-8"))
            elif kind == b"i":
                values.append(int(body))
            elif kind == b"b":
                values.append(body)
            else:
                raise QueryError(f"bad payload part {part!r}")
        return tuple(values)

    def grid_dimensions(self) -> tuple[str, ...]:
        """Grid axes: every index attribute, then time (always last)."""
        return self.index_attributes + (self.time_attribute,)


# --------------------------------------------------------------------- stock
# The paper's three evaluated schemas.

WIFI_SCHEMA = DatasetSchema(
    name="wifi",
    attributes=("location", "time", "observation"),
    time_attribute="time",
    index_attributes=("location",),
    filter_groups=(
        ("location",),                   # E_k(l || t)  — Q1-Q3
        ("observation",),                # E_k(o || t)  — Q4
        ("location", "observation"),     # E_k(l || t || o) — Q5 / decryption
    ),
)

# Index(O, T): the observation-keyed companion index §3 mentions — serves
# Q4-style "where was this device" predicates directly instead of
# sweeping every location through Index(L, T).
WIFI_OBS_SCHEMA = DatasetSchema(
    name="wifi-obs",
    attributes=("location", "time", "observation"),
    time_attribute="time",
    index_attributes=("observation",),
    filter_groups=(
        ("observation",),
        ("location",),
        ("location", "observation"),
    ),
)

_TPCH_ATTRIBUTES = (
    "orderkey",
    "partkey",
    "suppkey",
    "linenumber",
    "quantity",
    "extendedprice",
    "discount",
    "tax",
    "returnflag",
    "time",
)

TPCH_2D_SCHEMA = DatasetSchema(
    name="tpch-2d",
    attributes=_TPCH_ATTRIBUTES,
    time_attribute="time",
    index_attributes=("orderkey", "linenumber"),
    filter_groups=(("orderkey", "linenumber"),),
    fold_time_into_filters=False,
)

TPCH_4D_SCHEMA = DatasetSchema(
    name="tpch-4d",
    attributes=_TPCH_ATTRIBUTES,
    time_attribute="time",
    index_attributes=("orderkey", "partkey", "suppkey", "linenumber"),
    filter_groups=(("orderkey", "partkey", "suppkey", "linenumber"),),
    fold_time_into_filters=False,
)
