"""Hosting several Concealer indexes over one relation (§3, §9.1).

Algorithm 1 builds one cell-based index per attribute combination —
"Similar indexes can also be created for other attributes, such as
Index(O, T) and Index(L, O, T)" — and §9.1's TPC-H deployment ships two
indexes over the same 136M rows.  A query then routes to the index
matching its predicate: Table 4's Q4 (find locations by *observation*)
is served by Index(O, T) directly instead of sweeping every location
through Index(L, T).

:class:`MultiIndexDeployment` wires that up: one shared enclave and
storage engine, one (provider, service) pair per index schema, a single
master key, and an attribute-based router.  Index schemas must agree on
the relation (same attributes, same time attribute) and differ only in
``index_attributes`` / ``filter_groups``.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.grid import GridSpec
from repro.core.provider import DataProvider
from repro.core.queries import PointQuery, QueryStats, RangeQuery
from repro.core.schema import DatasetSchema
from repro.core.service import ServiceConfig, ServiceProvider
from repro.enclave.enclave import Enclave, EnclaveConfig, generate_master_key
from repro.exceptions import QueryError
from repro.storage.engine import StorageEngine


class MultiIndexDeployment:
    """One relation, many Concealer indexes, one trust domain.

    >>> # deployment = MultiIndexDeployment(
    >>> #     schemas=[WIFI_SCHEMA, WIFI_OBS_SCHEMA],
    >>> #     grid_specs=[spec_lt, spec_ot],
    >>> #     first_epoch_id=0)
    >>> # deployment.ingest_epoch(records, 0)   # lands in every index
    >>> # deployment.execute_point("wifi-obs", query)
    """

    def __init__(
        self,
        schemas: Sequence[DatasetSchema],
        grid_specs: Sequence[GridSpec],
        first_epoch_id: int,
        master_key: bytes | None = None,
        config: ServiceConfig | None = None,
        time_granularity: int = 1,
        rng: random.Random | None = None,
    ):
        if len(schemas) != len(grid_specs):
            raise QueryError("one grid spec per index schema required")
        if not schemas:
            raise QueryError("at least one index schema required")
        names = [schema.name for schema in schemas]
        if len(set(names)) != len(names):
            raise QueryError("index schema names must be unique")
        base = schemas[0]
        for schema in schemas[1:]:
            if schema.attributes != base.attributes:
                raise QueryError(
                    f"index {schema.name!r} disagrees on relation attributes"
                )
            if schema.time_attribute != base.time_attribute:
                raise QueryError(
                    f"index {schema.name!r} disagrees on the time attribute"
                )
        durations = {spec.epoch_duration for spec in grid_specs}
        if len(durations) != 1:
            raise QueryError("all indexes must share the epoch duration")

        self.master_key = (
            master_key if master_key is not None else generate_master_key(rng)
        )
        self.enclave = Enclave(EnclaveConfig())
        base_config = config or ServiceConfig()
        self.engine = StorageEngine(btree_order=base_config.btree_order)
        self._rng = rng if rng is not None else random.Random()

        self.providers: dict[str, DataProvider] = {}
        self.services: dict[str, ServiceProvider] = {}
        for schema, spec in zip(schemas, grid_specs):
            provider = DataProvider(
                schema,
                spec,
                first_epoch_id=first_epoch_id,
                master_key=self.master_key,
                time_granularity=time_granularity,
                rng=self._rng,
            )
            per_index = ServiceConfig(
                oblivious=base_config.oblivious,
                verify=base_config.verify,
                window_subintervals=base_config.window_subintervals,
                super_bin_count=base_config.super_bin_count,
                btree_order=base_config.btree_order,
                table_prefix=f"{schema.name}_",
            )
            service = ServiceProvider(
                schema, per_index, engine=self.engine, enclave=self.enclave
            )
            self.providers[schema.name] = provider
            self.services[schema.name] = service

        # A single attestation + provisioning covers every index: they
        # share the enclave and the master key.
        next(iter(self.providers.values())).provision_enclave(self.enclave)

    # ------------------------------------------------------------------ data

    def ingest_epoch(self, records: Sequence[tuple], epoch_id: int) -> None:
        """Encrypt and land one epoch into *every* index."""
        for name, provider in self.providers.items():
            package = provider.encrypt_epoch(records, epoch_id)
            self.services[name].ingest_epoch(package)

    def index_names(self) -> list[str]:
        """All index schema names, sorted."""
        return sorted(self.providers)

    # --------------------------------------------------------------- routing

    def route(self, constrained_attributes: Sequence[str]) -> str:
        """Pick the index serving a predicate over the given attributes.

        Preference order: exact match on ``index_attributes``, then the
        smallest index whose attributes are a superset of the
        constraint (its grid can still narrow the fetch), then fail.
        """
        wanted = tuple(constrained_attributes)
        for name, service in self.services.items():
            if service.schema.index_attributes == wanted:
                return name
        supersets = [
            (len(service.schema.index_attributes), name)
            for name, service in self.services.items()
            if set(wanted) <= set(service.schema.index_attributes)
        ]
        if supersets:
            return min(supersets)[1]
        raise QueryError(
            f"no index covers attributes {list(wanted)}; "
            f"available: {self.index_names()}"
        )

    # --------------------------------------------------------------- queries

    def execute_point(
        self, index: str, query: PointQuery, epoch_id: int | None = None
    ) -> tuple[object, QueryStats]:
        """Run a point query against one named index."""
        return self._service(index).execute_point(query, epoch_id=epoch_id)

    def execute_range(
        self,
        index: str,
        query: RangeQuery,
        method: str = "ebpb",
        epoch_id: int | None = None,
    ) -> tuple[object, QueryStats]:
        """Run a range query against one named index."""
        return self._service(index).execute_range(
            query, method=method, epoch_id=epoch_id
        )

    def _service(self, index: str) -> ServiceProvider:
        try:
            return self.services[index]
        except KeyError:
            raise QueryError(
                f"unknown index {index!r}; available: {self.index_names()}"
            ) from None
