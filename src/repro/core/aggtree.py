"""Hierarchical encrypted aggregate index — the "agg tree" (ROADMAP item 1).

Concealer's range path fetches every bin a window touches, so a 30-day
COUNT over one hot cell costs thousands of fixed-size bin fetches — the
cost is linear in the window.  TimeCrypt's fix for encrypted time
series is a k-ary *time-aggregation tree*: at epoch-seal time the data
provider precomputes per-entity encrypted aggregates (count / sum /
min / max) at every power-of-k time granularity, and a range aggregate
then touches a canonical cover of O(k·log range) tree nodes instead of
O(range) bins.

The construction preserves Concealer's three arguments:

- **Volume hiding** (Theorem 4.1 analogue).  Every entity gets the
  *same* tree shape for a given public epoch span: ``entity_count``
  slots (a pure function of the grid spec), each holding
  ``nodes_per_entity(fanout, time_buckets)`` fixed-width nodes.
  Entities without data are padded with fake (all-zero) nodes, and a
  queried combination that holds no data resolves — inside the enclave,
  via the encrypted directory — to a *decoy* entity whose nodes are
  fetched exactly like a real entity's.  The host-visible fetch count
  is therefore a pure function of (range length, fanout, epoch span).

- **Verification**.  Each node plaintext carries its own position
  header (entity, level, index) plus a 32-byte keyed hash-chain entry
  over the aggregate payload, and the whole node is encrypted with the
  authenticated SIV DET cipher under a tree key derived from the epoch
  key.  A flipped ciphertext byte fails SIV authentication; a
  substituted node (valid ciphertext, wrong position) fails the header
  check; a cross-epoch replay fails decryption outright (fresh epoch
  key).  A sealed root tag — ``E_nd`` over the hash chain folded across
  every node ciphertext in canonical order — supports whole-sidecar
  audits without fetching nodes individually.

- **Leakage**.  The planner's tree-vs-bin choice is computed from
  public inputs only (range length in grid time buckets, fanout, epoch
  span, aggregate kind) — never from data values.  See SECURITY.md
  item 12.

The tree is *derived data*, exactly like the packed-bin sidecar: it
ships in :class:`~repro.core.epoch.EpochPackage`, is stored on
:class:`~repro.storage.table.Table`, is invalidated by any mutation,
and is fenced by the engine's ``rewrite_generation``.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import json
import struct
from dataclasses import dataclass
from functools import lru_cache

from repro.core.schema import DatasetSchema, encode_values
from repro.crypto.kernels import CHAIN_INIT, DetKernel, extend_chain
from repro.crypto.prf import Prf
from repro.exceptions import EpochError

_MAGIC = b"ATR1"
_NODE_MAGIC = b"ATN1"
_DIR_MAGIC = b"ATD1"
_VERSION = 1

#: Keyed hash-chain entry width carried inside every node plaintext.
CHAIN_ENTRY_BYTES = 32

# magic 4s · entity u32 · level u8 · index u32 · count u64
_NODE_HEAD = struct.Struct(">4sIBIQ")
# per-target sum / min / max, signed 64-bit
_NODE_TARGET = struct.Struct(">qqq")
# directory entry: 16-byte keyed combo digest · entity u32
_DIR_ENTRY = struct.Struct(">16sI")
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


# ------------------------------------------------------------------- keys


def derive_tree_keys(epoch_key: bytes) -> tuple[bytes, bytes]:
    """(encryption key, MAC key) for one epoch's tree, from the epoch key.

    Both the data provider and the enclave derive these independently;
    storage never holds either, so it can neither read aggregates nor
    forge a node that decrypts.
    """
    prf = Prf(epoch_key)
    return prf.derive_key("aggtree-enc"), prf.derive_key("aggtree-mac")


def combo_digest(mac_key: bytes, index_values: tuple) -> bytes:
    """Keyed digest of one index-value combination (directory key)."""
    return _hmac.new(
        mac_key, b"aggtree-combo\x1f" + encode_values(index_values),
        hashlib.sha256,
    ).digest()


def decoy_entity(digest: bytes, entity_count: int) -> int:
    """The fake entity an absent combination resolves to (volume hiding)."""
    return int.from_bytes(digest[16:24], "big") % entity_count


def tree_targets(schema: DatasetSchema) -> tuple[str, ...]:
    """Attributes the tree aggregates — a pure public function of schema.

    Only the time attribute is guaranteed integer-typed for every
    schema, so it is the one value target; the planner checks a query's
    ``target`` against this same function, keeping tree eligibility
    public.
    """
    return (schema.time_attribute,)


def default_entity_count(total_cells: int, time_buckets: int) -> int:
    """Default tree capacity: the grid's time-free prefix cell count.

    One entity per prefix cell is the natural analogue of the grid's
    public geometry — any dataset respecting the grid's nominal value
    cardinality fits.
    """
    return max(1, total_cells // max(1, time_buckets))


# ------------------------------------------------------------------ shape


@lru_cache(maxsize=128)
def tree_height(fanout: int, leaf_count: int) -> int:
    """Smallest H with ``fanout**H >= leaf_count`` (root level index)."""
    if fanout < 2:
        raise EpochError("tree fanout must be >= 2")
    if leaf_count < 1:
        raise EpochError("tree needs at least one leaf")
    height, span = 0, 1
    while span < leaf_count:
        height, span = height + 1, span * fanout
    return height


@lru_cache(maxsize=128)
def level_sizes(fanout: int, leaf_count: int) -> tuple[int, ...]:
    """Node counts per level, leaves (level 0) through root."""
    return tuple(
        -(-leaf_count // fanout**h)
        for h in range(tree_height(fanout, leaf_count) + 1)
    )


def nodes_per_entity(fanout: int, leaf_count: int) -> int:
    """Total nodes in one entity's tree (identical for every entity)."""
    return sum(level_sizes(fanout, leaf_count))


@lru_cache(maxsize=128)
def _level_offsets(fanout: int, leaf_count: int) -> tuple[int, ...]:
    offsets, total = [], 0
    for size in level_sizes(fanout, leaf_count):
        offsets.append(total)
        total += size
    return tuple(offsets)


def cover_nodes(
    lo: int, hi: int, fanout: int, leaf_count: int
) -> list[tuple[int, int]]:
    """Canonical aligned cover of full buckets ``[lo, hi]`` (inclusive).

    Returns ``(level, index)`` pairs, left to right; node ``(h, i)``
    covers buckets ``[i·k^h, (i+1)·k^h − 1]``.  Buckets past
    ``leaf_count`` are virtual (always empty), so a node overhanging the
    real end is usable whenever the range runs to the end — that is
    what bounds the cover at O(2·k·log range) nodes.  A pure function
    of public inputs: the planner and the leakage audit rely on that.
    """
    if not (0 <= lo <= hi < leaf_count):
        raise EpochError(f"cover [{lo}, {hi}] outside leaves [0, {leaf_count})")
    height = tree_height(fanout, leaf_count)
    cover: list[tuple[int, int]] = []
    pos = lo
    while pos <= hi:
        level, span = 0, 1
        while level < height:
            next_span = span * fanout
            if pos % next_span:
                break
            if pos + next_span - 1 > hi and hi != leaf_count - 1:
                break
            level, span = level + 1, next_span
        cover.append((level, pos // span))
        pos += span
    return cover


@dataclass(frozen=True)
class TreeSpan:
    """Public decomposition of a closed timestamp range over one epoch.

    ``full_lo..full_hi`` are the fully-covered grid time buckets the
    tree answers (empty when ``full_lo > full_hi``); ``residues`` are
    the at-most-two partial-bucket timestamp ranges the bin path must
    answer.  Everything here is a pure function of (range, epoch id,
    epoch duration, bucket count) — no data values.
    """

    full_lo: int
    full_hi: int
    residues: tuple[tuple[int, int], ...]

    @property
    def full_buckets(self) -> int:
        return max(0, self.full_hi - self.full_lo + 1)


def bucket_bounds(
    epoch_id: int, epoch_duration: int, leaf_count: int, bucket: int
) -> tuple[int, int]:
    """Inclusive absolute timestamp bounds of one grid time bucket."""
    lo = epoch_id + -(-bucket * epoch_duration // leaf_count)
    hi = epoch_id + -(-(bucket + 1) * epoch_duration // leaf_count) - 1
    return lo, hi


def decompose_range(
    epoch_id: int, epoch_duration: int, leaf_count: int, start: int, end: int
) -> TreeSpan:
    """Split ``[start, end]`` into full tree buckets plus edge residues."""
    if end < start:
        raise EpochError("range end precedes start")
    span = leaf_count
    b0 = (start - epoch_id) * span // epoch_duration
    b1 = (end - epoch_id) * span // epoch_duration
    full_lo = b0 if start <= bucket_bounds(epoch_id, epoch_duration, span, b0)[0] else b0 + 1
    full_hi = b1 if end >= bucket_bounds(epoch_id, epoch_duration, span, b1)[1] else b1 - 1
    if full_lo > full_hi:
        return TreeSpan(full_lo=1, full_hi=0, residues=((start, end),))
    residues = []
    left_edge = bucket_bounds(epoch_id, epoch_duration, span, full_lo)[0]
    if start < left_edge:
        residues.append((start, left_edge - 1))
    right_edge = bucket_bounds(epoch_id, epoch_duration, span, full_hi)[1]
    if end > right_edge:
        residues.append((right_edge + 1, end))
    return TreeSpan(full_lo=full_lo, full_hi=full_hi, residues=tuple(residues))


# ------------------------------------------------------------------- nodes


def node_plain_width(target_count: int) -> int:
    """Fixed node plaintext width for a target count (volume hiding)."""
    return _NODE_HEAD.size + target_count * _NODE_TARGET.size + CHAIN_ENTRY_BYTES


def _chain_entry(mac_key: bytes, head_and_body: bytes) -> bytes:
    return _hmac.new(
        mac_key, b"aggtree-node\x1f" + head_and_body, hashlib.sha256
    ).digest()


def encode_node(
    mac_key: bytes,
    entity: int,
    level: int,
    index: int,
    count: int,
    aggs: list[tuple[int, int, int]],
) -> bytes:
    """Serialize one node plaintext: position header, aggregates, entry."""
    head = _NODE_HEAD.pack(_NODE_MAGIC, entity, level, index, count)
    body = b"".join(_NODE_TARGET.pack(*agg) for agg in aggs)
    return head + body + _chain_entry(mac_key, head + body)


def decode_node(
    mac_key: bytes,
    plaintext: bytes,
    entity: int,
    level: int,
    index: int,
    target_count: int,
) -> tuple[int, list[tuple[int, int, int]]]:
    """Verify a node plaintext against its expected position and entry.

    Returns ``(count, [(sum, min, max), ...])``; raises ``ValueError``
    on any mismatch (the caller wraps it into an IntegrityViolation).
    """
    if len(plaintext) != node_plain_width(target_count):
        raise ValueError("tree node has unexpected width")
    head_body, entry = plaintext[:-CHAIN_ENTRY_BYTES], plaintext[-CHAIN_ENTRY_BYTES:]
    if not _hmac.compare_digest(entry, _chain_entry(mac_key, head_body)):
        raise ValueError("tree node hash-chain entry mismatch")
    magic, got_entity, got_level, got_index, count = _NODE_HEAD.unpack_from(
        head_body
    )
    if magic != _NODE_MAGIC:
        raise ValueError("tree node magic mismatch")
    if (got_entity, got_level, got_index) != (entity, level, index):
        raise ValueError(
            f"tree node position ({got_entity},{got_level},{got_index}) != "
            f"expected ({entity},{level},{index})"
        )
    aggs = [
        _NODE_TARGET.unpack_from(head_body, _NODE_HEAD.size + t * _NODE_TARGET.size)
        for t in range(target_count)
    ]
    return count, aggs


# --------------------------------------------------------------- the tree


@dataclass(frozen=True)
class TreeMeta:
    """The tree's public shape plus its sealed enclave-only blobs.

    What the storage engine hands the enclave context before any node
    is fetched: shape parameters (public), the ``E_nd``-sealed combo
    directory, and the sealed root tag.  Never contains node bytes —
    those go through the accounted node-fetch path.
    """

    fanout: int
    leaf_count: int
    entity_count: int
    targets: tuple[str, ...]
    node_width: int
    enc_directory: bytes
    enc_root_tag: bytes


@dataclass(frozen=True)
class AggTree:
    """One epoch's complete aggregate-tree sidecar.

    ``nodes`` is a single contiguous blob of fixed-width node
    ciphertexts in canonical order: entity-major, then level (leaves
    first), then index — the same order the sealed root tag chains.
    """

    fanout: int
    leaf_count: int
    entity_count: int
    targets: tuple[str, ...]
    node_width: int  # ciphertext width, bytes
    nodes: bytes
    enc_directory: bytes
    enc_root_tag: bytes

    def __post_init__(self):
        expected = self.entity_count * self.per_entity * self.node_width
        if len(self.nodes) != expected:
            raise EpochError(
                f"tree node blob is {len(self.nodes)} bytes, expected {expected}"
            )

    @property
    def per_entity(self) -> int:
        return nodes_per_entity(self.fanout, self.leaf_count)

    @property
    def node_count(self) -> int:
        return self.entity_count * self.per_entity

    @property
    def nbytes(self) -> int:
        """Exact resident size (EPC charging / cache accounting)."""
        return len(self.nodes) + len(self.enc_directory) + len(self.enc_root_tag)

    def meta(self) -> TreeMeta:
        return TreeMeta(
            fanout=self.fanout,
            leaf_count=self.leaf_count,
            entity_count=self.entity_count,
            targets=self.targets,
            node_width=self.node_width,
            enc_directory=self.enc_directory,
            enc_root_tag=self.enc_root_tag,
        )

    def node_offset(self, entity: int, level: int, index: int) -> int:
        if not 0 <= entity < self.entity_count:
            raise EpochError(f"tree entity {entity} out of range")
        offsets = _level_offsets(self.fanout, self.leaf_count)
        sizes = level_sizes(self.fanout, self.leaf_count)
        if not 0 <= level < len(sizes) or not 0 <= index < sizes[level]:
            raise EpochError(f"tree node ({level},{index}) out of range")
        return (entity * self.per_entity + offsets[level] + index) * self.node_width

    def node_at(self, entity: int, level: int, index: int) -> bytes:
        """One node ciphertext by canonical coordinates."""
        offset = self.node_offset(entity, level, index)
        return self.nodes[offset : offset + self.node_width]

    def root_digest(self) -> bytes:
        """Hash chain over every node ciphertext in canonical order."""
        width = self.node_width
        return extend_chain(
            CHAIN_INIT,
            (
                self.nodes[i : i + width]
                for i in range(0, len(self.nodes), width)
            ),
        )

    # ----------------------------------------------------------- wire form

    def to_bytes(self) -> bytes:
        targets_blob = json.dumps(list(self.targets)).encode("utf-8")
        header = struct.pack(
            ">4sBHIIHHIHQ",
            _MAGIC,
            _VERSION,
            self.fanout,
            self.leaf_count,
            self.entity_count,
            self.node_width,
            len(targets_blob),
            len(self.enc_directory),
            len(self.enc_root_tag),
            len(self.nodes),
        )
        return header + targets_blob + self.enc_directory + self.enc_root_tag + self.nodes

    @classmethod
    def from_bytes(cls, blob: bytes) -> "AggTree":
        head = struct.calcsize(">4sBHIIHHIHQ")
        if len(blob) < head:
            raise EpochError("tree blob shorter than header")
        (
            magic, version, fanout, leaf_count, entity_count, node_width,
            targets_len, dir_len, root_len, nodes_len,
        ) = struct.unpack_from(">4sBHIIHHIHQ", blob)
        if magic != _MAGIC or version != _VERSION:
            raise EpochError("not an agg-tree blob")
        offset = head
        if len(blob) != head + targets_len + dir_len + root_len + nodes_len:
            raise EpochError("tree blob length mismatch")
        targets = tuple(json.loads(blob[offset : offset + targets_len]))
        offset += targets_len
        enc_directory = blob[offset : offset + dir_len]
        offset += dir_len
        enc_root_tag = blob[offset : offset + root_len]
        offset += root_len
        return cls(
            fanout=fanout,
            leaf_count=leaf_count,
            entity_count=entity_count,
            targets=targets,
            node_width=node_width,
            nodes=blob[offset:],
            enc_directory=enc_directory,
            enc_root_tag=enc_root_tag,
        )

    def digest(self) -> bytes:
        return hashlib.sha256(self.to_bytes()).digest()

    # ------------------------------------------------------- fault helpers

    def with_corrupted_node(self, which: int = 0, byte_offset: int = 0) -> "AggTree":
        """A copy with one bit flipped inside node ``which`` (tamper tests)."""
        offset = (which % max(1, self.node_count)) * self.node_width + (
            byte_offset % self.node_width
        )
        mutated = bytearray(self.nodes)
        mutated[offset] ^= 0x01
        return AggTree(
            fanout=self.fanout,
            leaf_count=self.leaf_count,
            entity_count=self.entity_count,
            targets=self.targets,
            node_width=self.node_width,
            nodes=bytes(mutated),
            enc_directory=self.enc_directory,
            enc_root_tag=self.enc_root_tag,
        )


# -------------------------------------------------------------- directory


def encode_directory(entries: list[tuple[bytes, int]], entity_count: int) -> bytes:
    """Directory plaintext: real (digest16, entity) entries, zero-padded.

    Fixed width ``f(entity_count)`` so the sealed ciphertext length
    reveals nothing about how many combinations actually hold data.
    """
    if len(entries) > entity_count:
        raise EpochError("directory entries exceed entity capacity")
    body = b"".join(
        _DIR_ENTRY.pack(digest[:16], entity) for digest, entity in entries
    )
    pad = (entity_count - len(entries)) * _DIR_ENTRY.size
    return _DIR_MAGIC + struct.pack(">I", len(entries)) + body + b"\x00" * pad


def decode_directory(plaintext: bytes, entity_count: int) -> dict[bytes, int]:
    """Inverse of :func:`encode_directory`: digest16 → entity index."""
    if plaintext[:4] != _DIR_MAGIC:
        raise EpochError("not a tree directory")
    (count,) = struct.unpack_from(">I", plaintext, 4)
    expected = 8 + entity_count * _DIR_ENTRY.size
    if count > entity_count or len(plaintext) != expected:
        raise EpochError("tree directory length mismatch")
    directory: dict[bytes, int] = {}
    for i in range(count):
        digest16, entity = _DIR_ENTRY.unpack_from(plaintext, 8 + i * _DIR_ENTRY.size)
        directory[digest16] = entity
    return directory


# ---------------------------------------------------------------- builder


def build_agg_tree(
    records,
    schema: DatasetSchema,
    grid,
    epoch_key: bytes,
    nd,
    *,
    fanout: int,
    entity_count: int,
    time_granularity: int,
) -> AggTree | None:
    """Seal one epoch's aggregate tree (data-provider side).

    Every entity — real or padding — gets the identical node layout;
    leaf ``(entity, bucket)`` aggregates the records of that entity's
    index-value combination whose timestamps are query-visible
    (multiples of the public time granularity, mirroring the bin
    path's filter expansion) and fall in that grid time bucket.

    Returns ``None`` when no tree can ship: more distinct combinations
    than entity slots, or an aggregate outside the fixed 64-bit node
    field (consumers fall back to the bin path, answers unchanged).
    ``nd`` draws exactly two nonces — directory then root tag — in a
    fixed, single-threaded order, so packages stay bit-identical across
    ``workers`` settings.
    """
    leaf_count = grid.spec.time_buckets
    targets = tree_targets(schema)
    target_positions = [schema.position(target) for target in targets]
    enc_key, mac_key = derive_tree_keys(epoch_key)

    # Per-combination per-bucket leaf aggregates.
    per_combo: dict[tuple, dict[int, list]] = {}
    for record in records:
        timestamp = schema.time_of(record)
        if timestamp % time_granularity:
            continue  # never query-visible (see EpochContext.query_timestamps)
        combo = tuple(
            record[schema.position(attr)] for attr in schema.index_attributes
        )
        bucket = grid.time_bucket(timestamp)
        buckets = per_combo.setdefault(combo, {})
        leaf = buckets.get(bucket)
        values = []
        for position in target_positions:
            value = record[position]
            if isinstance(value, bool) or not isinstance(value, int):
                raise EpochError(
                    f"tree target value {value!r} is not an integer"
                )
            values.append(value)
        if leaf is None:
            buckets[bucket] = [1] + [[v, v, v] for v in values]
        else:
            leaf[0] += 1
            for t, value in enumerate(values):
                agg = leaf[1 + t]
                agg[0] += value
                agg[1] = min(agg[1], value)
                agg[2] = max(agg[2], value)

    if len(per_combo) > entity_count:
        return None

    # Entity assignment: combinations ranked by keyed digest — a
    # deterministic order that never reveals insertion or value order.
    digests = {combo: combo_digest(mac_key, combo) for combo in per_combo}
    ranked = sorted(per_combo, key=lambda combo: digests[combo])
    directory_entries = [
        (digests[combo], entity) for entity, combo in enumerate(ranked)
    ]

    # Level 0 per entity: dense (count, [sum, min, max]×T) leaf arrays.
    sizes = level_sizes(fanout, leaf_count)
    empty_agg = [(0, [(0, 0, 0)] * len(targets))]

    plaintexts: list[bytes] = []
    for entity in range(entity_count):
        buckets = per_combo.get(ranked[entity]) if entity < len(ranked) else None
        levels: list[list[tuple[int, list[tuple[int, int, int]]]]] = []
        leaves = []
        for bucket in range(leaf_count):
            leaf = buckets.get(bucket) if buckets else None
            if leaf is None:
                leaves.append(empty_agg[0])
            else:
                leaves.append((leaf[0], [tuple(agg) for agg in leaf[1:]]))
        levels.append(leaves)
        for height in range(1, len(sizes)):
            below = levels[-1]
            level = []
            for index in range(sizes[height]):
                children = below[index * fanout : (index + 1) * fanout]
                count = sum(child[0] for child in children)
                aggs = []
                for t in range(len(targets)):
                    present = [c[1][t] for c in children if c[0]]
                    if not present:
                        aggs.append((0, 0, 0))
                    else:
                        aggs.append(
                            (
                                sum(a[0] for a in present),
                                min(a[1] for a in present),
                                max(a[2] for a in present),
                            )
                        )
                level.append((count, aggs))
            levels.append(level)
        for height, level in enumerate(levels):
            for index, (count, aggs) in enumerate(level):
                for agg in aggs:
                    if not all(_I64_MIN <= v <= _I64_MAX for v in agg):
                        return None  # outside the fixed node field
                plaintexts.append(
                    encode_node(mac_key, entity, height, index, count, aggs)
                )

    # counted=False: the encryptor credits the (public) node count to the
    # kernel-op counter itself, matching the row-encryption discipline.
    ciphertexts = DetKernel(enc_key).encrypt_many(plaintexts, counted=False)
    nodes = b"".join(ciphertexts)
    directory_plain = encode_directory(directory_entries, entity_count)
    # Two nd nonces, fixed order: directory, then root tag.
    enc_directory = nd.encrypt(directory_plain)
    enc_root_tag = nd.encrypt(extend_chain(CHAIN_INIT, ciphertexts))
    return AggTree(
        fanout=fanout,
        leaf_count=leaf_count,
        entity_count=entity_count,
        targets=targets,
        node_width=len(ciphertexts[0]),
        nodes=nodes,
        enc_directory=enc_directory,
        enc_root_tag=enc_root_tag,
    )
