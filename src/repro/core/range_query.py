"""Range-query execution (§5): multi-point BPB, eBPB, winSecRange.

Three methods with distinct cost/leakage trade-offs:

- :meth:`RangeExecutor.execute_multipoint` — the §5.1 *trivial*
  solution: decompose the range into its covering grid cells, take the
  cells' cell-ids, fetch every point-query bin containing any of them.
  Strong volume hiding (only whole fixed-size bins are fetched), but
  heavily over-fetches (Example 5.1 fetches 300 tuples where 150
  qualify).

- :meth:`RangeExecutor.execute_ebpb` — §5.2's *enhanced* method using
  the per-cell population counts: the retrieval budget ``bsize`` is the
  maximum, over all non-time grid columns, of the summed top-ℓ cell
  populations — so any ℓ-cell range fits.  The query fetches exactly
  its covering cells' cell-ids, padded with fakes to ``bsize``.  Faster
  than BPB, but Example 5.2.2 shows overlapping ranges leak — which is
  why the paper adds:

- :meth:`RangeExecutor.execute_winsecrange` — §5.3: time subintervals
  are grouped into fixed-λ windows; a query fetches the *entire*
  windows covering its range (every location), padded to the largest
  window's population.  Sliding a query window never changes what is
  fetched for a given window, killing the Example 5.2.2 attack, at the
  price of fetching far more rows (Exp 2: ~70K/400K rows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro import telemetry
from repro.core.aggregation import evaluate_aggregate, needs_decryption
from repro.core.context import EpochContext
from repro.core.queries import Aggregate, Predicate, QueryStats, RangeQuery
from repro.exceptions import IntegrityViolation, QueryError
from repro.storage.engine import StorageEngine
from repro.storage.table import Row


@dataclass
class _EBPBState:
    """Cached eBPB sizing, grown monotonically as queries widen (STEP 3).

    ``window_volumes`` holds, for every ``max_span``-subinterval window
    start, the per-column cell-id fetch volumes of that window sorted
    descending.  A query naming ``m`` candidate columns is budgeted at
    the *worst single window's* top-``m`` column sum — independent of
    which columns or which window the query actually names (volume
    hiding), yet far tighter than summing each column's individual
    worst window for all-location queries like Q2–Q4.
    """

    max_span: int = 0
    window_volumes: list[list[int]] = None  # type: ignore[assignment]
    # Deduplicated all-column volume per window: cell-ids shared between
    # columns (time-local allocation groups several columns under one
    # id) are fetched once, so any query's fetch is capped by this.
    window_totals: list[int] = None  # type: ignore[assignment]

    def budget(self, combos: int) -> int:
        best = 0
        volumes = self.window_volumes or [[0]]
        totals = self.window_totals or [0] * len(volumes)
        for ordered, total in zip(volumes, totals):
            take = max(1, min(combos, len(ordered)))
            volume = sum(ordered[:take])
            if combos > len(ordered):
                volume += ordered[0] * (combos - len(ordered))
            best = max(best, min(volume, total))
        return best


class RangeExecutor:
    """Executes range queries against one loaded epoch."""

    def __init__(
        self,
        engine: StorageEngine,
        oblivious: bool = False,
        verify: bool = False,
        window_subintervals: int = 8,
        fetcher=None,
    ):
        self.engine = engine
        self.oblivious = oblivious
        self.verify = verify
        # λ for winSecRange, measured in grid time-subintervals.
        self.window_subintervals = window_subintervals
        self._ebpb_state: dict[int, _EBPBState] = {}
        # Optional shared whole-bin fetch path (repro.batching), used by
        # the multipoint method only — eBPB and winSecRange retrieve
        # padded cell-id sets, not whole bins, so they cannot share.
        self.fetcher = fetcher

    # ----------------------------------------------------------- §5.1 trivial

    def multipoint_bins(self, query: RangeQuery, context: EpochContext) -> list:
        """The point-query bins covering this range (planner-shared)."""
        needed_cids: list[int] = []
        for combo in query.candidate_combinations():
            for cid in context.grid.cell_ids_for_range(
                combo, query.time_start, query.time_end
            ):
                if cid not in needed_cids:
                    needed_cids.append(cid)
        return context.layout.bins_of_cell_ids(needed_cids)

    def _fetch_bin_any(self, context, chosen, stats, deadline, overlay):
        """Retrieve one whole bin: packed when a columnar sidecar
        exists, scalar rows otherwise."""
        if self.fetcher is not None:
            return self.fetcher.fetch_bin_any(
                context, chosen, stats, deadline=deadline, overlay=overlay
            )
        return self._fetch_bin(context, chosen, stats, deadline, overlay)

    def _fetch_bin(self, context, chosen, stats, deadline, overlay):
        """Legacy scalar fetch of one whole bin."""
        if self.fetcher is not None:
            return self.fetcher.fetch_bin(
                context, chosen, stats, deadline=deadline, overlay=overlay
            )
        verifier = self._fetch_verifier(context)
        if self.oblivious:
            trapdoors = context.oblivious_trapdoors_for_bin(chosen)
        else:
            trapdoors = context.trapdoors_for_bin(chosen)
        return context.fetch(
            self.engine,
            trapdoors,
            stats,
            deadline=deadline,
            verifier=verifier,
            cells=chosen.cell_ids,
        )

    def execute_multipoint(
        self, query: RangeQuery, context: EpochContext, deadline=None, overlay=None
    ) -> tuple[object, QueryStats]:
        """Convert the range into point-query bins and fetch them all."""
        stats = QueryStats(oblivious=self.oblivious)
        bins = self.multipoint_bins(query, context)
        stats.bins_fetched = len(bins)
        with telemetry.span(
            "enclave.range_query",
            epoch=context.epoch_id,
            method="multipoint",
            bins=len(bins),
        ):
            payloads = [
                self._fetch_bin_any(context, chosen, stats, deadline, overlay)
                for chosen in bins
            ]
            expected = [cid for chosen in bins for cid in chosen.cell_ids]
            packed_bins = [p for p in payloads if hasattr(p, "row_count")]
            if packed_bins and len(packed_bins) == len(payloads):
                return self._finish_packed(
                    query, context, packed_bins, stats, expected
                )
            rows: list[Row] = []
            for payload in payloads:
                rows.extend(
                    payload.unpack() if hasattr(payload, "row_count") else payload
                )
            return self._finish(query, context, rows, stats, expected)

    # ------------------------------------------------------ aggregate tree

    # Aggregates a sealed tree node can answer directly.
    TREE_AGGREGATES = frozenset(
        {Aggregate.COUNT, Aggregate.SUM, Aggregate.MIN, Aggregate.MAX}
    )

    @classmethod
    def tree_eligible(cls, query: RangeQuery, schema) -> bool:
        """Whether the query *shape* can be answered from tree nodes.

        Every rule is a pure function of public inputs (query shape and
        schema), never of data values — the planner must stay as public
        as ObliDB's:

        - the aggregate is decomposable (COUNT/SUM/MIN/MAX; COLLECT and
          TOP_K need the rows themselves);
        - a non-COUNT target is one the tree precomputed;
        - exactly one index-value combination (a wildcard sweep would
          need one entity per candidate — the bin path serves it);
        - no custom predicate, and the full index-attribute tuple is a
          filter group: the bin path then matches rows on the *exact*
          combination, so the tree — keyed by exact combination — is
          byte-equivalent even when grid cells collide.
        """
        from repro.core.aggtree import tree_targets

        if query.aggregate not in cls.TREE_AGGREGATES:
            return False
        if query.aggregate is not Aggregate.COUNT:
            if query.target not in tree_targets(schema):
                return False
        if len(query.candidate_combinations()) != 1:
            return False
        if query.predicate is not None:
            return False
        return schema.index_attributes in schema.filter_groups

    def execute_tree(
        self, query: RangeQuery, context: EpochContext, deadline=None, overlay=None
    ) -> tuple[object, QueryStats]:
        """Answer a long-window aggregate from O(log range) tree nodes.

        The time range decomposes into a canonical cover of sealed
        aggregate nodes plus (at most two) leaf-granularity residues at
        the edges, which re-enter the multipoint bin path as ordinary
        sub-queries.  An absent sidecar, or a tampered node under
        ``verify=False`` policy, falls back to the bin path — the tree
        is an accelerator, never the sole source of truth.
        """
        if self.oblivious:
            # Concealer+'s identical-trace guarantee covers the scalar
            # trapdoor schedule only; a tree fetch would be a different
            # in-enclave event trace per range length.
            raise QueryError("tree path is unavailable under oblivious execution")
        if not self.tree_eligible(query, context.schema):
            raise QueryError(
                "query shape is not tree-eligible (aggregate, target, "
                "wildcard, or predicate rules); use the bin path"
            )
        state = context.tree_state(self.engine)
        if state is None:
            return self.execute_multipoint(
                query, context, deadline=deadline, overlay=overlay
            )
        meta, directory = state

        from repro.core.aggtree import cover_nodes, decompose_range

        stats = QueryStats(oblivious=self.oblivious)
        span = decompose_range(
            context.epoch_id,
            context.grid.spec.epoch_duration,
            meta.leaf_count,
            query.time_start,
            query.time_end,
        )
        entity, present = context.tree_entity_for(
            meta, directory, tuple(query.index_values)
        )
        coords: list[tuple[int, int, int]] = []
        if span.full_buckets:
            coords = [
                (entity, level, index)
                for level, index in cover_nodes(
                    span.full_lo, span.full_hi, meta.fanout, meta.leaf_count
                )
            ]

        with telemetry.span(
            "enclave.range_query",
            epoch=context.epoch_id,
            method="tree",
            nodes=len(coords),
        ):
            decoded = []
            if coords:
                if self.fetcher is not None:
                    payload = self.fetcher.fetch_tree_nodes(
                        context, meta, coords, stats, deadline=deadline
                    )
                else:
                    payload = context.fetch_tree_nodes(
                        self.engine, meta, coords, stats,
                        deadline=deadline, verify=self.verify,
                    )
                if payload is None:
                    # Sidecar vanished between the meta read and the
                    # node read (mutation, legacy replica): the bin
                    # path is authoritative.
                    return self.execute_multipoint(
                        query, context, deadline=deadline, overlay=overlay
                    )
                try:
                    decoded = context.decode_tree_nodes(meta, coords, payload)
                except IntegrityViolation:
                    if self.verify:
                        raise
                    # Policy without verification: never a silent wrong
                    # answer — re-answer from the hash-chained rows.
                    return self.execute_multipoint(
                        query, context, deadline=deadline, overlay=overlay
                    )
                if self.verify:
                    # Authenticated decode just succeeded over every
                    # fetched node — that *is* the verification.
                    stats.verified = True
            # Touched-node count is a pure function of the public range
            # decomposition — identical cold or warm, hit or miss.
            telemetry.counter(
                "concealer_tree_nodes_fetched_total",
                "aggregate-tree nodes touched by tree-path range queries",
                secrecy=telemetry.PUBLIC_SIZE,
            ).inc(len(coords))
            stats.extra["tree_nodes_fetched"] = len(coords)

            if present:
                tree_count = sum(count for count, _ in decoded)
                parts = [aggs for count, aggs in decoded if count > 0]
            else:
                # Decoy entity: the fetch happened (volume hiding) but
                # the absent combination holds no records — its decoded
                # values belong to some other combination (or padding)
                # and must not contribute to the answer.
                tree_count = 0
                parts = []

            sub_answers = []
            for residue_start, residue_end in span.residues:
                sub_query = replace(
                    query, time_start=residue_start, time_end=residue_end
                )
                sub_answer, sub_stats = self.execute_multipoint(
                    sub_query, context, deadline=deadline, overlay=overlay
                )
                sub_answers.append(sub_answer)
                self._merge_stats(stats, sub_stats)

            if query.aggregate is Aggregate.COUNT:
                return tree_count + sum(sub_answers), stats

            target_pos = meta.targets.index(query.target)
            values = []
            if parts:
                if query.aggregate is Aggregate.SUM:
                    values.append(sum(a[target_pos][0] for a in parts))
                elif query.aggregate is Aggregate.MIN:
                    values.append(min(a[target_pos][1] for a in parts))
                else:
                    values.append(max(a[target_pos][2] for a in parts))
            values.extend(v for v in sub_answers if v is not None)
            if not values:
                return None, stats
            if query.aggregate is Aggregate.SUM:
                return sum(values), stats
            if query.aggregate is Aggregate.MIN:
                return min(values), stats
            return max(values), stats

    @staticmethod
    def _merge_stats(stats: QueryStats, sub: QueryStats) -> None:
        """Fold a residue sub-query's accounting into the main stats."""
        stats.trapdoors_generated += sub.trapdoors_generated
        stats.rows_fetched += sub.rows_fetched
        stats.rows_matched += sub.rows_matched
        stats.rows_decrypted += sub.rows_decrypted
        stats.bins_fetched += sub.bins_fetched
        stats.failovers += sub.failovers
        stats.cache_hits += sub.cache_hits
        stats.cache_misses += sub.cache_misses
        stats.rows_from_cache += sub.rows_from_cache
        stats.verified = stats.verified or sub.verified
        stats.degraded = stats.degraded or sub.degraded

    # -------------------------------------------------------------- §5.2 eBPB

    def execute_ebpb(
        self, query: RangeQuery, context: EpochContext, deadline=None
    ) -> tuple[object, QueryStats]:
        """Fetch the covering cells' cell-ids, padded to the top-ℓ budget."""
        stats = QueryStats(oblivious=self.oblivious)
        verifier = self._fetch_verifier(context)
        combos = query.candidate_combinations()
        span = len(
            context.grid.time_buckets_for_range(query.time_start, query.time_end)
        )

        state = self._ebpb_budget(context, span)
        needed_cids: list[int] = []
        for combo in combos:
            for cid in context.grid.cell_ids_for_range(
                combo, query.time_start, query.time_end
            ):
                if cid not in needed_cids:
                    needed_cids.append(cid)

        real_volume = sum(context.c_tuple[cid] for cid in needed_cids)
        budget = state.budget(len(combos))
        fake_ids = self._pad_fakes(context, max(0, budget - real_volume))
        stats.extra["ebpb_budget"] = budget
        stats.extra["ebpb_real_volume"] = real_volume
        stats.bins_fetched = len(combos)
        # The budget is a pure function of the epoch metadata and the
        # query's public shape (candidate count, span) — public-size.
        telemetry.gauge(
            "concealer_ebpb_budget_rows",
            "current eBPB retrieval budget (rows per fetch)",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set(budget)

        with telemetry.span(
            "enclave.range_query",
            epoch=context.epoch_id,
            method="ebpb",
            budget=budget,
        ):
            trapdoors = context.trapdoors_for_cell_ids(needed_cids, fake_ids)
            rows = context.fetch(
                self.engine,
                trapdoors,
                stats,
                deadline=deadline,
                verifier=verifier,
                cells=needed_cids,
            )
            return self._finish(query, context, rows, stats, needed_cids)

    def _ebpb_budget(self, context: EpochContext, span: int) -> _EBPBState:
        """STEP 2–3: per-column worst-case volumes for ℓ-window queries.

        The paper sizes eBPB bins as the maximum, over grid columns, of
        the top-ℓ cell populations.  Retrieval, however, happens at
        *cell-id* granularity (a trapdoor fetches every tuple of a
        cell-id, which may span several cells), so for the fetch volume
        to be constant the budget must be computed the same way the
        fetch is: for every (column, ℓ-window start), take the distinct
        cell-ids covering the window's cells and sum their populations.
        The per-column maxima are kept sorted so multi-column queries
        (Q2–Q4 sweep every location) are budgeted at the sum of the top
        ``m`` columns rather than ``m ×`` the single worst column.

        Cached and grown monotonically: recomputed only when a query
        spans more cells than any previous one (paper's STEP 3 rule).
        """
        state = self._ebpb_state.setdefault(id(context), _EBPBState())
        if state.window_volumes is not None and span <= state.max_span:
            return state
        grid = context.grid
        spec = grid.spec
        time_axis = spec.dimension_sizes[-1]
        prefix_cells = spec.total_cells // time_axis
        buckets = spec.time_buckets
        coords = [grid.time_axis_coord(bucket) for bucket in range(buckets)]
        cid_vector = context.cell_id_vector
        window_volumes: list[list[int]] = []
        window_totals: list[int] = []
        for start in range(max(1, buckets - span + 1)):
            window_buckets = range(start, min(start + span, buckets))
            per_column: list[int] = []
            all_cids: set[int] = set()
            for prefix in range(prefix_cells):
                base = prefix * time_axis
                cids = {cid_vector[base + coords[bucket]] for bucket in window_buckets}
                per_column.append(sum(context.c_tuple[cid] for cid in cids))
                all_cids |= cids
            per_column.sort(reverse=True)
            window_volumes.append(per_column)
            window_totals.append(sum(context.c_tuple[cid] for cid in all_cids))
        state.max_span = span
        state.window_volumes = window_volumes
        state.window_totals = window_totals
        return state

    # ------------------------------------------------------ §5.3 winSecRange

    def execute_winsecrange(
        self, query: RangeQuery, context: EpochContext, deadline=None
    ) -> tuple[object, QueryStats]:
        """Fetch whole fixed-λ time windows covering the range."""
        stats = QueryStats(oblivious=self.oblivious)
        verifier = self._fetch_verifier(context)
        windows = self._covering_windows(query, context)
        window_size = self._window_budget(context)

        with telemetry.span(
            "enclave.range_query",
            epoch=context.epoch_id,
            method="winsecrange",
            windows=len(windows),
        ):
            rows: list[Row] = []
            fake_offset = 0
            expected: list[int] = []
            for window in windows:
                cids = self._window_cell_ids(context, window)
                expected.extend(cids)
                real_volume = sum(context.c_tuple[cid] for cid in cids)
                fake_ids = self._pad_fakes(
                    context, max(0, window_size - real_volume), offset=fake_offset
                )
                fake_offset += len(fake_ids)
                trapdoors = context.trapdoors_for_cell_ids(cids, fake_ids)
                rows.extend(
                    context.fetch(
                        self.engine,
                        trapdoors,
                        stats,
                        deadline=deadline,
                        verifier=verifier,
                        cells=cids,
                    )
                )
            stats.bins_fetched = len(windows)
            stats.extra["window_size"] = window_size
            return self._finish(query, context, rows, stats, expected)

    def _covering_windows(self, query: RangeQuery, context: EpochContext) -> list[int]:
        """The λ-window indices intersecting the query's time range."""
        buckets = context.grid.time_buckets_for_range(
            query.time_start, query.time_end
        )
        lam = self.window_subintervals
        return sorted({bucket // lam for bucket in buckets})

    def _window_cell_ids(self, context: EpochContext, window: int) -> list[int]:
        """Distinct cell-ids of every cell (all columns) in one window.

        The window covers subinterval *indices*; each index hashes to a
        time-axis coordinate, and the window spans all non-time columns.
        """
        grid = context.grid
        spec = grid.spec
        time_axis_size = spec.dimension_sizes[-1]
        prefix_cells = spec.total_cells // time_axis_size
        lam = self.window_subintervals
        first = window * lam
        buckets = range(first, min(first + lam, spec.time_buckets))
        time_coords = {grid.time_axis_coord(bucket) for bucket in buckets}
        cids: list[int] = []
        for prefix in range(prefix_cells):
            for coord in time_coords:
                flat = prefix * time_axis_size + coord
                cid = grid.cell_id_of(flat)
                if cid not in cids:
                    cids.append(cid)
        return cids

    def _window_budget(self, context: EpochContext) -> int:
        """Bin size = the maximum population over all λ-windows."""
        cache_key = ("winsec_budget", context.epoch_id, self.window_subintervals)
        if context.enclave.has_sealed(cache_key):
            return context.enclave.unseal(cache_key)
        spec = context.grid.spec
        lam = self.window_subintervals
        window_count = math.ceil(spec.time_buckets / lam)
        best = 0
        for window in range(window_count):
            cids = self._window_cell_ids(context, window)
            best = max(best, sum(context.c_tuple[cid] for cid in cids))
        context.enclave.seal(cache_key, best)
        return best

    # ---------------------------------------------------------------- shared

    def _fetch_verifier(self, context: EpochContext):
        """Per-fetch verifier for replicated engines (else ``None``).

        With replication, verification moves into the fetch so each
        replica's answer is checked before acceptance — a tampered bin
        costs a failover, not the query.  Each fetch retrieves complete
        cell-id populations, so per-batch chain verification is sound
        even before the cross-window de-dup in :meth:`_finish`.
        """
        if self.verify and getattr(self.engine, "supports_replicated_reads", False):
            return context.verify_rows
        return None

    def _pad_fakes(
        self, context: EpochContext, needed: int, offset: int = 0
    ) -> list[int]:
        """Fake ids to pad a fetch to its constant budget.

        ``offset`` rotates through the shipped fake pool so successive
        fetches (adjacent winSecRange windows) use disjoint fakes where
        the pool allows — Example 4.1's argument for disjoint padding.
        When ``needed`` exceeds the pool, ids cycle: the fetch volume
        stays constant (the security property), at the cost of visibly
        repeated fake fetches.  Providers that expect heavy range use
        should ship ``FakeStrategy.EQUAL`` pools (one fake per real
        row), which Theorem 4.1 shows is always sufficient.
        """
        available = context.fake_pool_size
        if needed <= 0 or available == 0:
            return []
        return [1 + (offset + i) % available for i in range(needed)]

    def _finish(
        self,
        query: RangeQuery,
        context: EpochContext,
        rows: list[Row],
        stats: QueryStats,
        expected_cells=None,
    ) -> tuple[object, QueryStats]:
        """Shared STEP 4: verify, filter, decrypt, aggregate.

        Rows are de-duplicated by their index-key ciphertext first:
        winSecRange windows (and, with coarse grids, eBPB cell-id
        unions) can fetch the same row more than once, and matching must
        not double-count it.  The index key is the *logical* identity —
        deterministic encryption of ``cid ‖ counter`` (``fake ‖ j`` for
        fakes), byte-identical on every replica.  Physical row ids are
        replica-local and diverge after repair or failover, so two rows
        sharing an id can be *different* logical rows when a window's
        fetches land on different replicas; deduplicating by id would
        silently drop real rows there.

        ``expected_cells`` binds verification to the cell-ids the query
        *requested*: a per-cell hash chain only proves the cells present
        in the batch are whole, so a host dropping every row of a
        population-1 cell would otherwise leave no counter gap to find.
        """
        seen: set[bytes] = set()
        unique_rows: list[Row] = []
        for row in rows:
            if row[-1] not in seen:
                seen.add(row[-1])
                unique_rows.append(row)
        rows = unique_rows
        if self.verify and not stats.verified:
            context.verify_rows(rows, expected_cells)
            stats.verified = True

        predicate = self._resolve_predicate(query, context)
        timestamps = context.query_timestamps(query.time_start, query.time_end)
        filters = self._expand_filters(query, context, predicate, timestamps)

        with telemetry.span(
            "enclave.aggregate",
            stage="aggregate",
            epoch=context.epoch_id,
            filters=len(filters),
        ):
            if self.oblivious:
                matched = context.match_rows_oblivious(
                    rows, filters, predicate.group, stats
                )
            else:
                matched = context.match_rows(
                    rows, filters, predicate.group, stats
                )

            if query.aggregate is Aggregate.COUNT:
                return len(matched), stats
            if not needs_decryption(query.aggregate):
                raise QueryError(
                    f"unhandled match-only aggregate {query.aggregate}"
                )
            records = context.decrypt_records(matched, stats)
            answer = evaluate_aggregate(
                query.aggregate, records, context.schema, query.target, query.k
            )
            return answer, stats

    def _finish_packed(
        self,
        query: RangeQuery,
        context: EpochContext,
        packed_bins: list,
        stats: QueryStats,
        expected_cells=None,
    ) -> tuple[object, QueryStats]:
        """Columnar STEP 4 — byte-identical to :meth:`_finish`.

        The de-dup becomes a first-occurrence keep mask over the
        concatenated index-key columns (same pre-verification ordering:
        tamper-duplicates are dropped before chains are checked), the
        string match one vectorized ``isin``, and decryption touches
        only the masked payload cells.
        """
        keep = context.packed_dedup_keep(packed_bins)
        if self.verify and not stats.verified:
            context.verify_packed(packed_bins, expected_cells, keep=keep)
            stats.verified = True

        predicate = self._resolve_predicate(query, context)
        timestamps = context.query_timestamps(query.time_start, query.time_end)
        filters = self._expand_filters(query, context, predicate, timestamps)

        with telemetry.span(
            "enclave.aggregate",
            stage="aggregate",
            epoch=context.epoch_id,
            filters=len(filters),
        ):
            mask = context.match_packed(
                packed_bins, filters, predicate.group, stats, keep=keep
            )
            if query.aggregate is Aggregate.COUNT:
                return int(mask.sum()), stats
            if not needs_decryption(query.aggregate):
                raise QueryError(
                    f"unhandled match-only aggregate {query.aggregate}"
                )
            records = context.decrypt_packed_records(packed_bins, mask, stats)
            answer = evaluate_aggregate(
                query.aggregate, records, context.schema, query.target, query.k
            )
            return answer, stats

    def _expand_filters(
        self,
        query: RangeQuery,
        context: EpochContext,
        predicate: Predicate,
        timestamps: list[int],
    ) -> list[bytes]:
        """Filters for every (candidate predicate values × timestamp).

        When the predicate values contain wildcard tuples (Q2/Q3 "all
        locations"), the cross-product of candidates is expanded — this
        mirrors Table 4's Q2 filters ``E_k(l_i|t_j)`` over the full
        location domain.
        """
        value_options: list[list] = []
        for value in predicate.values:
            options = list(value) if isinstance(value, (tuple, list)) else [value]
            value_options.append(options)
        combos: list[list] = [[]]
        for options in value_options:
            combos = [prefix + [opt] for prefix in combos for opt in options]
        filters: list[bytes] = []
        for combo in combos:
            filters.extend(
                context.filters_for(
                    Predicate(group=predicate.group, values=tuple(combo)),
                    timestamps,
                )
            )
        return filters

    @staticmethod
    def _resolve_predicate(query: RangeQuery, context: EpochContext) -> Predicate:
        """Default predicate mirrors the point-query rule."""
        if query.predicate is not None:
            return query.predicate
        schema = context.schema
        for group in schema.filter_groups:
            if group == schema.index_attributes:
                return Predicate(group=group, values=tuple(query.index_values))
        group = schema.filter_groups[0]
        try:
            values = tuple(
                query.index_values[schema.index_attributes.index(attr)]
                for attr in group
            )
        except ValueError:
            raise QueryError(
                f"cannot derive a default predicate from group {group}; "
                "pass one explicitly"
            ) from None
        return Predicate(group=group, values=values)
