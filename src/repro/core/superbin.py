"""Super-bins against query-workload frequency attacks (§8).

Equal-sized bins hide output size per query, but bins holding more
*distinct values* are fetched more often under a uniform query
workload, which leaks data distribution over time (Example 8.1: a bin
with 10 unique values is fetched 10× as often as a single-value bin).

The defence groups bins into ``f`` *super-bins* balanced by unique-value
count; a query fetches its bin's whole super-bin, so all super-bins are
retrieved a near-equal number of times.  The §8 construction:

1. sort bins by decreasing unique-value count;
2. pick ``f`` that divides the bin count;
3. seed each super-bin with one of the ``f`` largest bins;
4. repeatedly give the next-largest bin to the super-bin with the
   smallest running unique-value total (among those still short a bin).

The layout exposes :meth:`expected_retrievals` so tests and the
ablation bench can check the balancing claim quantitatively.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.exceptions import BinningError


@dataclass(frozen=True)
class SuperBin:
    """A group of bins always retrieved together."""

    index: int
    bin_indexes: tuple[int, ...]
    unique_values: int


@dataclass
class SuperBinLayout:
    """The §8 grouping of an epoch's bins into super-bins."""

    super_bins: list[SuperBin]
    bin_to_super: dict[int, int]

    def super_bin_of(self, bin_index: int) -> SuperBin:
        """Which super-bin a bin belongs to."""
        try:
            return self.super_bins[self.bin_to_super[bin_index]]
        except KeyError:
            raise BinningError(f"bin {bin_index} is in no super-bin") from None

    def bins_to_fetch(self, bin_index: int) -> tuple[int, ...]:
        """All bins retrieved when a query needs ``bin_index``."""
        return self.super_bin_of(bin_index).bin_indexes

    def expected_retrievals(self, unique_values: Sequence[int]) -> list[int]:
        """Per-super-bin retrieval counts under a uniform value workload.

        Each distinct value triggers one query; a query retrieves its
        bin's super-bin.  (Example 8.1's four super-bins come out as
        12, 12, 11, 10.)
        """
        counts = [0] * len(self.super_bins)
        for bin_index, uniques in enumerate(unique_values):
            counts[self.bin_to_super[bin_index]] += uniques
        return counts


def build_super_bins(unique_values: Sequence[int], f: int) -> SuperBinLayout:
    """Run the §8 algorithm over per-bin unique-value counts.

    ``unique_values[i]`` is the number of distinct attribute values in
    bin ``i``; ``f`` must evenly divide the number of bins.

    >>> layout = build_super_bins([1, 2, 9, 1, 2, 10, 1, 1, 1, 8, 2, 7], 4)
    >>> sorted(layout.expected_retrievals(
    ...     [1, 2, 9, 1, 2, 10, 1, 1, 1, 8, 2, 7]), reverse=True)
    [12, 12, 11, 10]
    """
    bin_count = len(unique_values)
    if bin_count == 0:
        raise BinningError("no bins to group")
    if f < 1 or bin_count % f != 0:
        raise BinningError(
            f"f={f} must be positive and divide the bin count {bin_count}"
        )
    per_super = bin_count // f

    # Step 1: decreasing unique-value order (ties: bin index).
    order = sorted(range(bin_count), key=lambda i: (-unique_values[i], i))

    members: list[list[int]] = [[] for _ in range(f)]
    totals = [0] * f

    # Step 3: seed each super-bin with one of the f largest bins.
    for position in range(f):
        bin_index = order[position]
        members[position].append(bin_index)
        totals[position] += unique_values[bin_index]

    # Step 4: next bin goes to the least-loaded super-bin still short.
    for bin_index in order[f:]:
        candidates = [
            s for s in range(f) if len(members[s]) < per_super
        ]
        target = min(candidates, key=lambda s: (totals[s], s))
        members[target].append(bin_index)
        totals[target] += unique_values[bin_index]

    super_bins = [
        SuperBin(index=s, bin_indexes=tuple(members[s]), unique_values=totals[s])
        for s in range(f)
    ]
    bin_to_super = {
        bin_index: s for s in range(f) for bin_index in members[s]
    }
    return SuperBinLayout(super_bins=super_bins, bin_to_super=bin_to_super)


def retrieval_skew(counts: Sequence[int]) -> float:
    """Max/min retrieval ratio — 1.0 is perfectly balanced.

    Used by tests and the ablation bench to compare raw bins (heavily
    skewed under Example 8.1's workload) against super-bins.
    """
    positive = [c for c in counts if c > 0]
    if not positive:
        return 1.0
    return max(positive) / min(positive)
