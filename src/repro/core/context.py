"""Enclave-resident per-epoch state and shared query machinery.

When the first query touches an epoch, the enclave decrypts that
epoch's metadata vectors (``cell_id[]``, ``c_tuple[]``, per-cell
counts), rebuilds the grid from the sealed master key, and runs the
deterministic bin packing (STEP 0 of Algorithm 2).  All of that is
cached here as an :class:`EpochContext`, charged against the simulated
EPC budget.

The context also provides the building blocks every executor shares:

- trapdoor generation for a set of cell-ids + fake ids (STEP 3),
- DET filter generation for predicates over timestamp sets,
- hash-chain verification of fetched rows against the verifiable tags,
- plain and oblivious row filtering (STEP 4 and §4.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro import telemetry
from repro.core.binning import Bin, BinLayout, pack_bins
from repro.core.epoch import (
    EpochPackage,
    fake_index_plaintext,
    index_plaintext,
)
from repro.core.grid import Grid
from repro.core.queries import Predicate, QueryStats
from repro.core.schema import DatasetSchema
from repro.crypto.det import DeterministicCipher
from repro.crypto.kernels import CHAIN_INIT, DetKernel, batch_chain_extend
from repro.crypto.keys import derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.enclave.enclave import Enclave
from repro.enclave.sort import bitonic_sort, column_sort
from repro.exceptions import (
    DecryptionError,
    EpochError,
    IntegrityViolation,
    QueryError,
)
from repro.storage.engine import StorageEngine
from repro.storage.table import Row


# Rough per-item resident estimate for the footnote-5 sorter choice
# (a (flag, ciphertext/row) pair with framing).
_ROW_ESTIMATE_BYTES = 512

# Batches at least this large route through the vectorised bitonic
# network; below it the pure-Python reference is faster than the numpy
# setup cost.
_VECTOR_SORT_THRESHOLD = 512


def _count_tuples(real: int, fake: int) -> None:
    """Record the real/fake split of a trapdoor batch.

    The *total* is public-size (it is the bin size), but the split is
    the very thing volume hiding conceals from the host — only the
    enclave, which generated the trapdoors, can account for it, and the
    family is tagged data-dependent so the leakage auditor never
    requires it to match across datasets.
    """
    tuples = telemetry.counter(
        "concealer_tuples_fetched_total",
        "tuples requested via trapdoors, split real vs. fake (enclave-"
        "private knowledge; the host sees only the public total)",
        labels=("kind",),
    )
    tuples.labels(kind="real").inc(real)
    tuples.labels(kind="fake").inc(fake)


class EpochContext:
    """Decrypted, enclave-private view of one outsourced epoch."""

    def __init__(
        self,
        enclave: Enclave,
        package: EpochPackage,
        schema: DatasetSchema,
        table_name: str | None = None,
        trapdoor_table=None,
    ):
        enclave.require_provisioned()
        self.enclave = enclave
        self.schema = schema
        self.package = package
        self.epoch_id = package.epoch_id
        self.table_name = table_name or f"epoch_{package.epoch_id}"
        # Optional service-wide TrapdoorTable (rotation-fenced LRU memo
        # of derived trapdoors); None on the oblivious path, where a
        # memo hit would break Concealer+'s trace-identity guarantee.
        self.trapdoor_table = trapdoor_table

        epoch_key = derive_epoch_key(enclave.master_key, package.epoch_id)
        # Kept for lazily-derived subkeys (the aggregate-tree keys);
        # enclave-private like every other derived key here.
        self._epoch_key = epoch_key
        self.det = DeterministicCipher(epoch_key)
        self.det_kernel = DetKernel(epoch_key)
        self.nd = RandomizedCipher(epoch_key)
        grid_key = (
            self.nd.decrypt(package.enc_grid_key)
            if package.enc_grid_key
            else None
        )
        self.grid = Grid(
            package.grid_spec, schema, enclave.master_key, package.epoch_id,
            grid_key=grid_key,
        )

        with enclave.trace.disabled():
            self.cell_id_vector = package.decrypt_cell_id_vector(self.nd)
            self.c_tuple = package.decrypt_c_tuple_vector(self.nd)
            self.cell_counts = package.decrypt_cell_counts(self.nd)
        # The §9.1 observation that the vectors are small enough for the
        # enclave: charge them against the EPC budget (8 bytes/int).
        self._metadata_charge = 8 * (
            len(self.cell_id_vector) + len(self.c_tuple) + len(self.cell_counts)
        )
        enclave.charge_memory(self._metadata_charge)
        try:
            self.layout: BinLayout = pack_bins(
                self.c_tuple,
                bin_size=package.bin_size,
                max_cells_per_bin=package.max_cells_per_bin,
            )
        except BaseException:
            # A half-built context holds no EPC: a packing failure (or an
            # injected fault) must not leak the metadata charge forever.
            enclave.release_memory(self._metadata_charge)
            raise
        self.fake_pool_size = package.fake_count
        self._super_layouts: dict[int, object] = {}
        # Aggregate-tree state, decrypted lazily on first tree-path
        # query: (engine generation, (meta, directory) | None).
        self._tree_state: tuple[int, object] | None = None
        self._tree_key_pair: tuple[bytes, bytes] | None = None
        self._tree_det: DetKernel | None = None

    def super_layout(self, super_bin_count: int):
        """The §8 super-bin grouping of this epoch's bins, cached per f.

        ``super_bin_count`` is the requested number of super-bins; the
        largest divisor of the bin count not exceeding it is used (§8
        requires f to divide the bin count evenly).  Bin "uniqueness" is
        proxied by its number of cell-ids — the quantity that drives
        retrieval frequency under a uniform per-cell-id workload.
        """
        from repro.core.superbin import build_super_bins

        if super_bin_count not in self._super_layouts:
            bin_count = len(self.layout.bins)
            f = max(
                d for d in range(1, min(super_bin_count, bin_count) + 1)
                if bin_count % d == 0
            )
            uniques = [len(b.cell_ids) for b in self.layout.bins]
            self._super_layouts[super_bin_count] = build_super_bins(uniques, f)
        return self._super_layouts[super_bin_count]

    def release(self) -> None:
        """Return this context's EPC charge (drop the cached metadata)."""
        self.enclave.release_memory(self._metadata_charge)

    # --------------------------------------------------------------- filters

    def filter_group_position(self, group: tuple[str, ...]) -> int:
        """Which stored filter column corresponds to a predicate group."""
        try:
            return self.schema.filter_groups.index(group)
        except ValueError:
            raise QueryError(
                f"schema {self.schema.name!r} has no filter group {group}"
            ) from None

    def filters_for(
        self, predicate: Predicate, timestamps: Iterable[int]
    ) -> list[bytes]:
        """DET filter ciphertexts for (predicate values × timestamps).

        Table 4's "SM using the filters E_k(l|t_1) ... E_k(l|t_x)".
        """
        return self.det_kernel.encrypt_many(
            [
                self.schema.filter_plaintext_for_values(
                    predicate.group, predicate.values, t
                )
                for t in timestamps
            ]
        )

    def query_timestamps(self, start: int, end: int) -> list[int]:
        """Enumerate the discrete reading timestamps in ``[start, end]``."""
        step = self.package.time_granularity
        first = start + (-start) % step if start % step else start
        return list(range(first, end + 1, step))

    # ------------------------------------------------------------- trapdoors

    def trapdoors_for_cell_ids(
        self, cell_ids: Sequence[int], fake_ids: Sequence[int] = ()
    ) -> list[bytes]:
        """STEP 3: index-key ciphertexts for whole cell-ids plus fakes.

        Slots are deduplicated within the request (fake ids cycle when
        a range query needs more fakes than the pool holds, so one
        query can name the same fake many times), looked up in the
        service's :class:`~repro.core.trapdoor_table.TrapdoorTable`
        when one is wired, and only the remaining misses hit the DET
        kernel — in one batch.
        """
        slots: list[tuple] = [
            ("real", cid, j)
            for cid in cell_ids
            for j in range(1, self.c_tuple[cid] + 1)
        ]
        real = len(slots)
        slots.extend(("fake", fid, 0) for fid in fake_ids)
        _count_tuples(real, len(slots) - real)

        table = self.trapdoor_table
        resolved: dict[tuple, bytes] = {}
        pending: dict[tuple, None] = {}
        for slot in slots:
            if slot in resolved or slot in pending:
                continue
            if table is not None:
                cached = table.lookup((self.epoch_id, self.table_name) + slot)
                if cached is not None:
                    resolved[slot] = cached
                    continue
            pending[slot] = None
        miss_order = list(pending)
        if miss_order:
            derived = self.det_kernel.encrypt_many(
                [
                    index_plaintext(slot[1], slot[2])
                    if slot[0] == "real"
                    else fake_index_plaintext(slot[1])
                    for slot in miss_order
                ]
            )
            for slot, trapdoor in zip(miss_order, derived):
                resolved[slot] = trapdoor
                if table is not None:
                    table.insert((self.epoch_id, self.table_name) + slot, trapdoor)
        return [resolved[slot] for slot in slots]

    def trapdoors_for_bin(self, chosen: Bin) -> list[bytes]:
        """All trapdoors retrieving one point-query bin (|b| rows)."""
        return self.trapdoors_for_cell_ids(chosen.cell_ids, chosen.fake_ids())

    def oblivious_trapdoors_for_bin(self, chosen: Bin) -> list[bytes]:
        """§4.3 STEP 3: same trapdoors, via a data-independent schedule.

        Generates ``#Cmax × #max`` candidate slots plus ``#fmax`` fake
        slots for *every* bin, flags each with v ∈ {0,1} using oblivious
        comparisons, bitonic-sorts by v, and returns the v=1 prefix —
        exactly ``bin_size`` trapdoors for any bin, with an identical
        in-enclave event trace for all bins.
        """
        trace = self.enclave.trace
        cells_max = max(len(b.cell_ids) for b in self.layout.bins)
        tuples_max = max(self.c_tuple) if self.c_tuple else 0
        fakes_max = max(b.fake_count for b in self.layout.bins)
        # One event summarises the whole schedule: the slot iteration
        # order below is a fixed function of these three public maxima,
        # and each slot's flag is computed branch-free.
        trace.emit(
            "oblivious_trapdoor_schedule", cells_max, tuples_max, fakes_max
        )

        # The memoizing TrapdoorTable is deliberately bypassed here: the
        # kernel derives every candidate slot unconditionally, so the
        # schedule's memory-touch sequence stays bin-independent.  The
        # primed-HMAC amortization is trace-neutral (same per-slot work).
        slots: list[tuple[int, bytes]] = []
        cell_list = list(chosen.cell_ids) + [0] * (cells_max - len(chosen.cell_ids))
        in_bin_count = len(chosen.cell_ids)
        encrypt = self.det_kernel.encrypt
        for position in range(cells_max):
            cid = cell_list[position]
            in_bin = ((position - in_bin_count) >> 63) & 1  # 1 iff slot is used
            population = self.c_tuple[cid]
            for j in range(1, tuples_max + 1):
                within = ((population - j) >> 63) & 1 ^ 1  # 1 iff j <= population
                slots.append((in_bin & within, encrypt(index_plaintext(cid, j))))
        fake_ids = chosen.fake_ids()
        fake_count = len(fake_ids)
        for j in range(1, fakes_max + 1):
            v = ((fake_count - j) >> 63) & 1 ^ 1  # 1 iff j <= fake_count
            fid = fake_ids[j - 1] if j <= fake_count else 0
            slots.append((v, encrypt(fake_index_plaintext(fid))))

        real = sum(v for v, _ in slots[: cells_max * tuples_max])
        fake = sum(v for v, _ in slots[cells_max * tuples_max:])
        _count_tuples(real, fake)
        ordered = self._oblivious_sort(slots, key=lambda s: -s[0])
        return [ct for v, ct in ordered[: self.layout.bin_size]]

    def _oblivious_sort(self, items, key):
        """Footnote 5 of §4.3: bitonic in-EPC, column sort beyond it.

        The batch's resident footprint is estimated against the free
        EPC budget; batches that would not fit are sorted with
        Leighton's column sort, which only ever holds one column of
        the matrix resident.  In-EPC batches above a small threshold
        use the vectorised bitonic network (same compare-exchange
        sequence, numpy-applied).
        """
        estimated_bytes = _ROW_ESTIMATE_BYTES * len(items)
        available = self.enclave.config.epc_bytes - self.enclave.epc_used
        if estimated_bytes > available and len(items) > 1:
            return column_sort(items, key=key, recorder=self.enclave.trace)
        if len(items) >= _VECTOR_SORT_THRESHOLD:
            from repro.enclave.sort_np import bitonic_sort_np

            return bitonic_sort_np(items, key=key, recorder=self.enclave.trace)
        return bitonic_sort(items, key=key, recorder=self.enclave.trace)

    # ------------------------------------------------------------------ fetch

    def fetch(
        self,
        engine: StorageEngine,
        trapdoors: Sequence[bytes],
        stats: QueryStats,
        deadline=None,
        verifier=None,
        cells: Sequence[int] | None = None,
    ) -> list[Row]:
        """Submit trapdoors to the DBMS and pull the rows.

        Against a replicated engine (``supports_replicated_reads``),
        the enclave hands its ``verifier`` and the bin's cell-ids down
        so every replica attempt is verified *before* acceptance and
        failover happens at bin granularity; ``deadline`` gates the
        fetch here and every replica attempt below.
        """
        with telemetry.span(
            "enclave.fetch",
            stage="fetch",
            epoch=self.epoch_id,
            trapdoors=len(trapdoors),
        ):
            self.enclave.kill_point("enclave.kill.query")
            if deadline is not None:
                deadline.check("enclave.fetch")
            stats.trapdoors_generated += len(trapdoors)
            # The fetched batch transits the EPC (one row per trapdoor,
            # ~256 B of ciphertext each); reserve while pulling so oversized
            # bins feel the budget here rather than succeeding silently.
            with self.enclave.memory(256 * len(trapdoors)):
                if getattr(engine, "supports_replicated_reads", False):
                    # Bind the verifier to the requested cells: a replica
                    # substituting a different (valid) batch must fail
                    # verification, not just a different chain.
                    if verifier is not None and cells is not None:
                        expected = list(cells)
                        check = lambda batch: verifier(batch, expected)
                    else:
                        check = verifier
                    rows = engine.lookup_many(
                        self.table_name,
                        "index_key",
                        list(trapdoors),
                        verifier=check,
                        deadline=deadline,
                        cells=cells,
                    )
                    stats.failovers += engine.last_read_failovers
                    stats.degraded = stats.degraded or engine.degraded
                    if verifier is not None:
                        stats.verified = True
                else:
                    rows = engine.lookup_many(
                        self.table_name, "index_key", list(trapdoors)
                    )
            stats.rows_fetched += len(rows)
            return rows

    def fetch_packed(
        self,
        engine,
        chosen: Bin,
        stats: QueryStats,
        deadline=None,
        verifier=None,
    ):
        """Whole-bin columnar fetch of ``chosen`` — the vectorized STEP 3.

        Returns the engine's :class:`~repro.core.packed.PackedBin`, or
        ``None`` when no packed sidecar exists for this table (after a
        dynamic insert, a repair, or against an engine predating the
        columnar layout) — the caller then falls back to the scalar
        trapdoor fetch, which is authoritative for errors.

        ``verifier`` takes ``(packed, expected_cells)``; against a
        replicated engine it is bound to the bin's cell-ids and run on
        every replica attempt before acceptance, exactly like the
        scalar path's row verifier.
        """
        fetch = getattr(engine, "fetch_packed_bin", None)
        if fetch is None:
            return None
        with telemetry.span(
            "enclave.fetch",
            stage="fetch",
            epoch=self.epoch_id,
            trapdoors=chosen.total_tuples,
        ):
            self.enclave.kill_point("enclave.kill.query")
            if deadline is not None:
                deadline.check("enclave.fetch")
            # Same EPC charge as the scalar fetch: the bin transits the
            # enclave whole either way.
            with self.enclave.memory(256 * chosen.total_tuples):
                if getattr(engine, "supports_replicated_reads", False):
                    check = None
                    if verifier is not None:
                        expected = list(chosen.cell_ids)
                        check = lambda packed: verifier(packed, expected)
                    packed = engine.fetch_packed_bin(
                        self.table_name,
                        chosen.index,
                        verifier=check,
                        deadline=deadline,
                        cells=chosen.cell_ids,
                    )
                    if packed is None:
                        return None
                    stats.failovers += engine.last_read_failovers
                    stats.degraded = stats.degraded or engine.degraded
                    if verifier is not None:
                        stats.verified = True
                else:
                    packed = fetch(self.table_name, chosen.index)
                    if packed is None:
                        return None
            # Stats move only once the fetch is known to have gone the
            # packed way — a None fallback must leave them untouched for
            # the scalar path to account.
            stats.trapdoors_generated += chosen.total_tuples
            _count_tuples(chosen.real_tuples, chosen.fake_count)
            stats.rows_fetched += packed.row_count
            return packed

    # -------------------------------------------------------- aggregate tree

    def _tree_keys(self) -> tuple[bytes, bytes]:
        """(encryption key, MAC key) of this epoch's tree, derived once."""
        if self._tree_key_pair is None:
            from repro.core.aggtree import derive_tree_keys

            self._tree_key_pair = derive_tree_keys(self._epoch_key)
        return self._tree_key_pair

    def tree_state(self, engine):
        """``(meta, directory)`` of the engine's tree sidecar, or ``None``.

        The sealed directory is decrypted inside the enclave on first
        use and fenced on the engine's ``rewrite_generation`` exactly
        like cached bins: a rewrite (key rotation, §6 bin rewrite)
        drops the decrypted state so a stale tree can never answer
        post-rewrite queries.  ``None`` means no sidecar is available
        (legacy engine, un-sealed epoch, post-mutation) — callers fall
        back to the bin path.
        """
        fetch = getattr(engine, "fetch_agg_tree_meta", None)
        if fetch is None:
            return None
        if getattr(engine, "rewrite_in_progress", False):
            return None
        generation = getattr(engine, "rewrite_generation", 0)
        if self._tree_state is not None and self._tree_state[0] == generation:
            return self._tree_state[1]
        meta = fetch(self.table_name)
        if meta is None:
            self._tree_state = (generation, None)
            return None
        from repro.core.aggtree import decode_directory

        try:
            directory = decode_directory(
                self.nd.decrypt(meta.enc_directory), meta.entity_count
            )
        except (DecryptionError, EpochError) as error:
            raise IntegrityViolation(
                f"tree directory fails authenticated decryption: {error}",
                epoch_id=self.epoch_id,
                table=self.table_name,
                kind="undecryptable",
            ) from error
        state = (meta, directory)
        self._tree_state = (generation, state)
        return state

    def tree_entity_for(self, meta, directory, index_values) -> tuple[int, bool]:
        """``(entity, present)`` for one index-value combination.

        An absent combination resolves — inside the enclave — to a
        decoy entity whose nodes are fetched exactly like a real
        entity's (the host-visible access is a uniform entity index
        either way); ``present=False`` tells the executor to discard
        the decoy's decoded values and answer "no matching records".
        """
        from repro.core.aggtree import combo_digest, decoy_entity

        _, mac_key = self._tree_keys()
        digest = combo_digest(mac_key, tuple(index_values))
        entity = directory.get(digest[:16])
        if entity is not None:
            return entity, True
        return decoy_entity(digest, meta.entity_count), False

    def fetch_tree_nodes(
        self, engine, meta, coords, stats: QueryStats, deadline=None,
        verify: bool = False,
    ):
        """Pull encrypted tree nodes by coordinate; ``None`` = fall back.

        The replicated twin of :meth:`fetch_packed`: against a
        replicated engine the node verifier (authenticated decode bound
        to the requested coordinates) runs on every replica attempt
        before acceptance, so a tampered replica costs a failover, not
        the query.  Node count rides on the span and the stats — it is
        a pure function of the public range decomposition.
        """
        fetch = getattr(engine, "fetch_tree_nodes", None)
        if fetch is None:
            return None
        with telemetry.span(
            "enclave.fetch",
            stage="tree_fetch",
            epoch=self.epoch_id,
            nodes=len(coords),
        ):
            self.enclave.kill_point("enclave.kill.query")
            if deadline is not None:
                deadline.check("enclave.fetch")
            with self.enclave.memory(meta.node_width * len(coords)):
                if getattr(engine, "supports_replicated_reads", False):
                    check = None
                    if verify:
                        check = lambda nodes: self.decode_tree_nodes(
                            meta, coords, nodes
                        )
                    nodes = engine.fetch_tree_nodes(
                        self.table_name,
                        coords,
                        verifier=check,
                        deadline=deadline,
                    )
                    if nodes is None:
                        return None
                    stats.failovers += engine.last_read_failovers
                    stats.degraded = stats.degraded or engine.degraded
                    if verify:
                        stats.verified = True
                else:
                    nodes = fetch(self.table_name, coords)
                    if nodes is None:
                        return None
            stats.rows_fetched += len(coords)
            return nodes

    def decode_tree_nodes(self, meta, coords, nodes):
        """Authenticate and decode fetched tree nodes.

        Returns ``[(count, [(sum, min, max), ...]), ...]`` aligned with
        ``coords``.  Every failure mode — flipped ciphertext byte (SIV
        authentication), substituted node (position header), dropped or
        duplicated node (batch length), cross-epoch replay (fresh tree
        key) — raises a structured :class:`IntegrityViolation`; the
        tree path never returns silently wrong aggregates.
        """
        verifications = telemetry.counter(
            "concealer_hashchain_verifications_total",
            "hash-chain verifications of fetched row batches, by outcome",
            labels=("result",),
        )
        with telemetry.span(
            "enclave.verify",
            stage="tree_verify",
            epoch=self.epoch_id,
            nodes=len(coords),
        ):
            try:
                decoded = self._decode_tree_nodes(meta, coords, nodes)
            except IntegrityViolation as violation:
                verifications.labels(result="violation").inc()
                telemetry.counter(
                    "concealer_integrity_violations_total",
                    "structured integrity-verification failures, by kind",
                    labels=("kind",),
                ).labels(kind=violation.kind).inc()
                raise
            verifications.labels(result="ok").inc()
            return decoded

    def _decode_tree_nodes(self, meta, coords, nodes):
        from repro.core.aggtree import decode_node

        if len(nodes) != len(coords):
            raise IntegrityViolation(
                f"tree node batch has {len(nodes)} nodes, "
                f"{len(coords)} were requested (dropped or duplicated)",
                epoch_id=self.epoch_id,
                table=self.table_name,
                kind="missing-node",
            )
        enc_key, mac_key = self._tree_keys()
        if self._tree_det is None:
            self._tree_det = DetKernel(enc_key)
        plaintexts = self._tree_det.decrypt_many(list(nodes), errors="none")
        decoded = []
        for (entity, level, index), plaintext in zip(coords, plaintexts):
            if plaintext is None:
                raise IntegrityViolation(
                    f"tree node ({entity},{level},{index}) fails "
                    "authenticated decryption — the stored node was "
                    "tampered with or replayed across epochs",
                    epoch_id=self.epoch_id,
                    table=self.table_name,
                    kind="undecryptable",
                )
            try:
                decoded.append(
                    decode_node(
                        mac_key, plaintext, entity, level, index,
                        len(meta.targets),
                    )
                )
            except ValueError as error:
                raise IntegrityViolation(
                    f"tree node ({entity},{level},{index}): {error}",
                    epoch_id=self.epoch_id,
                    table=self.table_name,
                    kind="tree-node",
                ) from error
        return decoded

    # ----------------------------------------------------------- verification

    def verify_rows(
        self, rows: Sequence[Row], expected_cells: Sequence[int] | None = None
    ) -> None:
        """STEP 4 (optional): hash-chain verification of fetched rows.

        The enclave decrypts each real row's index key to recover
        ``(cid, counter)``, orders rows per cell-id by counter, rebuilds
        the per-column chains and compares against the sealed tags.
        Raises a structured :class:`IntegrityViolation` (an
        :class:`~repro.exceptions.IntegrityError` subclass carrying the
        epoch, table, cell-id, and violation kind) on any inconsistency.

        ``expected_cells`` binds the response to the *request*: every
        named cell-id with a non-zero population must appear in the
        batch.  Without it, a Byzantine replica replaying a different
        bin's (internally consistent) batch would verify cleanly while
        silently under-counting — per-cell chains prove each present
        cell is whole, not that the right cells are present.
        """
        verifications = telemetry.counter(
            "concealer_hashchain_verifications_total",
            "hash-chain verifications of fetched row batches, by outcome",
            labels=("result",),
        )
        # Row count here is the *fetched* volume — public-size by the
        # volume-hiding argument — so it may ride on the span.
        with telemetry.span(
            "enclave.verify", stage="verify", epoch=self.epoch_id, rows=len(rows)
        ):
            try:
                self._verify_rows(rows, expected_cells)
            except IntegrityViolation as violation:
                verifications.labels(result="violation").inc()
                telemetry.counter(
                    "concealer_integrity_violations_total",
                    "structured integrity-verification failures, by kind",
                    labels=("kind",),
                ).labels(kind=violation.kind).inc()
                raise
            verifications.labels(result="ok").inc()

    def _verify_rows(
        self, rows: Sequence[Row], expected_cells: Sequence[int] | None = None
    ) -> None:
        from repro.core.schema import unpad_plaintext

        column_count = len(self.schema.filter_groups) + 1
        per_cid: dict[int, list[tuple[int, Row]]] = {}
        # Index keys are decoded in one kernel batch (the count is the
        # public fetched volume); a None marks a row whose index key did
        # not authenticate — tampering, reported per offending row.
        plaintexts = self.det_kernel.decrypt_many(
            [row[-1] for row in rows], errors="none"
        )
        for row, plaintext in zip(rows, plaintexts):
            if plaintext is None:
                raise IntegrityViolation(
                    f"row {row.row_id}: index key fails decryption — the "
                    "stored ciphertext was tampered with",
                    epoch_id=self.epoch_id,
                    table=self.table_name,
                    kind="undecryptable",
                )
            parts = unpad_plaintext(plaintext).split(b"\x1f")
            if parts[0] != b"idx":
                continue  # fake rows are not covered by per-cid tags
            per_cid.setdefault(int(parts[1]), []).append((int(parts[2]), row))

        if expected_cells is not None:
            for cid in expected_cells:
                if self.c_tuple[cid] > 0 and cid not in per_cid:
                    raise IntegrityViolation(
                        f"cell {cid}: requested but absent from the response "
                        "batch (a substituted or replayed answer)",
                        epoch_id=self.epoch_id,
                        cell_id=cid,
                        table=self.table_name,
                        kind="missing-cell",
                    )

        for cid, numbered in per_cid.items():
            numbered.sort(key=lambda pair: pair[0])
            counters = [c for c, _ in numbered]
            if counters != list(range(1, self.c_tuple[cid] + 1)):
                raise IntegrityViolation(
                    f"cell {cid}: expected counters 1..{self.c_tuple[cid]}, "
                    f"observed {counters[:5]}... (rows dropped, duplicated, "
                    "or replayed)",
                    epoch_id=self.epoch_id,
                    cell_id=cid,
                    table=self.table_name,
                    kind="counter-gap",
                )
            # Per-column chains fold in one kernel batch.  Uncounted:
            # the fold count is the *real*-row volume, which is exactly
            # what volume hiding keeps from the host.
            chains = batch_chain_extend(
                [CHAIN_INIT] * column_count,
                [
                    [row[position] for _, row in numbered]
                    for position in range(column_count)
                ],
                counted=False,
            )
            tag = self.package.enc_tags.get(cid)
            if tag is None:
                raise IntegrityViolation(
                    f"cell {cid}: no verifiable tag shipped",
                    epoch_id=self.epoch_id,
                    cell_id=cid,
                    table=self.table_name,
                    kind="missing-tag",
                )
            for position, sealed in enumerate(tag):
                expected = self.nd.decrypt(sealed)
                if expected != chains[position]:
                    raise IntegrityViolation(
                        f"cell {cid}: column {position} hash chain mismatch",
                        epoch_id=self.epoch_id,
                        cell_id=cid,
                        table=self.table_name,
                        kind="chain-mismatch",
                    )

    def verify_packed(
        self,
        packed_bins: Sequence,
        expected_cells: Sequence[int] | None = None,
        keep=None,
    ) -> None:
        """Hash-chain verification of packed bins — the columnar twin of
        :meth:`verify_rows`, same counters, same violation taxonomy.

        ``keep`` is an optional boolean mask over the concatenated rows
        (multipoint queries dedup *before* verifying, exactly like the
        scalar path tolerates tamper-duplicates at that stage).
        """
        verifications = telemetry.counter(
            "concealer_hashchain_verifications_total",
            "hash-chain verifications of fetched row batches, by outcome",
            labels=("result",),
        )
        total = sum(pb.row_count for pb in packed_bins)
        rows = int(keep.sum()) if keep is not None else total
        with telemetry.span(
            "enclave.verify", stage="verify", epoch=self.epoch_id, rows=rows
        ):
            try:
                self._verify_packed(packed_bins, expected_cells, keep)
            except IntegrityViolation as violation:
                verifications.labels(result="violation").inc()
                telemetry.counter(
                    "concealer_integrity_violations_total",
                    "structured integrity-verification failures, by kind",
                    labels=("kind",),
                ).labels(kind=violation.kind).inc()
                raise
            verifications.labels(result="ok").inc()

    def _verify_packed(
        self,
        packed_bins: Sequence,
        expected_cells: Sequence[int] | None = None,
        keep=None,
    ) -> None:
        from repro.core.schema import unpad_plaintext

        column_count = len(self.schema.filter_groups) + 1
        # One flat batch of (kept) index keys across all bins.  Cells
        # are materialised by plain slicing, never through numpy element
        # access (S-dtype strips trailing NULs from ciphertext bytes).
        refs: list[tuple[object, int]] = []
        index_keys: list[bytes] = []
        offset = 0
        for pb in packed_bins:
            keys = pb.column_cells(len(pb.columns) - 1)
            for j in range(pb.row_count):
                if keep is None or keep[offset + j]:
                    refs.append((pb, j))
                    index_keys.append(keys[j])
            offset += pb.row_count
        plaintexts = self.det_kernel.decrypt_many(index_keys, errors="none")
        per_cid: dict[int, list[tuple[int, object, int]]] = {}
        for (pb, j), plaintext in zip(refs, plaintexts):
            if plaintext is None:
                raise IntegrityViolation(
                    f"row {pb.row_ids[j]}: index key fails decryption — the "
                    "stored ciphertext was tampered with",
                    epoch_id=self.epoch_id,
                    table=self.table_name,
                    kind="undecryptable",
                )
            parts = unpad_plaintext(plaintext).split(b"\x1f")
            if parts[0] != b"idx":
                continue  # fake rows are not covered by per-cid tags
            per_cid.setdefault(int(parts[1]), []).append((int(parts[2]), pb, j))

        if expected_cells is not None:
            for cid in expected_cells:
                if self.c_tuple[cid] > 0 and cid not in per_cid:
                    raise IntegrityViolation(
                        f"cell {cid}: requested but absent from the response "
                        "batch (a substituted or replayed answer)",
                        epoch_id=self.epoch_id,
                        cell_id=cid,
                        table=self.table_name,
                        kind="missing-cell",
                    )

        for cid, numbered in per_cid.items():
            numbered.sort(key=lambda item: item[0])
            counters = [c for c, _, _ in numbered]
            if counters != list(range(1, self.c_tuple[cid] + 1)):
                raise IntegrityViolation(
                    f"cell {cid}: expected counters 1..{self.c_tuple[cid]}, "
                    f"observed {counters[:5]}... (rows dropped, duplicated, "
                    "or replayed)",
                    epoch_id=self.epoch_id,
                    cell_id=cid,
                    table=self.table_name,
                    kind="counter-gap",
                )
            chains = batch_chain_extend(
                [CHAIN_INIT] * column_count,
                [
                    [pb.cell(j, position) for _, pb, j in numbered]
                    for position in range(column_count)
                ],
                counted=False,
            )
            tag = self.package.enc_tags.get(cid)
            if tag is None:
                raise IntegrityViolation(
                    f"cell {cid}: no verifiable tag shipped",
                    epoch_id=self.epoch_id,
                    cell_id=cid,
                    table=self.table_name,
                    kind="missing-tag",
                )
            for position, sealed in enumerate(tag):
                expected = self.nd.decrypt(sealed)
                if expected != chains[position]:
                    raise IntegrityViolation(
                        f"cell {cid}: column {position} hash chain mismatch",
                        epoch_id=self.epoch_id,
                        cell_id=cid,
                        table=self.table_name,
                        kind="chain-mismatch",
                    )

    def _decode_index_key(self, row: Row) -> tuple[int, int] | None:
        """Recover (cid, counter) from a row's index key; None for fakes."""
        from repro.core.schema import unpad_plaintext

        plaintext = unpad_plaintext(self.det_kernel.decrypt(row[-1]))
        parts = plaintext.split(b"\x1f")
        if parts[0] == b"idx":
            return int(parts[1]), int(parts[2])
        return None

    def is_fake_row(self, row: Row) -> bool:
        """Whether a fetched row is one of the provider's fakes."""
        return self._decode_index_key(row) is None

    # ------------------------------------------------------------- filtering

    def match_rows(
        self,
        rows: Sequence[Row],
        filters: Sequence[bytes],
        group: tuple[str, ...],
        stats: QueryStats,
    ) -> list[Row]:
        """Plain (Concealer) string-matching of rows against filters."""
        position = self.filter_group_position(group)
        filter_set = set(filters)
        matched = [row for row in rows if row[position] in filter_set]
        stats.rows_matched += len(matched)
        return matched

    def packed_dedup_keep(self, packed_bins: Sequence):
        """First-occurrence keep mask over concatenated packed rows.

        Deduplicates by index-key ciphertext — the columnar twin of the
        multipoint path's pre-verification dedup.  Fixed-width S-dtype
        equality is exact here: two distinct ``w``-byte strings cannot
        compare equal under trailing-NUL stripping at width ``w``.
        """
        import numpy as np

        keys = self._packed_column_array(packed_bins, -1)
        _, first = np.unique(keys, return_index=True)
        kept = np.zeros(len(keys), dtype=bool)
        kept[first] = True
        return kept

    def match_packed(
        self,
        packed_bins: Sequence,
        filters: Sequence[bytes],
        group: tuple[str, ...],
        stats: QueryStats,
        keep=None,
    ):
        """Vectorized STEP 4 over packed bins: one ``np.isin`` instead of
        a per-row set probe.  Returns the boolean match mask over the
        concatenated rows (ANDed with ``keep`` when given)."""
        import numpy as np

        position = self.filter_group_position(group)
        cells = self._packed_column_array(packed_bins, position)
        # A filter of a different byte-length can never equal a stored
        # cell; drop such filters rather than let S-dtype truncate them
        # into spurious matches.
        width = cells.dtype.itemsize
        usable = [f for f in filters if len(f) == width]
        if usable:
            mask = np.isin(cells, np.array(usable, dtype=cells.dtype))
        else:
            mask = np.zeros(len(cells), dtype=bool)
        if keep is not None:
            mask &= keep
        stats.rows_matched += int(mask.sum())
        return mask

    def _packed_column_array(self, packed_bins: Sequence, column: int):
        """One column of every bin as a flat fixed-width numpy array.

        Used for *equality only* (isin/unique); byte materialisation
        always goes through :meth:`PackedBin.cell` slicing because
        S-dtype element access strips trailing NULs.
        """
        import numpy as np

        arrays = [
            np.frombuffer(
                pb.columns[column], dtype=f"S{pb.column_widths[column]}"
            )
            for pb in packed_bins
        ]
        return arrays[0] if len(arrays) == 1 else np.concatenate(arrays)

    def match_rows_oblivious(
        self,
        rows: Sequence[Row],
        filters: Sequence[bytes],
        group: tuple[str, ...],
        stats: QueryStats,
    ) -> list[Row]:
        """§4.3 STEP 4: oblivious filtering.

        Every row is compared against *every* filter; the match flag is
        folded branch-free so the trace never reveals which filter
        hit.  Rows are then bitonic-sorted by flag (matches first) and
        the matched prefix is returned.  The in-enclave event trace
        depends only on ``(len(rows), len(filters))``.
        """
        trace = self.enclave.trace
        position = self.filter_group_position(group)
        trace.emit("oblivious_filter", len(rows), len(filters))
        # Pre-decode filters once; per (row, filter) the comparison is a
        # single full-width big-integer XOR (branch-free), and the flag
        # folds in with bitwise OR.
        filter_ints = [int.from_bytes(f, "big") for f in filters]
        max_width = max((len(f) for f in filters), default=0)
        if rows:
            max_width = max(max_width, len(rows[0][position]))
        shift = 8 * max_width + 8
        flagged: list[tuple[int, Row]] = []
        for row in rows:
            cell = int.from_bytes(row[position], "big")
            v = 0
            for filter_int in filter_ints:
                diff = cell ^ filter_int
                v |= ((-diff) >> shift) & 1 ^ 1  # 1 iff diff == 0
            flagged.append((v, row))
        ordered = self._oblivious_sort(flagged, key=lambda fr: -fr[0])
        matched_count = sum(v for v, _ in flagged)
        stats.rows_matched += matched_count
        return [row for _, row in ordered[:matched_count]]

    # ------------------------------------------------------------ decryption

    def decrypt_record(self, row: Row) -> tuple:
        """Decrypt one row's payload back into a record tuple."""
        plaintext = self.det.decrypt(row[len(self.schema.filter_groups)])
        return self.schema.decode_payload(plaintext)

    def decrypt_records(self, rows: Sequence[Row], stats: QueryStats) -> list[tuple]:
        """Decrypt payloads (skipping any fake rows defensively).

        Batched through the DET kernel with ``counted=False``: the
        number of matched-and-decrypted rows is data-dependent, so it
        must not feed a public-size kernel counter.
        """
        # No row count on this span: matched-row volume is the answer
        # volume (data-dependent).  The span itself is fine — every query
        # has exactly one decrypt stage, a public fact.
        with telemetry.span("enclave.decrypt", stage="decrypt", epoch=self.epoch_id):
            position = len(self.schema.filter_groups)
            plaintexts = self.det_kernel.decrypt_many(
                [row[position] for row in rows], errors="none", counted=False
            )
            records = [
                self.schema.decode_payload(plaintext)
                for plaintext in plaintexts
                if plaintext is not None  # a fake that slipped through matching
            ]
            stats.rows_decrypted += len(records)
            return records

    def decrypt_packed_records(
        self, packed_bins: Sequence, mask, stats: QueryStats
    ) -> list[tuple]:
        """Decrypt the mask-selected payload cells of packed bins.

        Row order is the concatenated bin order — identical to the
        scalar path's fetched-row order, so answers stay byte-for-byte
        comparable.  Same span/stats discipline as
        :meth:`decrypt_records`.
        """
        with telemetry.span("enclave.decrypt", stage="decrypt", epoch=self.epoch_id):
            import numpy as np

            position = len(self.schema.filter_groups)
            selected = np.nonzero(mask)[0]
            payloads: list[bytes] = []
            offset = 0
            for pb in packed_bins:
                width = pb.column_widths[position]
                blob = pb.columns[position]
                end = offset + pb.row_count
                local = selected[(selected >= offset) & (selected < end)] - offset
                payloads.extend(
                    blob[j * width : (j + 1) * width] for j in local.tolist()
                )
                offset = end
            plaintexts = self.det_kernel.decrypt_many(
                payloads, errors="none", counted=False
            )
            records = [
                self.schema.decode_payload(plaintext)
                for plaintext in plaintexts
                if plaintext is not None
            ]
            stats.rows_decrypted += len(records)
            return records

