"""Query model: aggregations over point and range predicates (Table 4).

Concealer deliberately supports a *limited* query surface (§1, R3):
aggregations — count, sum, min/max, average, top-k — over selections on
index attributes and time ranges.  This module defines the immutable
query objects the client sends (encrypted) to the service provider.

Filter predicates are separate from grid placement.  A query like
Table 4's Q4 ("which locations saw observation ``o_i`` between
``t_1..t_x``") grids by *location* but filters by *observation*: its
``index_values`` enumerate all candidate locations while its
``predicate`` string-matches the observation filter column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.exceptions import QueryError


class Aggregate(str, Enum):
    """The aggregation operators of §2.2 Phase 2.

    ``DISTINCT_COUNT`` implements the intro's "count of distinct
    visitors to a region" application: the number of different values
    of the target attribute among the matching rows.
    """

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"
    TOP_K = "top_k"
    DISTINCT_COUNT = "distinct_count"
    COLLECT = "collect"  # return matching (decrypted) records


# Aggregates that can be answered by string-matching filter ciphertexts
# alone — no payload decryption needed (Table 4: "No decryption needed";
# Exp 8 shows count queries ~36-40% faster for this reason).
MATCH_ONLY_AGGREGATES = frozenset({Aggregate.COUNT})


@dataclass(frozen=True)
class Predicate:
    """A filter-column match: which group, and the non-time values.

    ``group`` must be one of the schema's ``filter_groups``; ``values``
    are the group's non-time attribute values in group order.  The
    executor expands the predicate into per-timestamp DET filters.
    """

    group: tuple[str, ...]
    values: tuple

    def __post_init__(self):
        if len(self.values) != len(self.group):
            raise QueryError(
                f"predicate on group {self.group} needs {len(self.group)} "
                f"values, got {len(self.values)}"
            )


@dataclass(frozen=True)
class PointQuery:
    """An aggregation at one (index-values, timestamp) point.

    ``index_values`` are concrete values for every index attribute of
    the schema, in schema order — they drive grid-cell identification
    (STEP 1 of Algorithm 2).  ``predicate`` defaults to matching the
    first filter group on the index values.
    """

    index_values: tuple
    timestamp: int
    aggregate: Aggregate = Aggregate.COUNT
    predicate: Predicate | None = None
    target: str | None = None
    k: int = 1

    def __post_init__(self):
        _check_aggregate(self.aggregate, self.target)


@dataclass(frozen=True)
class RangeQuery:
    """An aggregation over a closed time range ``[time_start, time_end]``.

    Each slot of ``index_values`` is either a concrete value or a tuple
    of candidate values (Q2/Q3/Q4 span *all* locations: pass the full
    location domain).  The executor forms the cross-product of
    candidates when identifying cells.
    """

    index_values: tuple
    time_start: int
    time_end: int
    aggregate: Aggregate = Aggregate.COUNT
    predicate: Predicate | None = None
    target: str | None = None
    k: int = 1

    def __post_init__(self):
        if self.time_end < self.time_start:
            raise QueryError("range end precedes start")
        _check_aggregate(self.aggregate, self.target)

    def candidate_combinations(self) -> list[tuple]:
        """Expand wildcard slots into the concrete index-value tuples."""
        combos: list[list] = [[]]
        for slot in self.index_values:
            options = list(slot) if isinstance(slot, (tuple, list)) else [slot]
            combos = [prefix + [opt] for prefix in combos for opt in options]
        return [tuple(c) for c in combos]


def _check_aggregate(aggregate: Aggregate, target: str | None) -> None:
    needs_target = aggregate in (
        Aggregate.SUM,
        Aggregate.MIN,
        Aggregate.MAX,
        Aggregate.AVG,
        Aggregate.TOP_K,
        Aggregate.DISTINCT_COUNT,
    )
    if needs_target and target is None:
        raise QueryError(f"aggregate {aggregate.value} requires a target attribute")


@dataclass
class QueryStats:
    """Execution-side accounting a benchmark or test can inspect.

    ``rows_fetched`` is the adversary-observable volume; the *_matched
    counts are enclave-internal.
    """

    trapdoors_generated: int = 0
    rows_fetched: int = 0
    rows_matched: int = 0
    rows_decrypted: int = 0
    bins_fetched: int = 0
    verified: bool = False
    oblivious: bool = False
    # Replication health of the serving read path: how many replica
    # failovers the query absorbed, and whether it was served below the
    # healthy-replica threshold.  Both are public-size (fault-driven).
    degraded: bool = False
    failovers: int = 0
    # Whole-bin cache accounting (repro.batching).  Hit/miss counts are
    # per *bin* — the public retrieval unit — and ``rows_from_cache``
    # the rows those hits served without a storage round-trip.  All
    # public-size: residency is a pure function of the bin-identity
    # sequence the storage log already shows.
    cache_hits: int = 0
    cache_misses: int = 0
    rows_from_cache: int = 0
    extra: dict = field(default_factory=dict)
