"""The §3 grid: keyed placement of tuples into cells and cell-ids.

Algorithm 1's setup stage builds, per epoch, a grid with one axis per
index attribute plus a final *time* axis of ``y`` subintervals.  Each
attribute value is mapped onto its axis with the keyed hash ``H``
(:func:`repro.crypto.prf.hash_to_range`), and each of the ``x·y`` cells
is allocated one of ``u < x·y`` *cell-ids* — the retrieval granularity:
queries never fetch by value, they fetch by cell-id, which is why no
fine-grained per-(location, time) statistics ever need to be stored.

The grid is a pure function of ``(spec, secret key, epoch id)``: the
data provider and the enclave compute identical placements without
exchanging anything beyond the spec, which is public metadata
(part of the paper's setup leakage ``L_s``).

The WiFi deployment in §9.1 used a 490×16,000 grid with 87,000
cell-ids; the TPC-H deployment used 112,000×7 (2-D) and
1,500×100×10×7 (4-D) grids.  Time is always the last axis; schemas
without a meaningful time axis use one subinterval.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.core.schema import DatasetSchema, encode_value
from repro.crypto.prf import Prf
from repro.exceptions import QueryError


def derive_grid_key(master_key: bytes, epoch_id: int) -> bytes:
    """The per-epoch placement secret: ``PRF(s_k)("grid", eid)``."""
    return Prf(master_key)("grid", epoch_id)


@dataclass(frozen=True)
class GridSpec:
    """Public grid geometry.

    ``dimension_sizes`` gives the axis lengths in the order
    ``schema.grid_dimensions()`` — index attributes first, time last.
    ``cell_id_count`` is ``u``, the number of cell-ids spread over the
    cells.  ``epoch_duration`` is ``|T|`` in time units; the time axis
    splits it into ``dimension_sizes[-1]`` equal subintervals.
    """

    dimension_sizes: tuple[int, ...]
    cell_id_count: int
    epoch_duration: int
    # Cell-id allocation policy.  The paper only requires u < x·y ids
    # "allocated over the grid" (its Table 2b even shares one id across
    # time rows).  Random allocation scatters each id across the whole
    # epoch, so fetching the ids of one time window drags in rows from
    # every other window — winSecRange and eBPB over-fetch massively.
    # Time-local allocation partitions the ids among time coordinates
    # (each id's cells share one subinterval coordinate), making window
    # fetches tight.  A reproduction improvement; set False for the
    # paper-faithful scatter.
    time_local_cell_ids: bool = True

    def __post_init__(self):
        if len(self.dimension_sizes) < 1:
            raise ValueError("grid needs at least the time dimension")
        if any(size < 1 for size in self.dimension_sizes):
            raise ValueError("grid dimensions must be positive")
        if self.cell_id_count < 1:
            raise ValueError("cell_id_count must be positive")
        if self.cell_id_count > self.total_cells:
            raise ValueError(
                f"cell_id_count {self.cell_id_count} exceeds cell count "
                f"{self.total_cells} (paper requires u < x*y)"
            )
        if self.epoch_duration < 1:
            raise ValueError("epoch duration must be positive")

    @property
    def total_cells(self) -> int:
        """x·y·…: the number of grid cells."""
        return math.prod(self.dimension_sizes)

    @property
    def time_buckets(self) -> int:
        """y: the number of time subintervals (last axis)."""
        return self.dimension_sizes[-1]

    @property
    def subinterval_duration(self) -> float:
        """How much wall-clock time one time bucket covers."""
        return self.epoch_duration / self.time_buckets


class Grid:
    """Keyed tuple→cell→cell-id placement for one epoch.

    >>> from repro.core.schema import WIFI_SCHEMA
    >>> spec = GridSpec(dimension_sizes=(4, 8), cell_id_count=16,
    ...                 epoch_duration=3600)
    >>> grid = Grid(spec, WIFI_SCHEMA, key=b"\\x03" * 32, epoch_id=0)
    >>> 0 <= grid.place(("ap1", 120, "dev1")) < 16
    True
    """

    def __init__(
        self,
        spec: GridSpec,
        schema: DatasetSchema,
        key: bytes,
        epoch_id: int,
        grid_key: bytes | None = None,
    ):
        """``grid_key`` (when given) fixes the placement secret directly;
        otherwise it is derived from ``key`` (the master secret) and the
        epoch id.  An explicit grid key is what keeps placements stable
        across master-key rotation — the key that *places* data need not
        be the key that *encrypts* it."""
        expected_axes = len(schema.grid_dimensions())
        if len(spec.dimension_sizes) != expected_axes:
            raise ValueError(
                f"schema {schema.name!r} needs {expected_axes} grid axes "
                f"({schema.grid_dimensions()}), spec has "
                f"{len(spec.dimension_sizes)}"
            )
        self.spec = spec
        self.schema = schema
        self.epoch_id = epoch_id
        self._prf = Prf(grid_key if grid_key is not None
                        else derive_grid_key(key, epoch_id))
        self._axes = schema.grid_dimensions()
        # Placement memos.  Both mappings are keyed PRF outputs, fixed
        # for the grid's lifetime, and axis values repeat massively
        # (every record of a location hits the same coordinate), so the
        # ingest/query hot paths would otherwise recompute identical
        # HMACs millions of times.  Bounded so adversarial value streams
        # cannot grow them without limit (see SECURITY.md on timing).
        self._coord_cache: dict[tuple[int, object], int] = {}
        self._cid_cache: dict[int, int] = {}

    _COORD_CACHE_MAX = 4096

    # ------------------------------------------------------------ placement

    def time_bucket(self, timestamp: int) -> int:
        """The (pre-hash) subinterval index of a timestamp within the epoch."""
        offset = timestamp - self.epoch_id
        if offset < 0 or offset >= self.spec.epoch_duration:
            raise QueryError(
                f"timestamp {timestamp} outside epoch "
                f"[{self.epoch_id}, {self.epoch_id + self.spec.epoch_duration})"
            )
        return int(offset * self.spec.time_buckets // self.spec.epoch_duration)

    def _axis_coord(self, axis_index: int, value) -> int:
        """Hash one attribute value onto its axis (memoized)."""
        cache_key = (axis_index, value)
        coord = self._coord_cache.get(cache_key)
        if coord is None:
            size = self.spec.dimension_sizes[axis_index]
            coord = self._prf.to_int(b"axis", axis_index, encode_value(value)) % size
            if len(self._coord_cache) >= self._COORD_CACHE_MAX:
                self._coord_cache.clear()
            self._coord_cache[cache_key] = coord
        return coord

    def coords_for(self, index_values: Sequence, timestamp: int) -> tuple[int, ...]:
        """Grid coordinates for explicit index-attribute values + time."""
        if len(index_values) != len(self._axes) - 1:
            raise QueryError(
                f"expected {len(self._axes) - 1} index values, "
                f"got {len(index_values)}"
            )
        coords = [
            self._axis_coord(i, value) for i, value in enumerate(index_values)
        ]
        bucket = self.time_bucket(timestamp)
        coords.append(self._axis_coord(len(self._axes) - 1, bucket))
        return tuple(coords)

    def coords(self, record: Sequence) -> tuple[int, ...]:
        """Grid coordinates of a record."""
        index_values = [
            self.schema.value(record, attr) for attr in self.schema.index_attributes
        ]
        return self.coords_for(index_values, self.schema.time_of(record))

    def flat_index(self, coords: Sequence[int]) -> int:
        """Row-major flattening of grid coordinates."""
        flat = 0
        for size, coord in zip(self.spec.dimension_sizes, coords):
            if coord < 0 or coord >= size:
                raise QueryError(f"coordinate {coord} out of axis range {size}")
            flat = flat * size + coord
        return flat

    def time_axis_coord(self, bucket: int) -> int:
        """The time-axis coordinate a subinterval index hashes to."""
        return self._axis_coord(len(self._axes) - 1, bucket)

    def cell_id_of(self, flat: int) -> int:
        """The cell-id allocated to a flat cell index (keyed, deterministic).

        With ``time_local_cell_ids`` (default) the ``u`` ids are split
        into contiguous blocks, one per time coordinate, and a cell
        draws pseudo-randomly from its own coordinate's block — so an
        id's tuples never straddle subinterval coordinates.
        """
        cid = self._cid_cache.get(flat)
        if cid is not None:
            return cid
        u = self.spec.cell_id_count
        if not self.spec.time_local_cell_ids:
            cid = self._prf.to_int(b"cid-alloc", flat) % u
        else:
            y = self.spec.dimension_sizes[-1]
            time_coord = flat % y
            base = (time_coord * u) // y
            span = max(1, ((time_coord + 1) * u) // y - base)
            cid = base + self._prf.to_int(b"cid-alloc", flat) % span
        if len(self._cid_cache) >= self._COORD_CACHE_MAX:
            self._cid_cache.clear()
        self._cid_cache[flat] = cid
        return cid

    def place(self, record: Sequence) -> int:
        """Record → cell-id (Algorithm 1, Cell-Formation)."""
        return self.cell_id_of(self.flat_index(self.coords(record)))

    def place_values(self, index_values: Sequence, timestamp: int) -> int:
        """Explicit values → cell-id (query-side STEP 1 of Algorithm 2)."""
        return self.cell_id_of(self.flat_index(self.coords_for(index_values, timestamp)))

    # ------------------------------------------------------------- vectors

    def cell_id_vector(self) -> list[int]:
        """The ``cell_id[]`` vector of Algorithm 1 (length x·y)."""
        return [self.cell_id_of(flat) for flat in range(self.spec.total_cells)]

    # ---------------------------------------------------------- range helpers

    def time_buckets_for_range(self, start: int, end: int) -> list[int]:
        """Distinct subinterval indices covering ``[start, end]`` (inclusive)."""
        if end < start:
            raise QueryError("range end precedes start")
        first = self.time_bucket(start)
        last = self.time_bucket(end)
        return list(range(first, last + 1))

    def cells_for_range(
        self, index_values: Sequence, start: int, end: int
    ) -> list[tuple[int, ...]]:
        """Grid cells covering a time range for fixed index values.

        One cell per covered subinterval — the "ℓ cells" of §5.
        """
        coords_prefix = [
            self._axis_coord(i, value) for i, value in enumerate(index_values)
        ]
        time_axis = len(self._axes) - 1
        cells = []
        for bucket in self.time_buckets_for_range(start, end):
            cells.append(tuple(coords_prefix + [self._axis_coord(time_axis, bucket)]))
        return cells

    def cell_ids_for_range(
        self, index_values: Sequence, start: int, end: int
    ) -> list[int]:
        """Distinct cell-ids covering a time range (order-preserving)."""
        seen: list[int] = []
        for cell in self.cells_for_range(index_values, start, end):
            cid = self.cell_id_of(self.flat_index(cell))
            if cid not in seen:
                seen.append(cid)
        return seen

    def iter_flat_cells(self) -> Iterator[int]:
        """All flat cell indices (used when building per-cell statistics)."""
        return iter(range(self.spec.total_cells))
