"""Algorithm 2: bin-packing-based (BPB) point-query execution.

The four steps, run inside the enclave:

- **STEP 0** bins exist (built once per epoch by the
  :class:`~repro.core.context.EpochContext`);
- **STEP 1** hash the query's index values and timestamp to a grid
  cell and read its cell-id from ``cell_id[]``;
- **STEP 2** find the bin containing that cell-id;
- **STEP 3** formulate one DET trapdoor per (cell-id, counter) of the
  bin plus the bin's fake-tuple trapdoors — exactly ``|b|`` trapdoors
  no matter which bin, which is the volume-hiding guarantee;
- **STEP 4** optionally verify hash chains, string-match the fetched
  rows against the query filters, decrypt only what the aggregate
  needs, and aggregate.

``oblivious=True`` selects the §4.3 Concealer+ variant: trapdoor
generation and filtering run on the data-independent code paths
(oblivious comparisons + bitonic sort), which the trace recorder can
certify produce identical event streams across queries.
"""

from __future__ import annotations

from repro import telemetry
from repro.core.aggregation import evaluate_aggregate, needs_decryption
from repro.core.context import EpochContext
from repro.core.queries import (
    Aggregate,
    PointQuery,
    Predicate,
    QueryStats,
)
from repro.exceptions import QueryError
from repro.storage.engine import StorageEngine


class BPBExecutor:
    """Executes point queries against one loaded epoch."""

    def __init__(
        self,
        engine: StorageEngine,
        oblivious: bool = False,
        verify: bool = False,
        super_bin_count: int | None = None,
        quarantine=None,
        fetcher=None,
    ):
        self.engine = engine
        self.oblivious = oblivious
        self.verify = verify
        # §8: when set, a query fetches its bin's whole super-bin so
        # that retrieval frequencies stay uniform under uniform query
        # workloads (at f-fold fetch cost).
        self.super_bin_count = super_bin_count
        # Optional QuarantineLog: cells with standing integrity
        # violations fail fast instead of serving suspect answers.
        self.quarantine = quarantine
        # Optional shared whole-bin fetch path (repro.batching): routes
        # STEP 3 through the overlay/cache; without one, the legacy
        # inline fetch below runs unchanged.
        self.fetcher = fetcher

    def bins_for(
        self, query: PointQuery, context: EpochContext, cell_id: int | None = None
    ) -> list:
        """STEP 2 as a pure function: the bins this query will fetch.

        Shared with the batch planner so a plan can never disagree with
        what execution retrieves.
        """
        if cell_id is None:
            cell_id = context.grid.place_values(
                query.index_values, query.timestamp
            )
        chosen = context.layout.bin_of_cell_id(cell_id)
        if self.super_bin_count is None:
            return [chosen]
        layout = context.super_layout(self.super_bin_count)
        return [
            context.layout.bins[index]
            for index in layout.bins_to_fetch(chosen.index)
        ]

    def _fetch_bin_any(self, context, fetch_bin, stats, deadline, overlay):
        """Retrieve one whole bin (STEP 3): packed when the shared path
        holds a columnar sidecar, scalar rows otherwise."""
        if self.fetcher is not None:
            return self.fetcher.fetch_bin_any(
                context, fetch_bin, stats, deadline=deadline, overlay=overlay
            )
        return self._fetch_bin(context, fetch_bin, stats, deadline, overlay)

    def _fetch_bin(self, context, fetch_bin, stats, deadline, overlay):
        """Legacy scalar fetch of one whole bin."""
        if self.fetcher is not None:
            return self.fetcher.fetch_bin(
                context, fetch_bin, stats, deadline=deadline, overlay=overlay
            )
        # Against a replicated engine, verification moves *into* the
        # fetch: each replica's answer is checked before acceptance so
        # a tampered bin costs a failover, not the query.
        replicated = getattr(self.engine, "supports_replicated_reads", False)
        verifier = context.verify_rows if (self.verify and replicated) else None
        if self.oblivious:
            trapdoors = context.oblivious_trapdoors_for_bin(fetch_bin)
        else:
            trapdoors = context.trapdoors_for_bin(fetch_bin)
        return context.fetch(
            self.engine,
            trapdoors,
            stats,
            deadline=deadline,
            verifier=verifier,
            cells=fetch_bin.cell_ids,
        )

    def execute(
        self, query: PointQuery, context: EpochContext, deadline=None, overlay=None
    ) -> tuple[object, QueryStats]:
        """Run Algorithm 2; returns ``(answer, stats)``.

        ``deadline`` (a :class:`~repro.replication.deadline.Deadline`)
        bounds the whole execution; it is checked at every fetch and at
        every replica failover decision below.  ``overlay`` (a
        :class:`~repro.batching.fetcher.BatchOverlay`) serves bins the
        owning batch already fetched and verified.
        """
        stats = QueryStats(oblivious=self.oblivious)
        predicate = self._resolve_predicate(query, context)

        with telemetry.span(
            "enclave.point_query", epoch=context.epoch_id
        ) as query_span:
            # STEP 1: cell identification.
            cell_id = context.grid.place_values(
                query.index_values, query.timestamp
            )
            if self.quarantine is not None:
                self.quarantine.check(context.epoch_id, cell_id)

            # STEP 2: bin identification (plus §8 super-bin expansion).
            bins = self.bins_for(query, context, cell_id=cell_id)
            stats.bins_fetched = len(bins)
            query_span.set(bins=len(bins))

            # STEP 3: trapdoor formulation and retrieval.  Each bin
            # arrives packed (columnar) or scalar; the whole query runs
            # the vectorized STEP 4 only when every bin came packed —
            # a mixed batch unpacks to the legacy path (bit-identical
            # by the compat shim).
            payloads = [
                self._fetch_bin_any(context, fetch_bin, stats, deadline, overlay)
                for fetch_bin in bins
            ]
            packed_bins = [p for p in payloads if hasattr(p, "row_count")]
            if packed_bins and len(packed_bins) == len(payloads):
                return self._finish_packed(
                    query, context, bins, packed_bins, stats, predicate
                )
            rows = []
            for payload in payloads:
                rows.extend(
                    payload.unpack() if hasattr(payload, "row_count") else payload
                )

            # STEP 4: verification, filtering, aggregation.  The verify
            # is bound to the *requested* cell-ids: without the binding,
            # dropping every row of a population-1 cell leaves no
            # counter gap and would pass (per-cell chains prove each
            # present cell whole, not that the right cells are present).
            if self.verify and not stats.verified:
                expected = [cid for b in bins for cid in b.cell_ids]
                context.verify_rows(rows, expected)
                stats.verified = True

            filters = context.filters_for(predicate, [query.timestamp])
            with telemetry.span(
                "enclave.aggregate",
                stage="aggregate",
                epoch=context.epoch_id,
                filters=len(filters),
            ):
                if self.oblivious:
                    matched = context.match_rows_oblivious(
                        rows, filters, predicate.group, stats
                    )
                else:
                    matched = context.match_rows(
                        rows, filters, predicate.group, stats
                    )

                if query.aggregate is Aggregate.COUNT:
                    return len(matched), stats
                if not needs_decryption(query.aggregate):
                    raise QueryError(
                        f"unhandled match-only aggregate {query.aggregate}"
                    )
                records = context.decrypt_records(matched, stats)
                answer = evaluate_aggregate(
                    query.aggregate,
                    records,
                    context.schema,
                    query.target,
                    query.k,
                )
                return answer, stats

    def _finish_packed(
        self, query, context, bins, packed_bins, stats, predicate
    ) -> tuple[object, QueryStats]:
        """STEP 4 over packed bins: batched verify, vectorized filter.

        Same semantics (and byte-identical answers) as the scalar
        branch; per-row Python is gone — verification decodes index
        keys in one kernel batch, filtering is a single ``np.isin``,
        and only matched payloads hit the DET kernel.
        """
        if self.verify and not stats.verified:
            expected = [cid for b in bins for cid in b.cell_ids]
            context.verify_packed(packed_bins, expected)
            stats.verified = True
        filters = context.filters_for(predicate, [query.timestamp])
        with telemetry.span(
            "enclave.aggregate",
            stage="aggregate",
            epoch=context.epoch_id,
            filters=len(filters),
        ):
            mask = context.match_packed(
                packed_bins, filters, predicate.group, stats
            )
            if query.aggregate is Aggregate.COUNT:
                return int(mask.sum()), stats
            if not needs_decryption(query.aggregate):
                raise QueryError(
                    f"unhandled match-only aggregate {query.aggregate}"
                )
            records = context.decrypt_packed_records(packed_bins, mask, stats)
            answer = evaluate_aggregate(
                query.aggregate,
                records,
                context.schema,
                query.target,
                query.k,
            )
            return answer, stats

    @staticmethod
    def _resolve_predicate(query: PointQuery, context: EpochContext) -> Predicate:
        """Default predicate: match the first filter group on index values."""
        if query.predicate is not None:
            return query.predicate
        schema = context.schema
        for group in schema.filter_groups:
            if group == schema.index_attributes:
                return Predicate(group=group, values=tuple(query.index_values))
        group = schema.filter_groups[0]
        try:
            values = tuple(
                query.index_values[schema.index_attributes.index(attr)]
                for attr in group
            )
        except ValueError:
            raise QueryError(
                f"cannot derive a default predicate from group {group}; "
                "pass one explicitly"
            ) from None
        return Predicate(group=group, values=values)
