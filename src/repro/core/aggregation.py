"""In-enclave aggregation over matched rows (Phase 3, step 6).

Once STEP 4 has matched a bin's rows against the query filters, the
enclave computes the actual aggregate.  COUNT needs no decryption at
all (it counts filter matches — the reason Exp 8's count queries are
~36–40% faster than sum/min/max).  Every other aggregate decrypts the
matched payloads first.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.core.queries import Aggregate
from repro.core.schema import DatasetSchema
from repro.exceptions import QueryError


def evaluate_aggregate(
    aggregate: Aggregate,
    records: Sequence[tuple],
    schema: DatasetSchema,
    target: str | None = None,
    k: int = 1,
):
    """Compute an aggregate over decrypted record tuples.

    ``records`` are full record tuples (schema order).  COUNT is also
    accepted here for the COLLECT-style paths, though executors
    normally answer COUNT from match counts without decryption.
    """
    if aggregate is Aggregate.COUNT:
        return len(records)
    if aggregate is Aggregate.COLLECT:
        return list(records)

    if target is None:
        raise QueryError(f"aggregate {aggregate.value} requires a target")
    position = schema.position(target)
    values = [record[position] for record in records]

    if aggregate is Aggregate.TOP_K:
        counts = Counter(values)
        # Deterministic order: by descending count, then value.
        ranked = sorted(counts.items(), key=lambda item: (-item[1], str(item[0])))
        return ranked[: max(k, 0)]

    if aggregate is Aggregate.DISTINCT_COUNT:
        return len(set(values))

    if not values:
        return None
    if aggregate is Aggregate.SUM:
        return sum(values)
    if aggregate is Aggregate.MIN:
        return min(values)
    if aggregate is Aggregate.MAX:
        return max(values)
    if aggregate is Aggregate.AVG:
        return sum(values) / len(values)
    raise QueryError(f"unsupported aggregate {aggregate!r}")


def needs_decryption(aggregate: Aggregate) -> bool:
    """Whether the aggregate forces payload decryption (Table 4)."""
    return aggregate is not Aggregate.COUNT
