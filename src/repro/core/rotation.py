"""Master-key rotation (§1.2(i), implemented as an extension).

The paper scopes key rotation out, citing updatable oblivious key
management [20].  Operationally it matters: a long-lived deployment
must be able to retire ``s_k`` (operator turnover, suspected exposure)
without re-shipping every epoch from the data provider.

Protocol (all re-encryption happens *inside the enclave*; the service
provider host never sees plaintext):

1. The data provider authorizes the rotation with a token proving
   knowledge of the *current* master key, bound to a commitment of the
   new key — the host cannot forge a rotation to a key it controls.
2. The enclave verifies the token against its sealed master key.
3. Per ingested epoch, the enclave decrypts every stored column under
   the old epoch key and re-encrypts under the new one (fake columns
   are re-randomized at the same length), overwriting rows in place —
   the DBMS index follows automatically.  The epoch package's metadata
   vectors and verifiable tags are re-encrypted too, so verification
   keeps working after rotation.
4. The enclave swaps its sealed key schedule; the provider adopts the
   new master for future epochs.

Restrictions: epochs already touched by §6 dynamic rewrites carry
per-bin generations this routine does not track; rotate before going
dynamic, or re-ship those rounds.

**Crash safety.**  Rotation rewrites every stored row in place, so an
enclave killed mid-way (AEX, power event) would otherwise strand a
table half under the old key and half under the new — unreadable under
either.  Rotation therefore runs under a :class:`RotationJournal`: an
*intent* record snapshots each epoch's rows and package crypto fields
before the first overwrite, the sealed key swap happens only after the
journal *commits*, and any failure (including an injected
:class:`~repro.exceptions.EnclaveCrashed`) rolls every touched epoch
back to its pre-rotation bytes — the old key remains valid and the old
epoch stays queryable after recovery.
"""

from __future__ import annotations

import hmac as _hmac

from repro import telemetry
from repro.core.epoch import FAKE_CHAIN_LABEL, encode_int_vector
from repro.core.service import ServiceProvider
from repro.core.schema import unpad_plaintext
from repro.crypto.kernels import CHAIN_INIT, DetKernel, NdKernel, batch_chain_extend
from repro.crypto.keys import EpochKeySchedule, derive_epoch_key
from repro.crypto.nondet import RandomizedCipher
from repro.crypto.prf import Prf
from repro.exceptions import AuthorizationError, CryptoError, DecryptionError


def rotation_token(old_master: bytes, new_master: bytes) -> bytes:
    """The DP's proof of authority over the current key, binding the new."""
    commitment = Prf(new_master)(b"rotation-commitment")
    return Prf(old_master)(b"authorize-rotation", commitment)


class RotationJournal:
    """Intent/commit journal giving rotation all-or-nothing semantics.

    ``begin_epoch`` files an intent: a snapshot of the epoch's stored
    rows and its package's crypto fields, taken *before* the first
    in-place overwrite.  ``commit`` discards the intents (the point of
    no return preceding the sealed key swap); ``rollback`` restores
    every snapshotted epoch byte-for-byte.
    """

    _PACKAGE_FIELDS = (
        "enc_cell_id_vector",
        "enc_c_tuple_vector",
        "enc_cell_counts",
        "enc_grid_key",
        "enc_tags",
    )

    @staticmethod
    def _count_phase(phase: str, amount: int = 1) -> None:
        telemetry.counter(
            "concealer_rotation_epochs_total",
            "rotation journal transitions, by phase "
            "(intent / commit / rollback)",
            labels=("phase",),
        ).labels(phase=phase).inc(amount)

    def __init__(self):
        self._intents: list[tuple[int, dict, dict]] = []
        self.committed = False

    def begin_epoch(self, service: ServiceProvider, epoch_id: int) -> None:
        """File the intent to rewrite one epoch (snapshot its state)."""
        table = service._table_name(epoch_id)
        rows = {
            row.row_id: row.columns
            for row in service.engine.snapshot_rows(table)
        }
        package = service._packages[epoch_id]
        fields = {
            name: (
                dict(getattr(package, name))
                if name == "enc_tags"
                else getattr(package, name)
            )
            for name in self._PACKAGE_FIELDS
        }
        self._intents.append((epoch_id, rows, fields))
        self._count_phase("intent")

    def commit(self) -> None:
        """Point of no return: every epoch rewrote cleanly."""
        self._count_phase("commit", len(self._intents))
        self._intents.clear()
        self.committed = True

    def rollback(self, service: ServiceProvider) -> int:
        """Restore every intent's epoch to its pre-rotation state.

        Runs host-side (the ciphertexts being restored are the host's
        own stored bytes), so it works even when the enclave is dead.
        Returns the number of epochs restored.
        """
        restored = 0
        for epoch_id, rows, fields in self._intents:
            table = service._table_name(epoch_id)
            for row_id, columns in rows.items():
                service.engine.overwrite(table, row_id, list(columns))
            package = service._packages[epoch_id]
            for name, value in fields.items():
                setattr(package, name, value)
            restored += 1
        self._count_phase("rollback", restored)
        self._intents.clear()
        # Cached contexts may hold ciphers for half-rotated state.
        service._contexts.clear()
        return restored


class PreparedRotation:
    """Phase-1 output: every row rewritten, nothing irreversible yet.

    Between :func:`prepare_rotation` and :func:`commit_rotation` the
    stored rows are under the *new* epoch keys but the enclave still
    seals the *old* master and the journal still holds every intent —
    so :func:`abort_rotation` can restore the pre-rotation bytes
    host-side even if the enclave has since died.  The engine's rewrite
    fence (``begin_rewrite``) is held across the whole window; both
    ``commit`` and ``abort`` release it.
    """

    def __init__(
        self,
        service: ServiceProvider,
        journal: RotationJournal,
        old_master: bytes,
        new_master: bytes,
        rotated_rows: int,
        fenced: bool,
    ):
        self.service = service
        self.journal = journal
        self.old_master = old_master
        self.new_master = new_master
        self.rotated_rows = rotated_rows
        self._fenced = fenced
        self._settled = False

    def _settle(self) -> None:
        if self._settled:
            raise CryptoError("rotation already committed or aborted")
        self._settled = True
        if self._fenced:
            self.service.engine.end_rewrite()


def prepare_rotation(
    service: ServiceProvider, new_master: bytes, token: bytes
) -> PreparedRotation:
    """Phase 1: verify the token and rewrite every epoch under the journal.

    On any failure (including an injected enclave kill) the journal
    rolls the touched epochs back, the rewrite fence lifts, and the
    exception propagates — the old key stays fully valid.  On success
    the returned :class:`PreparedRotation` *must* be settled with
    :func:`commit_rotation` or :func:`abort_rotation`.
    """
    enclave = service.enclave
    enclave.require_provisioned()
    old_master = enclave.master_key
    expected = rotation_token(old_master, new_master)
    if not _hmac.compare_digest(token, expected):
        raise AuthorizationError("rotation token invalid: not authorized by DP")

    journal = RotationJournal()
    # Fence replicated engines: anti-entropy repair copying rows while
    # this rewrite is in flight would resurrect pre-rotation ciphertexts.
    # begin/end both bump the engine's rewrite generation, so a repair
    # that snapshotted *before* the rotation aborts at apply time even
    # if it runs after the fence lifts.
    fenced = getattr(service.engine, "begin_rewrite", None) is not None
    if fenced:
        service.engine.begin_rewrite()
    with telemetry.span(
        "rotation.prepare", epochs=len(service.ingested_epochs())
    ) as rotate_span:
        try:
            rotated_rows = _rotate_all_epochs(
                service, old_master, new_master, journal
            )
        except BaseException:
            journal.rollback(service)
            if fenced:
                service.engine.end_rewrite()
            raise
        rotate_span.set(rows=rotated_rows)
    return PreparedRotation(
        service, journal, old_master, new_master, rotated_rows, fenced
    )


def commit_rotation(prepared: PreparedRotation) -> int:
    """Phase 2: point of no return — journal commits, sealed key swaps."""
    service = prepared.service
    enclave = service.enclave
    # The sealed key swap is an ecall; a dead enclave cannot commit.
    enclave.require_provisioned()
    prepared.journal.commit()
    prepared._settle()
    telemetry.counter(
        "concealer_rotation_rows_total",
        "rows re-encrypted by committed key rotations",
        secrecy=telemetry.PUBLIC_SIZE,
    ).inc(prepared.rotated_rows)

    # Swap the sealed key material; cached contexts hold old ciphers.
    # swap_master_key bumps the enclave key generation, so any cache
    # stamped under the old key (the TrapdoorTable above all) becomes
    # unservable even where the explicit flush below is missed.
    old_schedule = enclave.key_schedule
    enclave.swap_master_key(
        prepared.new_master,
        EpochKeySchedule(
            master_key=prepared.new_master,
            first_epoch_id=old_schedule.first_epoch_id,
            epoch_duration=old_schedule.epoch_duration,
        ),
    )
    service._contexts.clear()
    table = getattr(service, "trapdoor_table", None)
    if table is not None:
        table.invalidate_all("rotation")
    return prepared.rotated_rows


def abort_rotation(prepared: PreparedRotation) -> int:
    """Undo a prepared rotation: restore pre-rotation bytes host-side.

    Works with a dead enclave (rollback rewrites the host's own stored
    ciphertexts); the old master stays the live key.  Returns the
    number of epochs restored.
    """
    restored = prepared.journal.rollback(prepared.service)
    prepared._settle()
    return restored


def rotate_service_keys(
    service: ServiceProvider, new_master: bytes, token: bytes
) -> int:
    """Re-encrypt every ingested epoch under keys from ``new_master``.

    The single-service entry point: prepare + commit in one call.
    Returns the number of rows re-encrypted.  Raises
    :class:`AuthorizationError` on a bad token and
    :class:`CryptoError` if any stored real row fails to decrypt (the
    storage was tampered with — rotation aborts before swapping keys,
    leaving the old key valid).  The sharded tier drives the two
    phases separately (:mod:`repro.sharding.coordinator`) so every
    shard prepares before any shard commits.
    """
    prepared = prepare_rotation(service, new_master, token)
    return commit_rotation(prepared)


def _rotate_all_epochs(
    service: ServiceProvider,
    old_master: bytes,
    new_master: bytes,
    journal: RotationJournal,
) -> int:
    """Re-encrypt every epoch in place, journalling an intent per epoch."""
    enclave = service.enclave
    rotated_rows = 0
    for epoch_id in service.ingested_epochs():
        package = service._packages[epoch_id]
        journal.begin_epoch(service, epoch_id)
        enclave.kill_point("enclave.kill.rotation")
        old_key = derive_epoch_key(old_master, epoch_id)
        new_key = derive_epoch_key(new_master, epoch_id)
        # Batch kernels: rotation touches every stored row, so the
        # primed-HMAC ciphers pay their key-block setup once per epoch
        # instead of twice per column.
        old_det, new_det = DetKernel(old_key), DetKernel(new_key)
        old_nd = RandomizedCipher(old_key)
        new_nd = NdKernel(new_key)

        table = service._table_name(epoch_id)
        # Verifiable tags chain the *stored* ciphertexts, so rotation must
        # rebuild the chains over the new ciphertexts.  Collect each real
        # row's (cid, counter) and each fake's id while re-encrypting.
        chained_columns = len(service.schema.filter_groups) + 1
        real_entries: dict[int, list[tuple[int, list[bytes]]]] = {}
        fake_entries: list[tuple[int, list[bytes]]] = []
        for row in service.engine.snapshot_rows(table):
            # A kill here leaves the table half-rotated — exactly the
            # torn state the journal's rollback must undo.
            enclave.kill_point("enclave.kill.rotation")
            columns = []
            for position, ciphertext in enumerate(row.columns):
                try:
                    columns.append(new_det.encrypt(old_det.decrypt(ciphertext)))
                except DecryptionError:
                    if position == len(row.columns) - 1:
                        # Index keys are always DET; a failure here means
                        # the host tampered with storage.
                        raise CryptoError(
                            f"row {row.row_id} of {table} failed rotation "
                            "decryption — storage tampered, rotation aborted"
                        ) from None
                    # Fake filter/payload columns: fresh garbage, same length.
                    body = b"\x00" * max(0, len(ciphertext) - 32)
                    columns.append(new_nd.encrypt(body))
            meta = unpad_plaintext(old_det.decrypt(row.columns[-1])).split(b"\x1f")
            if meta[0] == b"idx":
                real_entries.setdefault(int(meta[1]), []).append(
                    (int(meta[2]), columns[:chained_columns])
                )
            else:
                fake_entries.append((int(meta[1]), columns[:chained_columns]))
            service.engine.overwrite(table, row.row_id, columns)
            rotated_rows += 1

        new_tags: dict[int, tuple[bytes, ...]] = {}
        for label, numbered in real_entries.items():
            numbered.sort(key=lambda pair: pair[0])
            chains = batch_chain_extend(
                [CHAIN_INIT] * chained_columns,
                [
                    [columns[position] for _, columns in numbered]
                    for position in range(chained_columns)
                ],
                counted=False,
            )
            new_tags[label] = tuple(new_nd.encrypt(digest) for digest in chains)
        if fake_entries:
            fake_entries.sort(key=lambda pair: pair[0])
            chains = batch_chain_extend(
                [CHAIN_INIT] * chained_columns,
                [
                    [columns[position] for _, columns in fake_entries]
                    for position in range(chained_columns)
                ],
                counted=False,
            )
            new_tags[FAKE_CHAIN_LABEL] = tuple(
                new_nd.encrypt(digest) for digest in chains
            )

        # Metadata vectors and tags move to the new epoch key too.
        package.enc_cell_id_vector = new_nd.encrypt(
            encode_int_vector(package.decrypt_cell_id_vector(old_nd))
        )
        package.enc_c_tuple_vector = new_nd.encrypt(
            encode_int_vector(package.decrypt_c_tuple_vector(old_nd))
        )
        package.enc_cell_counts = new_nd.encrypt(
            encode_int_vector(package.decrypt_cell_counts(old_nd))
        )
        if package.enc_grid_key:
            package.enc_grid_key = new_nd.encrypt(old_nd.decrypt(package.enc_grid_key))
        else:
            # Pre-rotation packages derived placement from the master key;
            # pin the old derivation explicitly so placements survive.
            from repro.core.grid import derive_grid_key

            package.enc_grid_key = new_nd.encrypt(
                derive_grid_key(old_master, epoch_id)
            )
        package.enc_tags = new_tags
    return rotated_rows
