"""Per-epoch trapdoor memo table — an EPC-charged, rotation-fenced LRU.

STEP 3 of Algorithm 2 derives one DET trapdoor ``E_k(idx‖cid‖j)`` per
``(cell-id, counter)`` slot of every bin a query touches.  Trapdoors
are *deterministic per epoch*: the same slot yields the same ciphertext
until the epoch key changes.  Queries revisit bins constantly (the
whole point of bin-packing is that many cells share a bin), so without
memoization the enclave re-derives identical trapdoors on every query
— PR 4 deduplicated *fetches*; this table deduplicates the *crypto*.

Leakage: a hit/miss on this table is keyed by ``(epoch, table, kind,
id, counter)`` — exactly the slots the storage access log already
reveals when the trapdoors are sent out as index-lookup keys.  The
granularity equals the PR-4 BinCache's whole-bin granularity (every
slot of a bin is derived or memoized together), so the table leaks
nothing beyond what Theorem 4.1 already concedes: *which bins* a query
touched.  The §4.3 oblivious path never consults it — Concealer+'s
trace-identity guarantee forbids memory touches that depend on whether
a slot was seen before.

Staleness follows the BinCache discipline with one addition: entries
are stamped with both the storage engine's ``rewrite_generation`` *and*
the enclave's ``key_generation`` at fill time.  Key rotation bumps the
key generation (and flushes the table outright); §6 dynamic rewrites
bump the engine generation.  A lookup observing either fence moved —
or a rewrite in flight — discards the entry instead of serving a
trapdoor derived under dead key material.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro import telemetry
from repro.exceptions import EnclaveMemoryError

# EPC estimate per resident entry: a 48-byte trapdoor (32-byte padded
# index plaintext + 16-byte DET tag) plus key/stamp overhead.
ENTRY_ESTIMATE_BYTES = 96


def _hits():
    return telemetry.counter(
        "concealer_trapdoor_table_hits_total",
        "trapdoor-table hits (slot trapdoors served without re-derivation)",
        secrecy=telemetry.PUBLIC_SIZE,
    )


def _misses():
    return telemetry.counter(
        "concealer_trapdoor_table_misses_total",
        "trapdoor-table misses (slot trapdoors derived by the DET kernel)",
        secrecy=telemetry.PUBLIC_SIZE,
    )


def _evictions():
    return telemetry.counter(
        "concealer_trapdoor_table_evictions_total",
        "trapdoor-table evictions, by reason",
        secrecy=telemetry.PUBLIC_SIZE,
        labels=("reason",),
    )


def _occupancy():
    return telemetry.gauge(
        "concealer_trapdoor_table_entries",
        "trapdoors currently memoized in the enclave",
        secrecy=telemetry.PUBLIC_SIZE,
    )


@dataclass(frozen=True)
class _Entry:
    trapdoor: bytes
    engine_generation: int
    key_generation: int


class TrapdoorTable:
    """LRU memo of ``(epoch, table, kind, id, counter) → trapdoor``.

    Thread-safe (parallel batch-prefetch workers derive trapdoors for
    different bins concurrently).  Residency is EPC-charged; an entry
    that cannot reserve budget is simply not memoized — memoization is
    an optimisation, never a correctness requirement.
    """

    def __init__(
        self,
        enclave,
        engine,
        capacity: int,
        entry_bytes: int = ENTRY_ESTIMATE_BYTES,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.enclave = enclave
        self.engine = engine
        self.capacity = capacity
        self.entry_bytes = entry_bytes
        self._entries: OrderedDict[tuple, _Entry] = OrderedDict()
        self._lock = threading.RLock()

    # --------------------------------------------------------------- fences

    def _engine_generation(self) -> int:
        return getattr(self.engine, "rewrite_generation", 0)

    def _key_generation(self) -> int:
        return getattr(self.enclave, "key_generation", 0)

    def _stale(self, entry: _Entry) -> bool:
        if getattr(self.engine, "rewrite_in_progress", False):
            return True
        if entry.engine_generation != self._engine_generation():
            return True
        return entry.key_generation != self._key_generation()

    # --------------------------------------------------------------- lookups

    def lookup(self, key: tuple) -> bytes | None:
        """The memoized trapdoor, or ``None`` on miss/stale entry."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._stale(entry):
                self._evict(key, "generation")
                entry = None
            if entry is None:
                _misses().inc()
                return None
            self._entries.move_to_end(key)
            _hits().inc()
            return entry.trapdoor

    def insert(self, key: tuple, trapdoor: bytes) -> bool:
        """Memoize a freshly derived trapdoor; returns residency.

        Skipped while a rewrite is in flight (the derivation may span
        the fence) and when the EPC cannot cover the entry.
        """
        if self.capacity <= 0:
            return False
        if getattr(self.engine, "rewrite_in_progress", False):
            return False
        with self._lock:
            if key in self._entries:
                self._evict(key, "replaced")
            try:
                self.enclave.charge_memory(self.entry_bytes)
            except EnclaveMemoryError:
                _evictions().labels(reason="epc-full").inc()
                return False
            while len(self._entries) >= self.capacity:
                self._evict(next(iter(self._entries)), "capacity")
            self._entries[key] = _Entry(
                trapdoor=trapdoor,
                engine_generation=self._engine_generation(),
                key_generation=self._key_generation(),
            )
            _occupancy().set(len(self._entries))
            return True

    # ------------------------------------------------------------ invalidation

    def invalidate_all(self, reason: str = "clear", release: bool = True) -> int:
        """Drop every entry; returns how many were resident."""
        with self._lock:
            dropped = len(self._entries)
            for key in list(self._entries):
                self._evict(key, reason, release=release)
            return dropped

    def rebind_enclave(self, enclave) -> None:
        """Point at a replacement enclave after a crash (EPC already
        wiped by hardware, so charges are not returned)."""
        self.invalidate_all(reason="enclave-replaced", release=False)
        self.enclave = enclave

    def rebind_engine(self, engine) -> None:
        """Point at a replacement engine (checkpoint restore)."""
        self.invalidate_all(reason="engine-replaced", release=True)
        self.engine = engine

    def _evict(self, key: tuple, reason: str, release: bool = True) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        if release:
            self.enclave.release_memory(self.entry_bytes)
        _evictions().labels(reason=reason).inc()
        _occupancy().set(len(self._entries))

    # ------------------------------------------------------------- inspection

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @property
    def resident_bytes(self) -> int:
        """EPC bytes currently charged to memoized trapdoors."""
        with self._lock:
            return len(self._entries) * self.entry_bytes
