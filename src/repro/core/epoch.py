"""The encrypted epoch package a data provider ships (§3, Table 2c).

One :class:`EpochPackage` is Algorithm 1's complete output for one
epoch:

- the permuted encrypted rows — per row, one DET ciphertext per filter
  group, the DET-encrypted full tuple, and the index-column ciphertext
  ``E_k(cid ‖ counter)`` (or ``E_k(f ‖ j)`` for fakes);
- the two metadata vectors ``cell_id[]`` and ``c_tuple[]``, encrypted
  with the randomized cipher ``E_nd``;
- the per-cell tuple counts (what §5.2's eBPB needs instead of
  ``c_tuple[]``), also under ``E_nd``;
- the encrypted verifiable tags (one hash-chain digest per encrypted
  column per cell-id);
- public metadata: epoch id, grid spec, row counts and the time
  granularity of readings (all part of the setup leakage ``L_s``).

Index-column plaintexts are produced by :func:`index_plaintext` /
:func:`fake_index_plaintext` so the data provider and the enclave's
trapdoor generator always agree bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.grid import GridSpec
from repro.crypto.nondet import RandomizedCipher
from repro.exceptions import EpochError

_SEP = b"\x1f"

# Chain label for the fake-tuple hash chain (a reproduction extension:
# the paper chains only real tuples, leaving fakes unverifiable).
FAKE_CHAIN_LABEL = -1

# Fixed index-key plaintext width: real and fake index ciphertexts must
# be the same length, or the stored column would reveal which rows are
# fake at rest.
INDEX_PAD_WIDTH = 32


def index_plaintext(cell_id: int, counter: int) -> bytes:
    """Plaintext of a real row's index key: ``cid_z || c_t`` (padded)."""
    from repro.core.schema import pad_plaintext

    raw = b"idx" + _SEP + str(cell_id).encode() + _SEP + str(counter).encode()
    return pad_plaintext(raw, INDEX_PAD_WIDTH)


def fake_index_plaintext(fake_id: int) -> bytes:
    """Plaintext of a fake row's index key: ``f || j`` (padded)."""
    from repro.core.schema import pad_plaintext

    raw = b"fake" + _SEP + str(fake_id).encode()
    return pad_plaintext(raw, INDEX_PAD_WIDTH)


def encode_int_vector(values: list[int]) -> bytes:
    """Serialize an integer vector for ``E_nd`` encryption.

    zlib-compressed JSON: the §9.1 vectors are large (31 MB at paper
    scale) but highly repetitive, so compression cuts the shipped
    metadata several-fold.  The compressed length leaks only vector
    entropy, which is derived from public grid geometry plus row
    counts already in L_s.
    """
    import zlib

    raw = json.dumps(values, separators=(",", ":")).encode("ascii")
    return b"z" + zlib.compress(raw, level=6)


def decode_int_vector(blob: bytes) -> list[int]:
    """Inverse of :func:`encode_int_vector` (accepts legacy raw JSON)."""
    import zlib

    if blob[:1] == b"z":
        try:
            blob = zlib.decompress(blob[1:])
        except zlib.error as error:
            raise EpochError(f"corrupt metadata vector: {error}") from error
    values = json.loads(blob.decode("ascii"))
    if not isinstance(values, list) or not all(isinstance(v, int) for v in values):
        raise EpochError("decrypted metadata vector is not an int list")
    return values


@dataclass(frozen=True)
class EncryptedRow:
    """One row of the outsourced relation (a line of Table 2c)."""

    filters: tuple[bytes, ...]
    payload: bytes
    index_key: bytes

    def as_columns(self) -> list[bytes]:
        """Flatten for storage-engine insertion (filters, payload, index)."""
        return [*self.filters, self.payload, self.index_key]


@dataclass
class EpochPackage:
    """Everything the data provider transmits for one epoch."""

    schema_name: str
    epoch_id: int
    grid_spec: GridSpec
    time_granularity: int
    rows: list[EncryptedRow]
    enc_cell_id_vector: bytes
    enc_c_tuple_vector: bytes
    enc_cell_counts: bytes
    enc_tags: dict[int, tuple[bytes, ...]] = field(default_factory=dict)
    real_count: int = 0
    fake_count: int = 0
    # Public packing parameters: the enclave's deterministic packing must
    # match the fakes the provider shipped.  ``bin_size=None`` means the
    # default |b| = max cell-id population; ``max_cells_per_bin`` caps
    # cell-ids per bin (bounds the §4.3 oblivious schedule).
    bin_size: int | None = None
    max_cells_per_bin: int | None = None
    # The sealed placement secret: E_nd(grid_key).  Kept separate from
    # the master key so master-key rotation re-encrypts this blob but
    # preserves its value — placements survive rotation.  Empty means
    # "derive from the master key" (pre-rotation compatibility).
    enc_grid_key: bytes = b""
    # Columnar form of the same rows, one PackedBin per Theorem-4.1 bin
    # in canonical slot order (see repro.core.packed).  ``None`` means
    # the provider did not (or could not) pack — consumers fall back to
    # the scalar row path.  Derived data: never part of row accounting.
    packed_bins: "list | None" = None
    # The hierarchical aggregate-tree sidecar (repro.core.aggtree):
    # fixed-shape encrypted aggregates at every power-of-k time
    # granularity.  ``None`` means no tree shipped — long-range
    # aggregates fall back to the bin path.  Derived data, like
    # ``packed_bins``.
    agg_tree: "object | None" = None

    def __post_init__(self):
        if self.real_count + self.fake_count != len(self.rows):
            raise EpochError(
                f"row accounting broken: {self.real_count} real + "
                f"{self.fake_count} fake != {len(self.rows)} rows"
            )
        if self.time_granularity < 1:
            raise EpochError("time granularity must be >= 1")

    # The vector payloads below are decrypted *inside the enclave*; the
    # methods exist so enclave code does not repeat serialization details.

    def decrypt_cell_id_vector(self, cipher: RandomizedCipher) -> list[int]:
        """Enclave-side: recover ``cell_id[]``."""
        return decode_int_vector(cipher.decrypt(self.enc_cell_id_vector))

    def decrypt_c_tuple_vector(self, cipher: RandomizedCipher) -> list[int]:
        """Enclave-side: recover ``c_tuple[]`` (per-cell-id populations)."""
        return decode_int_vector(cipher.decrypt(self.enc_c_tuple_vector))

    def decrypt_cell_counts(self, cipher: RandomizedCipher) -> list[int]:
        """Enclave-side: recover per-cell populations (eBPB metadata)."""
        return decode_int_vector(cipher.decrypt(self.enc_cell_counts))

    @property
    def column_names(self) -> list[str]:
        """Storage column names for this package's rows."""
        filter_count = len(self.rows[0].filters) if self.rows else 0
        return [f"filter_{i}" for i in range(filter_count)] + ["payload", "index_key"]

    def metadata_bytes(self) -> int:
        """Size of the encrypted metadata vectors (reported by §9.1)."""
        return (
            len(self.enc_cell_id_vector)
            + len(self.enc_c_tuple_vector)
            + len(self.enc_cell_counts)
        )

    # ------------------------------------------------------------ wire format

    def serialize(self) -> bytes:
        """Encode the package for transmission to the service provider.

        A self-describing JSON envelope with base64 ciphertext fields —
        everything in it is either public metadata (L_s) or ciphertext.
        """
        import base64
        import json as _json

        b64 = lambda b: base64.b64encode(b).decode("ascii")  # noqa: E731
        envelope = {
            "schema_name": self.schema_name,
            "epoch_id": self.epoch_id,
            "grid": {
                "dimension_sizes": list(self.grid_spec.dimension_sizes),
                "cell_id_count": self.grid_spec.cell_id_count,
                "epoch_duration": self.grid_spec.epoch_duration,
                "time_local_cell_ids": self.grid_spec.time_local_cell_ids,
            },
            "time_granularity": self.time_granularity,
            "bin_size": self.bin_size,
            "max_cells_per_bin": self.max_cells_per_bin,
            "real_count": self.real_count,
            "fake_count": self.fake_count,
            "grid_key": b64(self.enc_grid_key),
            "cell_id_vector": b64(self.enc_cell_id_vector),
            "c_tuple_vector": b64(self.enc_c_tuple_vector),
            "cell_counts": b64(self.enc_cell_counts),
            "tags": {
                str(label): [b64(d) for d in digests]
                for label, digests in self.enc_tags.items()
            },
            "rows": [
                [[b64(f) for f in row.filters], b64(row.payload), b64(row.index_key)]
                for row in self.rows
            ],
        }
        if self.packed_bins is not None:
            envelope["packed_bins"] = [
                b64(packed.to_bytes()) for packed in self.packed_bins
            ]
        if self.agg_tree is not None:
            envelope["agg_tree"] = b64(self.agg_tree.to_bytes())
        return _json.dumps(envelope, separators=(",", ":")).encode("utf-8")

    @classmethod
    def deserialize(cls, blob: bytes) -> "EpochPackage":
        """Inverse of :meth:`serialize`."""
        import base64
        import json as _json

        from repro.core.grid import GridSpec

        from repro.core.aggtree import AggTree
        from repro.core.packed import PackedBin

        b64d = base64.b64decode
        try:
            envelope = _json.loads(blob.decode("utf-8"))
            packed_bins = None
            if envelope.get("packed_bins") is not None:
                packed_bins = [
                    PackedBin.from_bytes(b64d(encoded))
                    for encoded in envelope["packed_bins"]
                ]
            agg_tree = None
            if envelope.get("agg_tree") is not None:
                agg_tree = AggTree.from_bytes(b64d(envelope["agg_tree"]))
            rows = [
                EncryptedRow(
                    filters=tuple(b64d(f) for f in filters),
                    payload=b64d(payload),
                    index_key=b64d(index_key),
                )
                for filters, payload, index_key in envelope["rows"]
            ]
            return cls(
                schema_name=envelope["schema_name"],
                epoch_id=envelope["epoch_id"],
                grid_spec=GridSpec(
                    dimension_sizes=tuple(envelope["grid"]["dimension_sizes"]),
                    cell_id_count=envelope["grid"]["cell_id_count"],
                    epoch_duration=envelope["grid"]["epoch_duration"],
                    time_local_cell_ids=envelope["grid"].get(
                        "time_local_cell_ids", True
                    ),
                ),
                time_granularity=envelope["time_granularity"],
                rows=rows,
                enc_grid_key=b64d(envelope.get("grid_key", "")),
                enc_cell_id_vector=b64d(envelope["cell_id_vector"]),
                enc_c_tuple_vector=b64d(envelope["c_tuple_vector"]),
                enc_cell_counts=b64d(envelope["cell_counts"]),
                enc_tags={
                    int(label): tuple(b64d(d) for d in digests)
                    for label, digests in envelope["tags"].items()
                },
                real_count=envelope["real_count"],
                fake_count=envelope["fake_count"],
                bin_size=envelope["bin_size"],
                max_cells_per_bin=envelope["max_cells_per_bin"],
                packed_bins=packed_bins,
                agg_tree=agg_tree,
            )
        except (KeyError, ValueError, TypeError) as error:
            raise EpochError(f"malformed epoch package: {error}") from error
