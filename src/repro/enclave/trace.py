"""Side-channel observation of in-enclave computation.

SGX leaks through micro-architectural side channels: an adversary
controlling the OS can observe cache-line accesses, page faults and
branch history.  The paper's Concealer+ variant (§4.3) counters this by
computing with register-oblivious operators and data-independent sorts,
so that *the observable event stream does not depend on the data*.

A simulation cannot have real cache lines, but it can have the next
best thing: an explicit event stream.  Every oblivious primitive in
:mod:`repro.enclave.oblivious` and every compare-exchange in
:mod:`repro.enclave.sort` emits a fixed-shape event to the ambient
:class:`TraceRecorder`.  Tests then assert the *trace-equivalence*
definition of obliviousness directly: for any two inputs of equal
public size, the recorded traces are identical.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass

from repro import telemetry


@dataclass(frozen=True)
class TraceEvent:
    """One observable step: an operation name and its *public* arguments.

    Only data-independent quantities may appear in ``public_args`` —
    sizes, loop indices, operation labels.  If a primitive ever leaked a
    data-dependent value here, trace-equality tests would catch it.
    """

    operation: str
    public_args: tuple


class TraceRecorder:
    """Collects the observable event stream of an enclave computation.

    Every recorded event is also bridged onto the ambient metrics
    registry as a per-primitive op counter
    (``concealer_oblivious_ops_total{op=...}``), so the §4.3 cost
    decomposition shows up in ``--metrics`` output without a second
    event system.  The bridge only *counts* — the event stream that the
    trace-equivalence tests hash is untouched — and op counts are
    tagged public-size precisely because trace equivalence guarantees
    them equal across equal-public-size inputs.
    """

    def __init__(self):
        self._events: list[TraceEvent] = []
        self._enabled = True

    def emit(self, operation: str, *public_args) -> None:
        """Record one observable event (no-op while disabled)."""
        if self._enabled:
            self._events.append(TraceEvent(operation, tuple(public_args)))
            telemetry.counter(
                "concealer_oblivious_ops_total",
                "oblivious-primitive operations by kind (bridged from the "
                "side-channel TraceRecorder)",
                secrecy=telemetry.PUBLIC_SIZE,
                labels=("op",),
            ).labels(op=operation).inc()

    def events(self) -> list[TraceEvent]:
        """A copy of the recorded stream."""
        return list(self._events)

    def clear(self) -> None:
        """Forget all recorded events."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    @contextmanager
    def disabled(self):
        """Temporarily stop recording (used for setup code outside the
        security-relevant region)."""
        previous = self._enabled
        self._enabled = False
        try:
            yield self
        finally:
            self._enabled = previous


def trace_signature(recorder: TraceRecorder) -> bytes:
    """A digest of the event stream, for cheap trace-equality checks."""
    digest = hashlib.sha256()
    for event in recorder.events():
        digest.update(event.operation.encode("utf-8"))
        digest.update(repr(event.public_args).encode("utf-8"))
        digest.update(b"\x00")
    return digest.digest()


# A module-level "ambient" recorder: oblivious primitives emit here when no
# explicit recorder is passed.  Production code paths route their own
# recorder through; the ambient one keeps the primitives usable standalone.
_ambient = TraceRecorder()


def ambient_recorder() -> TraceRecorder:
    """The default recorder used by primitives when none is supplied."""
    return _ambient
