"""Vectorised bitonic sorting network (numpy).

The pure-Python network in :mod:`repro.enclave.sort` is the reference
implementation; this module applies the *same* network — identical
compare-exchange sequence for a given size — with numpy array
operations, turning the per-exchange Python overhead into a handful of
vectorised passes per stage.  For the §4.3 oblivious schedules (tens of
thousands of slots) this is an order-of-magnitude speed-up.

Data-independence is preserved: every stage executes the same masked
minimum/maximum over the same index sets regardless of key values (the
numpy ops have no data-dependent branches), so the observable structure
remains a pure function of the input size.

Keys must fit in int64 (the §4.3 schedules sort 0/1 flags; the general
helpers clamp-check).  Payloads travel as a permutation of indices.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.enclave.trace import TraceRecorder, ambient_recorder

_PAD_KEY = np.int64(2**62)
_INT64_MIN = -(2**62)


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def bitonic_argsort(keys: np.ndarray, recorder: TraceRecorder | None = None) -> np.ndarray:
    """Return the permutation that sorts ``keys`` ascending.

    Runs Batcher's network over (key, index) pairs with vectorised
    masked swaps; stable order among equal keys is *not* guaranteed
    (sorting networks are not stable), but the permutation is exact.
    """
    recorder = recorder if recorder is not None else ambient_recorder()
    n = int(keys.shape[0])
    if n <= 1:
        return np.arange(n)
    if keys.dtype != np.int64:
        keys = keys.astype(np.int64)
        if np.any(np.abs(keys) >= 2**62):
            raise ValueError("keys must fit comfortably in int64")
    size = _next_power_of_two(n)
    recorder.emit("bitonic_sort_np", n, size)

    work = np.full(size, _PAD_KEY, dtype=np.int64)
    work[:n] = keys
    order = np.arange(size, dtype=np.int64)

    indices = np.arange(size)
    length = 2
    while length <= size:
        step = length // 2
        while step >= 1:
            partner = indices ^ step
            active = partner > indices
            i = indices[active]
            j = partner[active]
            ascending = (i & length) == 0
            left = np.where(ascending, i, j)
            right = np.where(ascending, j, i)

            keys_left = work[left]
            keys_right = work[right]
            swap = keys_left > keys_right
            new_left = np.where(swap, keys_right, keys_left)
            new_right = np.where(swap, keys_left, keys_right)
            work[left] = new_left
            work[right] = new_right

            order_left = order[left]
            order_right = order[right]
            order[left] = np.where(swap, order_right, order_left)
            order[right] = np.where(swap, order_left, order_right)
            step //= 2
        length *= 2

    # Padding keys are strictly greater than any caller key, so the
    # first n sorted slots are exactly the real entries.
    return order[:n]


def bitonic_sort_np(
    items: Sequence,
    key: Callable[[object], int],
    recorder: TraceRecorder | None = None,
) -> list:
    """Drop-in vectorised counterpart of
    :func:`repro.enclave.sort.bitonic_sort` for int64-range keys."""
    if len(items) <= 1:
        return list(items)
    keys = np.fromiter((key(item) for item in items), dtype=np.int64,
                       count=len(items))
    permutation = bitonic_argsort(keys, recorder)
    return [items[index] for index in permutation]
