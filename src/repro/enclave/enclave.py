"""The enclave simulator: a trusted agent with bounded secure memory.

:class:`Enclave` models the properties of SGX that Concealer's design
actually relies on:

- **Isolation**: sealed state (the shared secret ``s_k``, the epoch key
  schedule, decrypted metadata vectors) lives in attributes that the
  rest of the system never touches directly; all interaction goes
  through ecall-style methods.
- **Attestation-gated provisioning**: the master key can only be
  installed together with a successful attestation handshake
  (:meth:`provision`); before provisioning, the enclave refuses to
  serve queries.
- **Bounded EPC**: real SGX v1 has ~96 MiB of usable enclave page
  cache; in-enclave working sets above it page-fault expensively.  The
  simulator enforces a byte budget via :meth:`charge_memory` /
  :meth:`release_memory` so algorithms must stage oversized batches
  (e.g. with column sort) exactly as the paper describes.
- **Observable side channels**: a :class:`TraceRecorder` collects the
  branch/memory event stream of security-relevant computation.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro import telemetry
from repro.crypto.keys import EpochKeySchedule
from repro.enclave.attestation import Quote, measure_code
from repro.enclave.trace import TraceRecorder
from repro.exceptions import EnclaveCrashed, EnclaveError, EnclaveMemoryError
from repro.faults.injector import FaultInjector, NULL_INJECTOR

ENCLAVE_CODE_IDENTITY = "concealer-enclave-v1"

# SGX v1's practically usable EPC; the simulator default is deliberately
# the real-world constant so bin sizes interact with it realistically.
DEFAULT_EPC_BYTES = 96 * 1024 * 1024


@dataclass
class EnclaveConfig:
    """Tunables for the simulated enclave."""

    epc_bytes: int = DEFAULT_EPC_BYTES
    code_identity: str = ENCLAVE_CODE_IDENTITY


@dataclass
class _SealedState:
    """State invisible outside the enclave (by convention of this sim)."""

    master_key: bytes | None = None
    key_schedule: EpochKeySchedule | None = None
    scratch: dict = field(default_factory=dict)


class Enclave:
    """A simulated SGX enclave hosting Concealer's trusted logic.

    The query-execution code in :mod:`repro.core` runs "inside" the
    enclave by calling through this object: it charges working-set
    memory against the EPC budget, reads sealed keys, and emits
    side-channel trace events via :attr:`trace`.
    """

    def __init__(
        self,
        config: EnclaveConfig | None = None,
        fault_injector: FaultInjector | None = None,
    ):
        self.config = config or EnclaveConfig()
        self.measurement = measure_code(self.config.code_identity)
        self.trace = TraceRecorder()
        self.fault_injector = fault_injector or NULL_INJECTOR
        self._sealed = _SealedState()
        self._epc_used = 0
        self._epc_high_water = 0
        self._crashed: str | None = None
        # Bumped whenever the sealed master key changes (provisioning,
        # rotation, crash wipe).  Key-derived caches outside the sealed
        # state — e.g. the TrapdoorTable — fence on this so memoized
        # ciphertexts can never outlive the key that produced them.
        self._key_generation = 0
        # The EPC ledger is shared by concurrent batch-prefetch workers;
        # charge/release must be atomic or parallel fetches could both
        # pass the budget check and overshoot it.
        self._epc_lock = threading.RLock()

    # ------------------------------------------------------------ crash model

    @property
    def crashed(self) -> bool:
        """Whether this enclave instance was killed (AEX / power event)."""
        return self._crashed is not None

    def crash(self, reason: str = "killed") -> None:
        """Kill the enclave: sealed state is destroyed, ecalls fail.

        Models an SGX asynchronous exit — the EPC is wiped by hardware,
        so the instance is unrecoverable; a *new* enclave must be
        attested and re-provisioned (see
        :class:`repro.faults.recovery.RecoveryCoordinator`).
        """
        self._crashed = reason
        self._sealed = _SealedState()
        self._key_generation += 1
        self._epc_used = 0
        telemetry.counter(
            "concealer_enclave_crashes_total",
            "enclave kills (AEX / power event) by fault site",
            labels=("site",),
        ).labels(site=reason).inc()
        telemetry.gauge(
            "concealer_epc_used_bytes",
            "currently reserved in-enclave working memory",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set(0)

    def _ecall_guard(self) -> None:
        if self._crashed is not None:
            raise EnclaveCrashed(
                f"enclave was killed ({self._crashed}); attest and "
                "re-provision a fresh instance"
            )

    def kill_point(self, site: str) -> None:
        """A fault site where the injector may kill the enclave.

        Placed mid-query, mid-rotation, mid-rewrite, and mid-checkpoint
        — the points whose recovery paths the chaos harness exercises.
        """
        self._ecall_guard()
        if self.fault_injector.fire(site) is not None:
            self.crash(site)
            raise EnclaveCrashed(f"enclave killed at fault site {site!r}")

    # ------------------------------------------------------------ attestation

    def quote(self, nonce: bytes) -> Quote:
        """Produce an attestation quote for a verifier's challenge."""
        self._ecall_guard()
        return Quote.generate(self.measurement, nonce)

    def provision(
        self,
        master_key: bytes,
        first_epoch_id: int,
        epoch_duration: int,
    ) -> None:
        """Install the shared secret ``s_k`` and epoch parameters.

        Per §3, the enclave receives only the first epoch id and the
        epoch duration; it derives every later epoch key itself.
        """
        self._ecall_guard()
        if self._sealed.master_key is not None:
            raise EnclaveError("enclave already provisioned")
        self._sealed.master_key = master_key
        self._sealed.key_schedule = EpochKeySchedule(
            master_key=master_key,
            first_epoch_id=first_epoch_id,
            epoch_duration=epoch_duration,
        )
        self._key_generation += 1

    @property
    def key_generation(self) -> int:
        """Fence counter for key-derived caches (see ``__init__``)."""
        return self._key_generation

    def swap_master_key(self, new_master: bytes, key_schedule: EpochKeySchedule) -> None:
        """Install rotated key material, bumping the key-generation fence.

        Used by :func:`repro.core.rotation.rotate_service_keys` after a
        committed rewrite: any cache entry stamped with the previous
        generation (memoized trapdoors, most notably) becomes
        unservable the moment the sealed key changes.
        """
        self._ecall_guard()
        self._sealed.master_key = new_master
        self._sealed.key_schedule = key_schedule
        self._key_generation += 1

    @property
    def provisioned(self) -> bool:
        """Whether ``s_k`` has been installed."""
        return self._sealed.master_key is not None

    def require_provisioned(self) -> None:
        """Guard used by every query-serving ecall."""
        self._ecall_guard()
        if not self.provisioned:
            raise EnclaveError("enclave not provisioned with s_k")

    # ------------------------------------------------------------ sealed keys

    @property
    def key_schedule(self) -> EpochKeySchedule:
        """The sealed epoch key schedule (trusted-code use only)."""
        self.require_provisioned()
        assert self._sealed.key_schedule is not None
        return self._sealed.key_schedule

    @property
    def master_key(self) -> bytes:
        """The sealed master secret (trusted-code use only)."""
        self.require_provisioned()
        assert self._sealed.master_key is not None
        return self._sealed.master_key

    # -------------------------------------------------------------- EPC model

    def charge_memory(self, nbytes: int) -> None:
        """Reserve in-enclave working memory; raises over budget.

        Algorithms that would exceed the EPC must restructure (stream,
        or column-sort in O(r) chunks) rather than grow the resident
        set — the same pressure real SGX applies via EPC paging costs.
        """
        self._ecall_guard()
        if nbytes < 0:
            raise ValueError("cannot charge negative memory")
        if self.fault_injector.fire("enclave.epc.exhaust") is not None:
            raise EnclaveMemoryError(
                "EPC exhausted (injected fault): concurrent enclave load "
                "consumed the page cache mid-operation"
            )
        with self._epc_lock:
            if self._epc_used + nbytes > self.config.epc_bytes:
                raise EnclaveMemoryError(
                    f"EPC budget exceeded: {self._epc_used + nbytes} > "
                    f"{self.config.epc_bytes} bytes"
                )
            self._epc_used += nbytes
            self._epc_high_water = max(self._epc_high_water, self._epc_used)
            used, high_water = self._epc_used, self._epc_high_water
        telemetry.counter(
            "concealer_epc_charge_events_total",
            "EPC working-set reservations",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()
        telemetry.gauge(
            "concealer_epc_used_bytes",
            "currently reserved in-enclave working memory",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set(used)
        telemetry.gauge(
            "concealer_epc_high_water_bytes",
            "peak reserved in-enclave working memory",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set_max(high_water)

    def release_memory(self, nbytes: int) -> None:
        """Return working memory to the budget."""
        with self._epc_lock:
            self._epc_used = max(0, self._epc_used - nbytes)
            used = self._epc_used
        telemetry.counter(
            "concealer_epc_release_events_total",
            "EPC working-set releases",
            secrecy=telemetry.PUBLIC_SIZE,
        ).inc()
        telemetry.gauge(
            "concealer_epc_used_bytes",
            "currently reserved in-enclave working memory",
            secrecy=telemetry.PUBLIC_SIZE,
        ).set(used)

    @contextmanager
    def memory(self, nbytes: int):
        """Exception-safe EPC reservation: ``with enclave.memory(n): ...``.

        The release runs even when the body raises, so a fault mid-query
        (transient storage error, injected crash, integrity violation)
        cannot leak budget and wedge every subsequent query.
        """
        self.charge_memory(nbytes)
        try:
            yield
        finally:
            self.release_memory(nbytes)

    @property
    def epc_used(self) -> int:
        """Currently reserved in-enclave working memory (bytes)."""
        return self._epc_used

    @property
    def epc_high_water(self) -> int:
        """Peak resident bytes observed — reported by the benchmarks."""
        return self._epc_high_water

    def reset_epc_stats(self) -> None:
        """Reset the high-water mark to the current usage."""
        self._epc_high_water = self._epc_used

    # ------------------------------------------------------------ scratch RAM

    def seal(self, name: str, value) -> None:
        """Store a value in sealed scratch memory (e.g. decrypted vectors)."""
        self._ecall_guard()
        self._sealed.scratch[name] = value

    def unseal(self, name: str):
        """Read a sealed scratch value; raises if absent."""
        self._ecall_guard()
        try:
            return self._sealed.scratch[name]
        except KeyError:
            raise EnclaveError(f"no sealed value named {name!r}") from None

    def has_sealed(self, name: str) -> bool:
        """Whether a sealed scratch value exists under this name."""
        return name in self._sealed.scratch


def generate_master_key(rng=None) -> bytes:
    """Generate a fresh 32-byte shared secret ``s_k``."""
    if rng is not None:
        return rng.randbytes(32)
    return os.urandom(32)
