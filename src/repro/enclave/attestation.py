"""Remote attestation stub.

The paper scopes attestation out ("we do not focus on SGX remote
attestation", §1.2) but its architecture depends on the data provider
provisioning the shared key ``s_k`` only into a *genuine* enclave
running *expected* code.  This module models the minimum needed for the
entity wiring in :mod:`repro.core.provider`:

- :func:`measure_code` — an MRENCLAVE-style measurement over the code
  identity string;
- :class:`Quote` — a signed statement binding a measurement to a
  nonce (we "sign" with an HMAC under a simulated Intel provisioning
  secret, standing in for EPID/DCAP signatures);
- :class:`AttestationReport` — the verifier-side result.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.exceptions import AttestationError

# A fixed "platform secret" standing in for Intel's attestation-key
# infrastructure.  In production this is a hardware-fused secret; in the
# simulation its exact value is irrelevant, only that quotes are
# unforgeable by parties without it.
_PLATFORM_SECRET = hashlib.sha256(b"simulated-intel-provisioning-secret").digest()


def measure_code(code_identity: str) -> bytes:
    """MRENCLAVE-style measurement: a digest of the enclave's code identity."""
    return hashlib.sha256(b"mrenclave:" + code_identity.encode("utf-8")).digest()


@dataclass(frozen=True)
class Quote:
    """A platform-signed attestation of a running enclave.

    ``measurement`` identifies the code, ``nonce`` binds the quote to a
    verifier's challenge (anti-replay), ``signature`` is the simulated
    platform signature.
    """

    measurement: bytes
    nonce: bytes
    signature: bytes

    @classmethod
    def generate(cls, measurement: bytes, nonce: bytes) -> "Quote":
        """Produce a quote for a genuine enclave (platform-side)."""
        signature = hmac.new(
            _PLATFORM_SECRET, measurement + nonce, hashlib.sha256
        ).digest()
        return cls(measurement=measurement, nonce=nonce, signature=signature)


@dataclass(frozen=True)
class AttestationReport:
    """The verifier's conclusion about a quote."""

    measurement: bytes
    verified: bool


def verify_quote(quote: Quote, expected_measurement: bytes, nonce: bytes) -> AttestationReport:
    """Verify a quote against the expected code measurement and challenge.

    Raises :class:`AttestationError` on a stale nonce, a wrong
    measurement, or a bad signature — the data provider must not
    provision ``s_k`` in any of those cases.
    """
    if quote.nonce != nonce:
        raise AttestationError("attestation nonce mismatch (possible replay)")
    if quote.measurement != expected_measurement:
        raise AttestationError("enclave measurement does not match expected code")
    expected_sig = hmac.new(
        _PLATFORM_SECRET, quote.measurement + quote.nonce, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(quote.signature, expected_sig):
        raise AttestationError("quote signature invalid (not a genuine platform)")
    return AttestationReport(measurement=quote.measurement, verified=True)
