"""Register-oblivious operators (§4.3, after Ohrimenko et al. [33]).

[33] observes that register-to-register computation is invisible to an
SGX side-channel adversary, and builds two x86 primitives on ``cmov``:

- ``ogreater(x, y)`` — a branch-free comparison producing 0/1, and
- ``omove(cond, x, y)`` — a branch-free conditional move.

The paper composes these into oblivious max, oblivious filtering and
oblivious query formulation.  Here the primitives are implemented with
branch-free integer arithmetic (masking), and each call emits a
fixed-shape event to the ambient :class:`TraceRecorder` — so the
observable trace of any computation built from them depends only on
public sizes, never on data.  Byte-string variants process every byte
regardless of content.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.enclave.trace import TraceRecorder, ambient_recorder


def _rec(recorder: TraceRecorder | None) -> TraceRecorder:
    return recorder if recorder is not None else ambient_recorder()


def ogreater(x: int, y: int, recorder: TraceRecorder | None = None) -> int:
    """Branch-free ``int(x > y)`` — the paper's ``ogreater`` (Fig. 2b).

    Works for arbitrary Python ints (including negatives) by extracting
    the sign bit of ``y - x`` without branching on data.
    """
    diff = y - x
    # Sign of diff via arithmetic: (diff >> big) is -1 for negative, 0 else.
    shift = max(diff.bit_length(), 1) + 1
    sign = (diff >> shift) & 1  # 1 iff diff < 0 iff x > y
    _rec(recorder).emit("ogreater")
    return sign


def oequal(x: int, y: int, recorder: TraceRecorder | None = None) -> int:
    """Branch-free ``int(x == y)``."""
    diff = x - y
    shift = max(diff.bit_length(), 1) + 1
    nonzero = ((diff >> shift) & 1) | ((-diff >> shift) & 1)
    _rec(recorder).emit("oequal")
    return 1 - nonzero


def omove(cond: int, x: int, y: int, recorder: TraceRecorder | None = None) -> int:
    """Branch-free ``x if cond else y`` — the paper's ``omove`` (Fig. 2c).

    ``cond`` must be 0 or 1.  Implemented with a mask so neither operand
    selection nor the result path branches on ``cond``.
    """
    mask = -cond  # all-ones when cond == 1, zero when cond == 0
    _rec(recorder).emit("omove")
    return (x & mask) | (y & ~mask)


def omax(x: int, y: int, recorder: TraceRecorder | None = None) -> int:
    """Oblivious maximum — the paper's Fig. 2a composition."""
    get_x = ogreater(x, y, recorder)
    return omove(get_x, x, y, recorder)


def omin(x: int, y: int, recorder: TraceRecorder | None = None) -> int:
    """Oblivious minimum (same composition, flipped)."""
    get_x = ogreater(y, x, recorder)
    return omove(get_x, x, y, recorder)


def obytes_equal(a: bytes, b: bytes, recorder: TraceRecorder | None = None) -> int:
    """Constant-trace byte-string equality.

    Implemented as one big-integer XOR over the full width of both
    inputs — the work done is a function of the (public) lengths only,
    never of where the strings first differ.  The emitted event carries
    only those lengths.
    """
    _rec(recorder).emit("obytes_equal", len(a), len(b))
    if len(a) != len(b):
        # Length is public metadata; unequal lengths compare unequal
        # after a full-width pass over both inputs.
        _ = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
        return 0
    diff = int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    # Branch-free nonzero detection: for 0 <= diff < 2^(8|a|), the sign
    # of -diff shifted far right is -1 iff diff != 0.
    shift = 8 * len(a) + 8
    nonzero = (-diff >> shift) & 1
    return 1 - nonzero


def oselect(
    cond: int, x: bytes, y: bytes, recorder: TraceRecorder | None = None
) -> bytes:
    """Branch-free selection between two equal-length byte strings."""
    if len(x) != len(y):
        raise ValueError("oselect requires equal-length operands")
    mask = (-cond) & 0xFF
    _rec(recorder).emit("oselect", len(x))
    return bytes((a & mask) | (b & (~mask & 0xFF)) for a, b in zip(x, y))


def oaccess(items: Sequence, index: int, recorder: TraceRecorder | None = None):
    """Obliviously read ``items[index]`` by touching every slot.

    A direct subscript would reveal ``index`` through the memory access
    pattern; this linear scan touches all slots and keeps the selected
    one with ``omove``-style masking.  Cost is O(n), the price of
    obliviousness without ORAM.  Items must be ints.
    """
    _rec(recorder).emit("oaccess", len(items))
    result = 0
    for position, item in enumerate(items):
        hit = oequal(position, index, recorder)
        result = omove(hit, item, result, recorder)
    return result


def ocount_matches(
    flags: Sequence[int], recorder: TraceRecorder | None = None
) -> int:
    """Obliviously sum 0/1 flags (used for COUNT aggregation in-enclave)."""
    _rec(recorder).emit("ocount", len(flags))
    total = 0
    for flag in flags:
        total = total + flag  # data-independent: same adds for any flags
    return total
