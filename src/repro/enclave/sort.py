"""Data-independent sorting networks (§4.3, footnote 5).

Concealer+ sorts trapdoors and retrieved tuples with algorithms whose
compare-exchange sequence is fixed by the input *size* alone:

- **Bitonic sort** (Batcher [6]) when the batch fits in the enclave
  page cache, and
- **Leighton's column sort** [25] when it does not — column sort only
  ever sorts one column (r items) at a time, so the in-EPC working set
  stays small while the full batch can be much larger.

Both functions sort ``(key, payload)`` pairs by integer key.  Every
compare-exchange emits a trace event whose public arguments are the two
slot indices — never the data — so trace-equality tests can verify that
the access sequence is identical for any two inputs of the same length.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.enclave.trace import TraceRecorder, ambient_recorder

_SENTINEL_KEY = 1 << 62

# Bitonic's internal padding must sort strictly after any caller key —
# including column_sort's own _SENTINEL_KEY padding — or stripped pads
# could displace real (sentinel-keyed) items.
_PAD_KEY = 1 << 63


# Sort keys are bounded by the sentinels (|key| <= 2^63 plus caller keys);
# a fixed 256-bit arithmetic shift extracts any such difference's sign
# without branching.
_SIGN_SHIFT = 256


def _compare_exchange(
    keys: list[int],
    payloads: list,
    i: int,
    j: int,
) -> None:
    """Put the smaller key at slot ``i`` using branch-free selection.

    No per-exchange trace event is emitted: the (i, j) sequence of a
    sorting network is a fixed function of the input *size*, so the
    single size-parameterised event emitted by the caller already
    carries everything an observer could learn.  The swap itself is
    masked arithmetic — still no data-dependent branch.
    """
    a, b = keys[i], keys[j]
    swap = ((b - a) >> _SIGN_SHIFT) & 1  # 1 iff a > b
    mask = -swap
    keys[i] = (b & mask) | (a & ~mask)
    keys[j] = (a & mask) | (b & ~mask)
    # Payloads are opaque objects; select by masked index (0 or 1), which
    # mirrors a cmov on the payload pointer.
    pair = (payloads[i], payloads[j])
    payloads[i] = pair[swap]
    payloads[j] = pair[1 - swap]


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def bitonic_sort(
    items: Sequence,
    key: Callable[[object], int],
    recorder: TraceRecorder | None = None,
) -> list:
    """Sort ``items`` ascending by integer ``key`` with a bitonic network.

    The network shape depends only on ``len(items)``: inputs are padded
    to the next power of two with sentinel slots that sort to the end
    and are stripped before returning.

    >>> bitonic_sort([3, 1, 2], key=lambda v: v)
    [1, 2, 3]
    """
    recorder = recorder if recorder is not None else ambient_recorder()
    n = len(items)
    if n <= 1:
        return list(items)
    size = _next_power_of_two(n)
    keys = [key(item) for item in items] + [_PAD_KEY] * (size - n)
    payloads = list(items) + [None] * (size - n)
    recorder.emit("bitonic_sort", n, size)

    length = 2
    while length <= size:
        step = length // 2
        while step >= 1:
            for i in range(size):
                j = i ^ step
                if j > i:
                    ascending = (i & length) == 0
                    if ascending:
                        _compare_exchange(keys, payloads, i, j)
                    else:
                        _compare_exchange(keys, payloads, j, i)
            step //= 2
        length *= 2

    return payloads[:n]


def column_sort(
    items: Sequence,
    key: Callable[[object], int],
    rows: int | None = None,
    recorder: TraceRecorder | None = None,
) -> list:
    """Sort with Leighton's eight-step column sort [25].

    The items are laid out in an ``r x s`` column-major matrix with
    ``r % s == 0`` and ``r >= 2 (s-1)^2``; only one column (``r`` items)
    is ever sorted at a time, so the resident working set is ``O(r)``
    even though the batch has ``r*s`` items — this is how the enclave
    sorts batches larger than the EPC.  Column sorts use the bitonic
    network, keeping the whole procedure data-independent.

    ``rows`` picks ``r`` explicitly; by default a valid shape is chosen.
    Inputs are padded with sentinels to fill the matrix.
    """
    recorder = recorder if recorder is not None else ambient_recorder()
    n = len(items)
    if n <= 1:
        return list(items)

    r, s = _choose_shape(n, rows)
    total = r * s
    keys = [key(item) for item in items] + [_SENTINEL_KEY] * (total - n)
    payloads = list(items) + [None] * (total - n)
    recorder.emit("column_sort", n, r, s)

    # The matrix is column-major: column c is slots [c*r, (c+1)*r).
    def sort_columns() -> None:
        for c in range(s):
            start = c * r
            column = list(zip(keys[start : start + r], payloads[start : start + r]))
            column = bitonic_sort(column, key=lambda kv: kv[0], recorder=recorder)
            for offset, (k, p) in enumerate(column):
                keys[start + offset] = k
                payloads[start + offset] = p

    def permute(mapping: list[int]) -> None:
        """Apply slot permutation: new[i] = old[mapping[i]]."""
        keys[:] = [keys[m] for m in mapping]
        payloads[:] = [payloads[m] for m in mapping]

    # Step 2: "transpose" — pick the entries up in column-major order and
    # deposit them row-major, which rakes each sorted column evenly across
    # all columns.  Step 4 applies the inverse permutation.
    transpose = [0] * total
    for k in range(total):  # k-th entry picked up (column-major slot order)
        dest = (k % s) * r + (k // s)  # deposited at row k//s, column k%s
        transpose[dest] = k
    inverse = [0] * total
    for i, m in enumerate(transpose):
        inverse[m] = i

    sort_columns()  # step 1
    permute(transpose)  # step 2
    sort_columns()  # step 3
    permute(inverse)  # step 4
    sort_columns()  # step 5

    # Steps 6-8: shift down by r//2 into a virtual (s+1)-column matrix
    # bracketed by -inf / +inf sentinels, sort columns, unshift.
    half = r // 2
    low = [(-_SENTINEL_KEY, None)] * half
    high = [(_SENTINEL_KEY, None)] * half
    shifted = low + list(zip(keys, payloads)) + high
    out: list = []
    for c in range(s + 1):
        column = shifted[c * r : (c + 1) * r]
        column = bitonic_sort(column, key=lambda kv: kv[0], recorder=recorder)
        out.extend(column)
    merged = out[half : half + total]  # drop the sentinel brackets
    keys[:] = [k for k, _ in merged]
    payloads[:] = [p for _, p in merged]

    return [p for k, p in zip(keys, payloads) if k != _SENTINEL_KEY][:n]


def _choose_shape(n: int, rows: int | None) -> tuple[int, int]:
    """Pick a valid (r, s) column-sort shape covering n items."""
    if rows is not None:
        r = rows
        if r % 2:
            raise ValueError("column-sort row count must be even (half-shift step)")
        s = max(1, -(-n // r))
        while r % s != 0 or r < 2 * (s - 1) ** 2:
            s += 1
            if s > r or r * s > 64 * n + r:
                raise ValueError(
                    f"rows={rows} cannot form a valid column-sort shape for n={n}"
                )
        return r, s
    # Grow s while r = ceil(n/s), rounded up to an even multiple of s,
    # still satisfies Leighton's r >= 2(s-1)^2 requirement.  r must be
    # even so the step-6 half-shift brackets are symmetric.
    best = (n + (n % 2), 1)
    for s in range(1, 65):
        step = s if s % 2 == 0 else 2 * s  # even multiple of s
        r = -(-n // s)
        if r % step:
            r += step - (r % step)
        if r >= 2 * (s - 1) ** 2 and r * s >= n:
            best = (r, s)
    return best
