"""SGX enclave simulator.

The paper runs its trusted logic inside an Intel SGX enclave written in
C.  No SGX hardware is available offline, so this package simulates the
properties Concealer actually uses:

- an isolated trusted agent holding the shared secret ``s_k``
  (:class:`~repro.enclave.enclave.Enclave`), with a simulated EPC
  (enclave page cache) budget that bounds in-enclave working sets;
- attestation: the data provider provisions ``s_k`` only after
  verifying an enclave *quote*
  (:mod:`repro.enclave.attestation`);
- register-oblivious operators ``omove`` / ``ogreater`` from
  Ohrimenko et al. [33] (:mod:`repro.enclave.oblivious`);
- data-independent sorting: bitonic sort for in-EPC batches and
  Leighton's column sort for larger ones
  (:mod:`repro.enclave.sort`);
- and — crucially for a *reproduction* — a side-channel observer
  (:mod:`repro.enclave.trace`) that records the branch/memory event
  stream of in-enclave computation, so the test-suite can *prove*
  obliviousness by comparing traces across different inputs instead of
  asserting it.
"""

from repro.enclave.attestation import AttestationReport, Quote, measure_code
from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.enclave.oblivious import (
    oaccess,
    oequal,
    ogreater,
    omove,
    oselect,
)
from repro.enclave.sort import bitonic_sort, column_sort
from repro.enclave.trace import TraceRecorder, trace_signature

__all__ = [
    "AttestationReport",
    "Enclave",
    "EnclaveConfig",
    "Quote",
    "TraceRecorder",
    "bitonic_sort",
    "column_sort",
    "measure_code",
    "oaccess",
    "oequal",
    "ogreater",
    "omove",
    "oselect",
    "trace_signature",
]
