"""Synthetic WiFi connectivity trace (the paper's Dataset 1).

The real dataset: 2000+ campus access points reporting
``⟨location, time, device⟩`` tuples, 136M rows over 202 days, with
heavy skew — §9.1 reports a minimum of ≈6,000 rows across all
locations in an hour and a maximum of ≈50,000 (≈8.3× peak/off-peak).

The generator reproduces those shape properties at configurable scale:

- a **diurnal load curve**: a raised-cosine day profile calibrated so
  peak-hour volume ≈ ``peak_ratio`` × off-peak volume;
- **Zipf-skewed access-point popularity** (a few busy lecture halls,
  a long tail of corridor APs);
- **per-device behaviour**: each device present in an hour reports
  once per ``report_interval`` seconds from a dwell location.

All randomness flows from one seed, so every experiment is
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

SECONDS_PER_HOUR = 3600
HOURS_PER_DAY = 24


@dataclass(frozen=True)
class WifiConfig:
    """Generator parameters.

    ``rows_per_hour_offpeak`` and ``peak_ratio`` set the diurnal curve
    (paper: ≈6K off-peak, ≈50K peak → ratio ≈8.3).  ``zipf_s`` is the
    access-point popularity exponent.
    """

    access_points: int = 64
    devices: int = 400
    rows_per_hour_offpeak: int = 600
    peak_ratio: float = 8.3
    report_interval: int = 60
    zipf_s: float = 1.1
    seed: int = 2021

    def location_domain(self) -> tuple[str, ...]:
        """All access-point names (the public location domain)."""
        return tuple(f"ap{i:04d}" for i in range(self.access_points))

    def device_domain(self) -> tuple[str, ...]:
        """All device ids (the observation domain)."""
        return tuple(f"dev{i:05d}" for i in range(self.devices))


def _hour_volume(config: WifiConfig, hour_of_day: int) -> int:
    """Target row volume for one hour of the diurnal curve.

    A raised cosine peaking at 14:00: off-peak trough = the configured
    floor, peak = floor × peak_ratio.
    """
    phase = 2.0 * math.pi * (hour_of_day - 14) / HOURS_PER_DAY
    blend = (1.0 + math.cos(phase)) / 2.0  # 1 at 14:00, 0 at 02:00
    low = config.rows_per_hour_offpeak
    high = config.rows_per_hour_offpeak * config.peak_ratio
    return int(low + (high - low) * blend)


def _zipf_weights(n: int, s: float) -> list[float]:
    """Unnormalised Zipf popularity weights for n items."""
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def generate_wifi_epoch(
    config: WifiConfig,
    epoch_start: int,
    epoch_duration: int,
    rng: random.Random | None = None,
) -> list[tuple[str, int, str]]:
    """Generate one epoch's records ``(location, time, device)``.

    Record timestamps are multiples of ``report_interval`` within
    ``[epoch_start, epoch_start + epoch_duration)``.
    """
    rng = rng if rng is not None else random.Random(config.seed ^ epoch_start)
    locations = list(config.location_domain())
    devices = list(config.device_domain())
    ap_weights = _zipf_weights(len(locations), config.zipf_s)

    records: list[tuple[str, int, str]] = []
    hours = max(1, epoch_duration // SECONDS_PER_HOUR)
    for hour_index in range(hours):
        hour_start = epoch_start + hour_index * SECONDS_PER_HOUR
        hour_of_day = (hour_start // SECONDS_PER_HOUR) % HOURS_PER_DAY
        volume = _hour_volume(config, hour_of_day)
        # Scale for partial epochs shorter than an hour.
        slot_seconds = min(SECONDS_PER_HOUR, epoch_duration - hour_index * SECONDS_PER_HOUR)
        volume = max(1, volume * slot_seconds // SECONDS_PER_HOUR)

        reports_per_device = max(1, slot_seconds // config.report_interval)
        active_devices = max(1, volume // reports_per_device)
        present = rng.sample(devices, min(active_devices, len(devices)))
        for device in present:
            # A device dwells at one AP for the hour, with occasional roaming.
            home = rng.choices(locations, weights=ap_weights)[0]
            for slot in range(reports_per_device):
                timestamp = hour_start + slot * config.report_interval
                if timestamp >= epoch_start + epoch_duration:
                    break
                location = home
                if rng.random() < 0.1:  # 10% of readings roam
                    location = rng.choices(locations, weights=ap_weights)[0]
                records.append((location, timestamp, device))
    records.sort(key=lambda r: (r[1], r[0], r[2]))
    return records


def generate_wifi_trace(
    config: WifiConfig,
    epochs: int,
    epoch_duration: int,
    first_epoch_id: int = 0,
) -> list[tuple[int, list[tuple[str, int, str]]]]:
    """Generate a multi-epoch trace: ``[(epoch_id, records), ...]``."""
    trace = []
    for index in range(epochs):
        epoch_id = first_epoch_id + index * epoch_duration
        rng = random.Random(config.seed * 1_000_003 + epoch_id)
        trace.append(
            (epoch_id, generate_wifi_epoch(config, epoch_id, epoch_duration, rng))
        )
    return trace
