"""Workload generators standing in for the paper's datasets.

The paper evaluates on (i) a real 136M-row UCI WiFi connectivity trace
(2000+ access points, 202 days, strong diurnal skew) and (ii) 136M rows
of TPC-H LineItem.  Neither is available offline, so this package
generates synthetic equivalents whose *shape* matches what the
experiments depend on:

- :mod:`repro.workloads.wifi` — diurnal load curve (peak ≈50K rows/h
  vs off-peak ≈6K rows/h, per §9.2 Exp 5), Zipf-skewed access-point
  popularity, per-device session behaviour;
- :mod:`repro.workloads.tpch` — a dbgen-like LineItem generator for
  the nine columns §9.1 selects, with TPC-H domains;
- :mod:`repro.workloads.queries` — builders for Table 4's Q1–Q5 and
  the TPC-H count/sum/min/max queries of Exp 8.
"""

from repro.workloads.queries import (
    build_q1,
    build_q2,
    build_q3,
    build_q4,
    build_q5,
    build_tpch_query,
)
from repro.workloads.stream import bin_retrieval_counts, query_stream
from repro.workloads.tpch import TpchConfig, generate_lineitem
from repro.workloads.wifi import WifiConfig, generate_wifi_epoch, generate_wifi_trace

__all__ = [
    "TpchConfig",
    "WifiConfig",
    "bin_retrieval_counts",
    "query_stream",
    "build_q1",
    "build_q2",
    "build_q3",
    "build_q4",
    "build_q5",
    "build_tpch_query",
    "generate_lineitem",
    "generate_wifi_epoch",
    "generate_wifi_trace",
]
