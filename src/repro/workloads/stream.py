"""Query-workload streams (for §8-style frequency analyses).

§8's attack and defence both reason about *query workloads*: how often
each domain value is queried.  This module generates reproducible
streams of point queries over a value domain under three classic
workload shapes:

- ``uniform`` — every value equally likely (§8's explicit assumption);
- ``zipf``    — skewed popularity (real dashboards poll hot locations);
- ``sweep``   — one query per domain value, round-robin (a monitoring
  loop refreshing every panel).

Streams yield :class:`~repro.core.queries.PointQuery` objects ready for
``ServiceProvider.execute_point``; the §8 ablation and the workload-
attack tests consume them.
"""

from __future__ import annotations

import random
from collections.abc import Iterator, Sequence

from repro.core.queries import PointQuery
from repro.exceptions import QueryError


def _zipf_weights(n: int, s: float) -> list[float]:
    return [1.0 / (rank**s) for rank in range(1, n + 1)]


def query_stream(
    values: Sequence,
    timestamps: Sequence[int],
    count: int,
    shape: str = "uniform",
    zipf_s: float = 1.1,
    seed: int = 0,
) -> Iterator[PointQuery]:
    """Yield ``count`` point queries over ``values`` × ``timestamps``.

    ``values`` are the index-attribute values queried (single-attribute
    schemas; wrap them per schema arity yourself for wider grids).

    >>> stream = query_stream(["a", "b"], [0, 60], count=4, shape="sweep")
    >>> [q.index_values[0] for q in stream]
    ['a', 'b', 'a', 'b']
    """
    if not values or not timestamps:
        raise QueryError("query stream needs non-empty values and timestamps")
    if shape not in ("uniform", "zipf", "sweep"):
        raise QueryError(f"unknown workload shape {shape!r}")
    rng = random.Random(seed)
    weights = _zipf_weights(len(values), zipf_s) if shape == "zipf" else None
    for index in range(count):
        if shape == "sweep":
            value = values[index % len(values)]
        elif shape == "zipf":
            value = rng.choices(list(values), weights=weights)[0]
        else:
            value = values[rng.randrange(len(values))]
        timestamp = timestamps[rng.randrange(len(timestamps))]
        yield PointQuery(index_values=(value,), timestamp=timestamp)


def bin_retrieval_counts(
    service, queries: Iterator[PointQuery], epoch_id: int
) -> dict[int, int]:
    """Run a stream and tally how often each bin was the query's target.

    This is the §8 adversary's observable: which bin each query
    resolved to.  With super-bins enabled the *fetches* spread over the
    whole group; this helper records the pre-grouping targets so tests
    can compare raw vs balanced retrieval distributions.
    """
    context = service.context_for(epoch_id)
    counts: dict[int, int] = {}
    for query in queries:
        cid = context.grid.place_values(query.index_values, query.timestamp)
        target = context.layout.bin_of_cell_id(cid).index
        counts[target] = counts.get(target, 0) + 1
        service.execute_point(query, epoch_id=epoch_id)
    return counts
