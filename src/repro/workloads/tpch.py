"""A dbgen-like TPC-H LineItem generator (the paper's Dataset 2).

§9.1 selects nine LineItem columns — Orderkey, Partkey, Suppkey,
Linenumber, Quantity, Extendedprice, Discount, Tax, Returnflag — and
notes the large domains (Orderkey up to 34M at their scale).  This
generator follows the TPC-H specification's per-column rules at a
configurable scale factor:

- orders have 1–7 lineitems (uniform), linenumber 1..7;
- partkey uniform over ``200_000 × SF`` parts, suppkey derived from
  partkey the way dbgen spreads suppliers;
- quantity uniform 1..50, discount 0.00–0.10, tax 0.00–0.08,
  extendedprice = quantity × a part-derived retail price;
- returnflag ∈ {R, A, N}.

Concealer needs a time attribute for epoching; rows get a synthetic
arrival timestamp in insertion order (the paper's "dynamically
arriving data" reading of the benchmark).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

RETURN_FLAGS = ("R", "A", "N")


@dataclass(frozen=True)
class TpchConfig:
    """Scale knobs; ``scale_factor=1.0`` ≈ 6M lineitems in real TPC-H.

    ``rows`` caps the generated lineitems directly (the experiments
    size by row count, not by SF).
    """

    rows: int = 10_000
    scale_factor: float = 0.01
    arrival_interval: int = 1
    seed: int = 1992

    @property
    def part_count(self) -> int:
        """Number of distinct parts at this scale."""
        return max(1, int(200_000 * self.scale_factor))

    @property
    def supplier_count(self) -> int:
        """Number of distinct suppliers at this scale."""
        return max(1, int(10_000 * self.scale_factor))


def _supplier_for_part(partkey: int, supplier_count: int, replica: int) -> int:
    """dbgen's PART_SUPP_BRIDGE: the replica-th supplier of a part."""
    return (
        partkey
        + replica * (supplier_count // 4 + (partkey - 1) // supplier_count)
    ) % supplier_count + 1


def _retail_price(partkey: int) -> int:
    """dbgen's part retail price formula (in cents)."""
    return 90000 + ((partkey // 10) % 20001) + 100 * (partkey % 1000)


def generate_lineitem(
    config: TpchConfig,
    epoch_start: int = 0,
    rng: random.Random | None = None,
) -> list[tuple]:
    """Generate LineItem rows in the schema order of ``TPCH_*_SCHEMA``.

    Row layout: (orderkey, partkey, suppkey, linenumber, quantity,
    extendedprice, discount, tax, returnflag, time).  Prices, discounts
    and taxes are integers (cents / basis points) so aggregates stay
    exact.
    """
    rng = rng if rng is not None else random.Random(config.seed)
    rows: list[tuple] = []
    orderkey = 0
    arrival = epoch_start
    while len(rows) < config.rows:
        orderkey += 1
        lineitem_count = rng.randint(1, 7)
        for linenumber in range(1, lineitem_count + 1):
            if len(rows) >= config.rows:
                break
            partkey = rng.randint(1, config.part_count)
            replica = rng.randint(0, 3)
            suppkey = _supplier_for_part(partkey, config.supplier_count, replica)
            quantity = rng.randint(1, 50)
            extendedprice = quantity * _retail_price(partkey)
            discount = rng.randint(0, 10)   # percent
            tax = rng.randint(0, 8)         # percent
            returnflag = RETURN_FLAGS[rng.randrange(3)]
            rows.append(
                (
                    orderkey,
                    partkey,
                    suppkey,
                    linenumber,
                    quantity,
                    extendedprice,
                    discount,
                    tax,
                    returnflag,
                    arrival,
                )
            )
            arrival += config.arrival_interval
    return rows


def orderkey_domain(rows: list[tuple]) -> tuple[int, int]:
    """The (min, max) orderkey range of a generated batch."""
    keys = [row[0] for row in rows]
    return min(keys), max(keys)
