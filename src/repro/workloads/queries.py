"""Builders for the paper's evaluation queries (Table 4 and Exp 8).

Table 4's five WiFi queries:

- **Q1** — # observations at location ``l_i`` during ``t_1..t_x``;
- **Q2** — locations with top-k observations during ``t_1..t_x``;
- **Q3** — locations with at least ``threshold`` observations during
  ``t_1..t_x`` (answered via the same top-k machinery: collect per-
  location counts, keep those ≥ threshold);
- **Q4** — which locations saw observation ``o_i`` during ``t_1..t_x``
  (individualized);
- **Q5** — # times observation ``o_i`` was seen at ``l_i`` during
  ``t_1..t_x`` (individualized).

Exp 8's TPC-H queries: count / sum / min / max over 2-D ``(OK, LN)``
or 4-D ``(OK, PK, SK, LN)`` point predicates.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.queries import Aggregate, Predicate, PointQuery, RangeQuery
from repro.exceptions import QueryError


def build_q1(location: str, time_start: int, time_end: int) -> RangeQuery:
    """Q1: count observations at one location over a time range."""
    return RangeQuery(
        index_values=(location,),
        time_start=time_start,
        time_end=time_end,
        aggregate=Aggregate.COUNT,
    )


def build_q2(
    location_domain: Sequence[str], time_start: int, time_end: int, k: int
) -> RangeQuery:
    """Q2: the k locations with the most observations in the range."""
    domain = tuple(location_domain)
    return RangeQuery(
        index_values=(domain,),
        time_start=time_start,
        time_end=time_end,
        aggregate=Aggregate.TOP_K,
        target="location",
        k=k,
        predicate=Predicate(group=("location",), values=(domain,)),
    )


def build_q3(
    location_domain: Sequence[str], time_start: int, time_end: int, threshold: int
) -> RangeQuery:
    """Q3: all locations with ≥ ``threshold`` observations in the range.

    Expressed as an exhaustive top-k (k = |domain|); the caller applies
    the threshold to the returned (location, count) pairs — see
    :func:`apply_q3_threshold`.
    """
    domain = tuple(location_domain)
    return RangeQuery(
        index_values=(domain,),
        time_start=time_start,
        time_end=time_end,
        aggregate=Aggregate.TOP_K,
        target="location",
        k=len(domain),
        predicate=Predicate(group=("location",), values=(domain,)),
    )


def apply_q3_threshold(
    ranked: Sequence[tuple[str, int]], threshold: int
) -> list[str]:
    """Filter Q3's ranked output down to locations meeting the floor."""
    return [location for location, count in ranked if count >= threshold]


def build_q4(
    observation: str,
    location_domain: Sequence[str],
    time_start: int,
    time_end: int,
) -> RangeQuery:
    """Q4: which locations saw ``observation`` during the range."""
    return RangeQuery(
        index_values=(tuple(location_domain),),
        time_start=time_start,
        time_end=time_end,
        aggregate=Aggregate.COLLECT,
        predicate=Predicate(group=("observation",), values=(observation,)),
    )


def build_q5(
    observation: str, location: str, time_start: int, time_end: int
) -> RangeQuery:
    """Q5: how many times ``observation`` occurred at ``location``."""
    return RangeQuery(
        index_values=(location,),
        time_start=time_start,
        time_end=time_end,
        aggregate=Aggregate.COUNT,
        predicate=Predicate(
            group=("location", "observation"), values=(location, observation)
        ),
    )


_TPCH_AGGREGATES = {
    "count": (Aggregate.COUNT, None),
    "sum": (Aggregate.SUM, "extendedprice"),
    "min": (Aggregate.MIN, "extendedprice"),
    "max": (Aggregate.MAX, "extendedprice"),
}


def build_tpch_query(
    kind: str,
    index_values: tuple,
    timestamp: int,
    target: str | None = None,
) -> PointQuery:
    """An Exp 8 point query over a 2-D or 4-D TPC-H grid.

    ``kind`` ∈ {count, sum, min, max}; ``index_values`` match the
    schema's index attributes (2 or 4 of them).  Sum/min/max default to
    ``extendedprice`` as the target.
    """
    if kind not in _TPCH_AGGREGATES:
        raise QueryError(f"unknown TPC-H query kind {kind!r}")
    aggregate, default_target = _TPCH_AGGREGATES[kind]
    return PointQuery(
        index_values=index_values,
        timestamp=timestamp,
        aggregate=aggregate,
        target=target or default_target,
    )
