#!/usr/bin/env python3
"""Aggregate application: a building occupancy map (Q1–Q3 of Table 4).

The paper's motivating aggregate application (§1): a third party builds
occupancy dashboards from encrypted WiFi data without ever seeing a
cleartext reading.  This example:

- outsources a morning of campus WiFi traffic,
- renders an occupancy heat strip per access point over the morning
  (repeated Q1 range counts),
- reports the top-5 busiest locations (Q2) and every location above an
  occupancy threshold (Q3),

and prints what the adversary observed: a single fetch volume per
query, regardless of how busy each location actually was.

Run:  python examples/occupancy_map.py
"""

import random

from repro import (
    Aggregate,
    Client,
    DataProvider,
    FakeStrategy,
    GridSpec,
    ServiceProvider,
    WIFI_SCHEMA,
)
from repro.workloads import WifiConfig, build_q1, build_q2, build_q3, generate_wifi_epoch
from repro.workloads.queries import apply_q3_threshold

EPOCH_DURATION = 4 * 3600  # a four-hour morning
TIME_STEP = 60
BUCKETS = 8                # heat-strip resolution


def heat_char(count: int, peak: int) -> str:
    """Map a count to a five-level heat glyph."""
    if peak == 0:
        return "."
    level = min(4, count * 5 // (peak + 1))
    return " .:*#"[level]


def main() -> None:
    spec = GridSpec(
        dimension_sizes=(16, 64), cell_id_count=256, epoch_duration=EPOCH_DURATION
    )
    provider = DataProvider(
        WIFI_SCHEMA, spec, first_epoch_id=0,
        time_granularity=TIME_STEP, rng=random.Random(11),
        # Range-heavy workloads pad with many fakes; ship a full pool.
        fake_strategy=FakeStrategy.EQUAL,
    )
    service = ServiceProvider(WIFI_SCHEMA)
    provider.provision_enclave(service.enclave)
    credential = provider.register_user("facilities-dashboard")
    service.install_registry(provider.sealed_registry())

    config = WifiConfig(access_points=12, devices=200, seed=11)
    records = generate_wifi_epoch(config, 0, EPOCH_DURATION)
    service.ingest_epoch(provider.encrypt_epoch(records, epoch_id=0))
    print(f"outsourced {len(records)} readings over {EPOCH_DURATION // 3600}h\n")

    client = Client(service, credential)
    locations = sorted({r[0] for r in records})
    bucket = EPOCH_DURATION // BUCKETS

    # --- Q1 heat strips -------------------------------------------------
    counts: dict[str, list[int]] = {}
    volumes = set()
    for location in locations:
        row = []
        for b in range(BUCKETS):
            query = build_q1(location, b * bucket, (b + 1) * bucket - 1)
            answer, stats = service.execute_range(query, method="ebpb")
            row.append(answer)
            volumes.add(stats.rows_fetched)
        counts[location] = row
    peak = max(max(row) for row in counts.values())

    print("occupancy heat map (rows: access points, cols: time buckets)")
    for location in locations:
        strip = "".join(heat_char(c, peak) for c in counts[location])
        print(f"  {location}  |{strip}|  total {sum(counts[location]):4d}")

    # --- Q2: top-5 busiest ----------------------------------------------
    q2 = build_q2(locations, 0, EPOCH_DURATION - 1, k=5)
    top5, _ = service.execute_range(q2, method="winsecrange")
    print("\ntop-5 busiest locations (Q2):")
    for location, count in top5:
        print(f"  {location}: {count}")

    # --- Q3: threshold --------------------------------------------------
    threshold = peak * BUCKETS // 4
    q3 = build_q3(locations, 0, EPOCH_DURATION - 1, threshold)
    ranked, _ = service.execute_range(q3, method="winsecrange")
    busy = apply_q3_threshold(ranked, threshold)
    print(f"\nlocations with >= {threshold} observations (Q3): {busy}")

    # --- the adversary's view -------------------------------------------
    print(
        f"\nadversary-visible fetch volumes across all Q1 queries: "
        f"{sorted(volumes)} — a single constant per eBPB budget; "
        "occupancy skew is invisible in the volumes"
    )
    assert len(volumes) == 1, "volume hiding violated"


if __name__ == "__main__":
    main()
