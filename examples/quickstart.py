#!/usr/bin/env python3
"""Quickstart: outsource one epoch of WiFi data and query it.

Walks the full Figure-1 flow end to end:

1. the data provider attests and provisions the service provider's
   enclave (Phase 0 setup);
2. a user registers and the encrypted registry ships to the service;
3. one epoch of synthetic WiFi readings is encrypted with Algorithm 1
   and ingested into the service's DBMS (Phase 1);
4. the user runs a point count and three range-count variants
   (Phases 2–4) and the script cross-checks every answer against the
   cleartext ground truth.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    Aggregate,
    Client,
    DataProvider,
    GridSpec,
    ServiceProvider,
    WIFI_SCHEMA,
)
from repro.workloads import WifiConfig, generate_wifi_epoch

EPOCH_DURATION = 3600  # one hour
TIME_STEP = 60         # devices report once a minute


def main() -> None:
    # --- Phase 0: entities and attestation -----------------------------
    spec = GridSpec(
        dimension_sizes=(16, 32),   # 16 location columns x 32 time rows
        cell_id_count=128,          # u < x*y cell-ids spread over the grid
        epoch_duration=EPOCH_DURATION,
    )
    provider = DataProvider(
        WIFI_SCHEMA,
        spec,
        first_epoch_id=0,
        time_granularity=TIME_STEP,
        rng=random.Random(7),
    )
    service = ServiceProvider(WIFI_SCHEMA)
    provider.provision_enclave(service.enclave)
    print("enclave attested and provisioned")

    credential = provider.register_user("alice", device_id="dev00001")
    service.install_registry(provider.sealed_registry())

    # --- Phase 1: encrypt and outsource one epoch ----------------------
    config = WifiConfig(access_points=24, devices=150, seed=7)
    records = generate_wifi_epoch(config, epoch_start=0, epoch_duration=EPOCH_DURATION)
    package = provider.encrypt_epoch(records, epoch_id=0)
    service.ingest_epoch(package)
    print(
        f"epoch 0: {package.real_count} real + {package.fake_count} fake rows "
        f"outsourced ({package.metadata_bytes()} metadata bytes)"
    )

    # --- Phases 2-4: query as a registered user ------------------------
    client = Client(service, credential)
    location, timestamp = records[0][0], records[0][1]

    result = client.point_count((location,), timestamp)
    truth = sum(1 for r in records if r[0] == location and r[1] == timestamp)
    print(
        f"point count @ {location} t={timestamp}: {result.answer} "
        f"(truth {truth}; adversary saw {result.stats.rows_fetched} rows fetched)"
    )
    assert result.answer == truth

    for method in ("multipoint", "ebpb", "winsecrange"):
        result = client.range_aggregate(
            (location,), 600, 1800, aggregate=Aggregate.COUNT, method=method
        )
        truth = sum(1 for r in records if r[0] == location and 600 <= r[1] <= 1800)
        print(
            f"range count [600,1800] via {method:<11}: {result.answer} "
            f"(truth {truth}; {result.stats.rows_fetched} rows fetched)"
        )
        assert result.answer == truth

    print("quickstart complete — all answers verified against ground truth")


if __name__ == "__main__":
    main()
