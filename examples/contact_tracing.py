#!/usr/bin/env python3
"""Individualized application: exposure tracing (Q4–Q5 of Table 4).

The paper's motivating individualized application (§1): during an
infectious-disease outbreak, a user asks *about their own movements* —
which locations they visited, how often they were at a specific place —
and cross-references an exposure window.  Authorization matters: the
registry binds each user to their device id, so nobody (including the
service provider) can replay these queries about someone else's device.

This example:

1. registers two users with their device ids;
2. outsources a day-part of WiFi data;
3. has Alice list her visited locations (Q4) and count visits to a
   specific lecture hall (Q5);
4. computes Alice/Bob co-location candidates by intersecting Alice's
   visited locations with Bob's (each user querying only themselves);
5. shows the authorization failure when Alice tries to target Bob's
   device directly.

Run:  python examples/contact_tracing.py
"""

import random

from repro import Client, DataProvider, GridSpec, ServiceProvider, WIFI_SCHEMA
from repro.exceptions import AuthorizationError, QueryError
from repro.workloads import WifiConfig, generate_wifi_epoch

EPOCH_DURATION = 2 * 3600
TIME_STEP = 60


def main() -> None:
    spec = GridSpec(
        dimension_sizes=(12, 32), cell_id_count=128, epoch_duration=EPOCH_DURATION
    )
    provider = DataProvider(
        WIFI_SCHEMA, spec, first_epoch_id=0,
        time_granularity=TIME_STEP, rng=random.Random(23),
    )
    service = ServiceProvider(WIFI_SCHEMA)
    provider.provision_enclave(service.enclave)

    config = WifiConfig(access_points=10, devices=40, seed=23)
    records = generate_wifi_epoch(config, 0, EPOCH_DURATION)
    # Pick two devices that actually appear in the trace.
    present = sorted({r[2] for r in records})
    alice_device, bob_device = present[0], present[1]
    alice_cred = provider.register_user("alice", device_id=alice_device)
    bob_cred = provider.register_user("bob", device_id=bob_device)
    service.install_registry(provider.sealed_registry())
    service.ingest_epoch(provider.encrypt_epoch(records, epoch_id=0))
    locations = tuple(sorted({r[0] for r in records}))
    print(f"outsourced {len(records)} readings across {len(locations)} locations\n")

    alice = Client(service, alice_cred)
    bob = Client(service, bob_cred)
    window = (0, EPOCH_DURATION - 1)

    # --- Q4: where was I? ------------------------------------------------
    alice_locs = alice.my_locations(locations, *window).answer
    truth = sorted({r[0] for r in records if r[2] == alice_device})
    assert alice_locs == truth
    print(f"alice's locations during the window (Q4): {alice_locs}")

    # --- Q5: how often was I at one place? --------------------------------
    if alice_locs:
        spot = alice_locs[0]
        visits = alice.my_visits_count(spot, locations, *window).answer
        truth_visits = sum(
            1 for r in records if r[2] == alice_device and r[0] == spot
        )
        assert visits == truth_visits
        print(f"alice's visits to {spot} (Q5): {visits}")

    # --- co-location: each user queries only themselves --------------------
    bob_locs = bob.my_locations(locations, *window).answer
    overlap = sorted(set(alice_locs) & set(bob_locs))
    print(f"bob's locations: {bob_locs}")
    print(f"possible exposure sites (intersection): {overlap}")

    # --- authorization: alice cannot target bob's device -------------------
    # The registry entry pins alice to her own device id; there is no API
    # path that accepts another device, and the enclave-side authorization
    # check backs that up.
    try:
        service.registry.authorize_individualized(
            service.registry.authenticate(
                "alice",
                challenge := service.challenge(),
                alice_cred.answer_challenge(challenge),
            ),
            bob_device,
        )
    except AuthorizationError as error:
        print(f"\nauthorization holds: {error}")
    else:
        raise QueryError("authorization should have failed")


if __name__ == "__main__":
    main()
