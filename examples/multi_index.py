#!/usr/bin/env python3
"""Multiple indexes over one relation (§3 / §9.1).

Algorithm 1 builds one cell-based index per attribute combination.
This example deploys Index(L,T) and Index(O,T) side by side — one
shared enclave, one storage engine, one master key — and shows why:
the same Q4 query ("which locations saw device X?") answered through
the observation index fetches a fraction of the rows the location
index needs, because the location index has to sweep every location.

Run:  python examples/multi_index.py
"""

import random

from repro import (
    GridSpec,
    MultiIndexDeployment,
    Predicate,
    PointQuery,
    RangeQuery,
    WIFI_OBS_SCHEMA,
    WIFI_SCHEMA,
)
from repro.workloads import WifiConfig, generate_wifi_epoch

EPOCH_DURATION = 3600
TIME_STEP = 60


def main() -> None:
    config = WifiConfig(access_points=20, devices=120, seed=47)
    records = generate_wifi_epoch(config, 0, EPOCH_DURATION)
    locations = tuple(sorted({r[0] for r in records}))
    device = records[len(records) // 3][2]

    deployment = MultiIndexDeployment(
        schemas=[WIFI_SCHEMA, WIFI_OBS_SCHEMA],
        grid_specs=[
            GridSpec(dimension_sizes=(20, 30), cell_id_count=200,
                     epoch_duration=EPOCH_DURATION),
            GridSpec(dimension_sizes=(32, 30), cell_id_count=256,
                     epoch_duration=EPOCH_DURATION),
        ],
        first_epoch_id=0,
        time_granularity=TIME_STEP,
        rng=random.Random(47),
    )
    deployment.ingest_epoch(records, 0)
    print(f"ingested {len(records)} rows into indexes: {deployment.index_names()}")
    print(f"storage tables: {deployment.engine.table_names()}\n")

    # --- routing --------------------------------------------------------
    print(f"route(location)    -> {deployment.route(('location',))}")
    print(f"route(observation) -> {deployment.route(('observation',))}\n")

    # --- the same Q4 through both indexes --------------------------------
    window = (0, EPOCH_DURATION - 1)
    truth = sum(1 for r in records if r[2] == device)

    via_obs = RangeQuery(
        index_values=(device,), time_start=window[0], time_end=window[1],
        predicate=Predicate(group=("observation",), values=(device,)),
    )
    answer_obs, stats_obs = deployment.execute_range(
        "wifi-obs", via_obs, method="multipoint"
    )

    via_loc = RangeQuery(
        index_values=(locations,), time_start=window[0], time_end=window[1],
        predicate=Predicate(group=("observation",), values=(device,)),
    )
    answer_loc, stats_loc = deployment.execute_range(
        "wifi", via_loc, method="multipoint"
    )

    assert answer_obs == answer_loc == truth
    print(f"Q4 for {device}: {truth} observations")
    print(f"  via Index(O,T): fetched {stats_obs.rows_fetched} rows")
    print(f"  via Index(L,T): fetched {stats_loc.rows_fetched} rows "
          f"({stats_loc.rows_fetched / max(stats_obs.rows_fetched, 1):.1f}x more)")

    # --- point queries stay volume-hiding per index ----------------------
    volumes = set()
    for probe_device in sorted({r[2] for r in records})[:6]:
        _, stats = deployment.execute_point(
            "wifi-obs",
            PointQuery(index_values=(probe_device,), timestamp=records[0][1]),
        )
        volumes.add(stats.rows_fetched)
    print(f"\nobservation-index point volumes over 6 devices: {sorted(volumes)}")
    assert len(volumes) == 1


if __name__ == "__main__":
    main()
