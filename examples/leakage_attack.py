#!/usr/bin/env python3
"""Adversary demo: the attacks Concealer is designed to stop.

Plays the honest-but-curious service provider against two systems that
store the same data:

1. a naive deterministic-encryption index (Table 1's "DET" row) —
   frequency analysis of the stored ciphertexts plus output-size
   observation reconstructs which encrypted location is which with
   high accuracy;
2. Concealer — every ciphertext is unique (timestamp-salted DET) and
   every point query fetches exactly one bin size, so both attacks
   collapse to guessing.

The script prints reconstruction accuracy side by side.

Run:  python examples/leakage_attack.py
"""

import random
from collections import Counter

from repro import DataProvider, GridSpec, PointQuery, ServiceProvider, WIFI_SCHEMA
from repro.analysis import (
    frequency_attack,
    profile_queries,
    reconstruction_accuracy,
    volume_attack,
)
from repro.analysis.adversary import histogram_flatness
from repro.baselines import DetIndexBaseline
from repro.workloads import WifiConfig, generate_wifi_epoch

EPOCH_DURATION = 3600
TIME_STEP = 60


def main() -> None:
    config = WifiConfig(
        access_points=12, devices=150, zipf_s=1.4, seed=31
    )  # strong skew: easy prey for frequency analysis
    records = generate_wifi_epoch(config, 0, EPOCH_DURATION)
    print(f"dataset: {len(records)} readings, skewed across 12 locations\n")

    # Auxiliary knowledge: the public location-popularity distribution
    # (the paper's §2.1 background-knowledge assumption).
    truth_counts = Counter((r[0], r[1]) for r in records)
    location_freq = Counter(r[0] for r in records)
    aux = dict(location_freq)

    # ---------------------------------------------------------- DET target
    det = DetIndexBaseline(WIFI_SCHEMA, b"\x05" * 32)
    det.ingest(records, 0)
    hist = det.attribute_histogram(0, "location")

    # Ground truth mapping ciphertext -> location, built with provider
    # knowledge purely to SCORE the attack:
    truth_map = {
        det.attribute_ciphertext(0, "location", loc): loc for loc in location_freq
    }

    guess = frequency_attack(hist, aux)
    det_accuracy = reconstruction_accuracy(guess, truth_map)
    print("against the DET index (column-wise DET on `location`):")
    print(f"  ciphertext histogram flatness : {histogram_flatness(hist):.2f} (1.0 = flat)")
    print(f"  frequency-attack accuracy      : {det_accuracy:.1%}")

    # Volume attack against DET: query every location at one timestamp.
    t0 = records[len(records) // 2][1]
    locations = sorted({r[0] for r in records})
    observed, labels = {}, {}
    for i, loc in enumerate(locations):
        _, stats = det.execute_point(PointQuery(index_values=(loc,), timestamp=t0), 0)
        observed[i] = stats.rows_fetched
        labels[i] = f"q{i}"
    aux_t0 = {loc: truth_counts.get((loc, t0), 0) for loc in locations}
    vol_guess = volume_attack(observed, labels, aux_t0)
    vol_truth = {f"q{i}": loc for i, loc in enumerate(locations)}
    print(f"  volume-attack accuracy         : {reconstruction_accuracy(vol_guess, vol_truth):.1%}\n")

    # ------------------------------------------------------ Concealer target
    spec = GridSpec(dimension_sizes=(12, 32), cell_id_count=96, epoch_duration=EPOCH_DURATION)
    provider = DataProvider(
        WIFI_SCHEMA, spec, 0, time_granularity=TIME_STEP, rng=random.Random(31)
    )
    service = ServiceProvider(WIFI_SCHEMA)
    provider.provision_enclave(service.enclave)
    service.ingest_epoch(provider.encrypt_epoch(records, 0))

    concealer_hist: dict[bytes, int] = {}
    for row in service.engine.scan("epoch_0"):
        concealer_hist[row[-1]] = concealer_hist.get(row[-1], 0) + 1
    print("against Concealer:")
    print(
        f"  ciphertext histogram flatness : "
        f"{histogram_flatness(concealer_hist):.2f} (every ciphertext unique)"
    )
    concealer_guess = frequency_attack(concealer_hist, aux)
    # With a flat histogram the rank-match is an arbitrary permutation,
    # and no stored ciphertext even corresponds to a bare location.
    print(
        f"  frequency-attack accuracy      : "
        f"{reconstruction_accuracy(concealer_guess, truth_map):.1%}"
    )

    for loc in locations:
        service.execute_point(PointQuery(index_values=(loc,), timestamp=t0))
    profile = profile_queries(service.engine.access_log)
    print(
        f"  distinct per-query volumes     : {sorted(profile.distinct_volumes)} "
        "(volume attack sees one constant)"
    )


if __name__ == "__main__":
    main()
