"""Crash recovery: enclave rebuilds, retries, quarantine, rotation rollback."""

from __future__ import annotations

import pytest

from repro import PointQuery, RangeQuery
from repro.core.rotation import rotate_service_keys, rotation_token
from repro.exceptions import (
    EnclaveCrashed,
    EnclaveMemoryError,
    IntegrityViolation,
    TransientStorageError,
)
from repro.faults import FaultEvent, FaultInjector, FaultSpec, QuarantineLog
from repro.faults.recovery import RecoveryCoordinator

from tests.faults.conftest import (
    MASTER_KEY,
    TIME_STEP,
    faulted_stack,
    point_truth,
    range_truth,
)


def first_reading(records):
    location, timestamp, _ = records[0]
    return location, timestamp


class TestTransientRetries:
    def test_query_survives_transient_read_faults(self):
        provider, service, injector, records = faulted_stack(
            [FaultSpec("storage.read.transient", probability=1.0, max_fires=2)]
        )
        location, timestamp = first_reading(records)
        answer, stats = service.execute_point(
            PointQuery(index_values=(location,), timestamp=timestamp)
        )
        assert answer == point_truth(records, location, timestamp)
        # Two transient faults consumed two backoff sleeps — virtual ones.
        assert len(service.clock.sleeps) == 2

    def test_ingest_retries_per_row_write_faults(self):
        provider, service, injector, records = faulted_stack(
            [FaultSpec("storage.write.transient", probability=1.0, max_fires=2)],
            ingest=False,
        )
        service.ingest_epoch(provider.encrypt_epoch(records, epoch_id=0))
        assert 0 in service.ingested_epochs()
        assert len(service.clock.sleeps) == 2
        location, timestamp = first_reading(records)
        answer, _ = service.execute_point(
            PointQuery(index_values=(location,), timestamp=timestamp)
        )
        assert answer == point_truth(records, location, timestamp)

    def test_ingest_is_all_or_nothing_when_retries_exhaust(self):
        provider, service, injector, records = faulted_stack(
            [FaultSpec("storage.write.transient", probability=1.0, max_fires=4)],
            ingest=False,
        )
        package = provider.encrypt_epoch(records, epoch_id=0)
        with pytest.raises(TransientStorageError):
            service.ingest_epoch(package)
        # The half-landed epoch is gone: not queryable, not registered.
        assert service.ingested_epochs() == []
        assert not service.engine.has_table("epoch_0")
        # Once the fault budget is spent, the same package lands cleanly.
        service.ingest_epoch(package)
        assert service.ingested_epochs() == [0]


class TestEnclaveRecovery:
    def test_crash_mid_query_then_recover(self, tmp_path):
        provider, service, injector, records = faulted_stack(
            [FaultSpec("enclave.kill.query", probability=1.0, max_fires=1)]
        )
        location, timestamp = first_reading(records)
        query = PointQuery(index_values=(location,), timestamp=timestamp)

        with pytest.raises(EnclaveCrashed):
            service.execute_point(query)
        assert service.enclave.crashed
        # Every ecall on the dead instance fails; nothing silently serves.
        with pytest.raises(EnclaveCrashed):
            service.execute_point(query)

        coordinator = RecoveryCoordinator(provider, service, tmp_path / "c.ckpt")
        actions = coordinator.recover()
        assert actions["enclave"] and not actions["storage"]
        assert not service.enclave.crashed
        assert service.enclave.provisioned

        answer, _ = service.execute_point(query)
        assert answer == point_truth(records, location, timestamp)
        # The recovered stack still verifies and answers ranges too.
        t1 = timestamp + TIME_STEP
        answer, _ = service.execute_range(
            RangeQuery(index_values=(location,), time_start=timestamp, time_end=t1),
            method="ebpb",
        )
        assert answer == range_truth(records, location, timestamp, t1)

    def test_recovery_reinstalls_registry(self, tmp_path):
        provider, service, injector, records = faulted_stack([])
        provider.register_user("alice", device_id=records[0][2])
        service.install_registry(provider.sealed_registry())
        service.enclave.crash("test kill")
        RecoveryCoordinator(provider, service).recover()
        assert service.registry.authenticate is not None  # registry reopened

    def test_storage_recovery_from_checkpoint(self, tmp_path):
        provider, service, injector, records = faulted_stack([])
        coordinator = RecoveryCoordinator(provider, service, tmp_path / "s.ckpt")
        coordinator.checkpoint()

        # The host loses its DBMS wholesale.
        for table in list(service.engine.table_names()):
            service.engine.drop_table(table)
        service.enclave.crash("power event")

        coordinator.recover(restore_storage=True)
        location, timestamp = first_reading(records)
        answer, _ = service.execute_point(
            PointQuery(index_values=(location,), timestamp=timestamp)
        )
        assert answer == point_truth(records, location, timestamp)


class TestEpcHygiene:
    def test_faulted_queries_do_not_leak_epc(self):
        provider, service, injector, records = faulted_stack([])
        location, timestamp = first_reading(records)
        query = PointQuery(index_values=(location,), timestamp=timestamp)
        service.execute_point(query)
        baseline = service.enclave.epc_used  # context metadata stays resident

        injector.arm(FaultSpec("enclave.epc.exhaust", probability=1.0, max_fires=3))
        for _ in range(3):
            with pytest.raises(EnclaveMemoryError):
                service.execute_point(query)
            assert service.enclave.epc_used == baseline

        injector.arm(FaultSpec("storage.row.drop", probability=1.0, max_fires=1))
        with pytest.raises(IntegrityViolation):
            service.execute_point(query)
        assert service.enclave.epc_used == baseline

        # Lift the quarantine (the victim may share the query's cell) and
        # confirm the stack still answers cleanly at the same budget.
        service.quarantine.clear()
        answer, _ = service.execute_point(query)
        assert answer == point_truth(records, location, timestamp)
        assert service.enclave.epc_used == baseline


class TestQuarantine:
    def test_violation_is_recorded_and_fails_fast_afterwards(self):
        provider, service, injector, records = faulted_stack(
            [FaultSpec("storage.row.drop", probability=1.0, max_fires=1)]
        )
        location, timestamp = first_reading(records)
        with pytest.raises(IntegrityViolation) as info:
            service.execute_point(
                PointQuery(index_values=(location,), timestamp=timestamp)
            )
        violation = info.value
        assert violation.epoch_id == 0
        assert violation.cell_id is not None
        assert len(service.quarantine) == 1
        report = service.quarantine.reports()[0]
        assert report["kind"] in ("chain-mismatch", "counter-gap", "missing-tag")

        # The poisoned cell now fails fast with a structured verdict.
        with pytest.raises(IntegrityViolation, match="quarantine"):
            service.quarantine.check(violation.epoch_id, violation.cell_id)

    def test_clear_lifts_the_quarantine(self):
        log = QuarantineLog()
        log.record(IntegrityViolation("tampered", epoch_id=3, cell_id=9))
        assert log.is_quarantined(3, 9)
        log.clear(epoch_id=3)
        assert not log.is_quarantined(3, 9)
        log.check(3, 9)  # no longer raises


class TestRotationCrashSafety:
    NEW_MASTER = bytes(range(64, 96))

    def _query_all(self, service, records):
        """Answer every distinct (location, timestamp) and check truth."""
        for location, timestamp in sorted({(r[0], r[1]) for r in records}):
            answer, _ = service.execute_point(
                PointQuery(index_values=(location,), timestamp=timestamp)
            )
            assert answer == point_truth(records, location, timestamp)

    def test_mid_rotation_crash_rolls_back_and_recovers(self, tmp_path):
        """The acceptance scenario: kill mid-rotation, recover, old epoch
        answers correctly under the still-valid old key."""
        provider, service, injector, records = faulted_stack([])
        before = {
            row.row_id: row.columns
            for row in service.engine._tables["epoch_0"].scan()
        }

        # Force the kill on the 8th rotation kill-point consultation —
        # mid-table, after several rows were already re-encrypted.
        replay = FaultInjector.from_schedule(
            [FaultEvent("enclave.kill.rotation", 7)]
        )
        service.enclave.fault_injector = replay
        service.engine.fault_injector = replay

        token = rotation_token(MASTER_KEY, self.NEW_MASTER)
        with pytest.raises(EnclaveCrashed):
            rotate_service_keys(service, self.NEW_MASTER, token)
        assert replay.fired  # the kill really happened mid-rotation

        # Rollback restored every stored byte of the half-rotated table.
        after = {
            row.row_id: row.columns
            for row in service.engine._tables["epoch_0"].scan()
        }
        assert after == before

        coordinator = RecoveryCoordinator(provider, service, tmp_path / "r.ckpt")
        assert coordinator.recover()["enclave"]
        # The old key is still the live key: every query over the
        # previous epoch verifies and matches ground truth.
        assert service.enclave.master_key == MASTER_KEY
        self._query_all(service, records)

    def test_clean_rotation_then_crash_recovery_uses_new_master(self, tmp_path):
        provider, service, injector, records = faulted_stack([])
        token = rotation_token(MASTER_KEY, self.NEW_MASTER)
        rotated = rotate_service_keys(service, self.NEW_MASTER, token)
        assert rotated > 0
        provider.adopt_master(self.NEW_MASTER)
        self._query_all(service, records)

        # A crash after rotation must re-provision the *new* master —
        # the stored epochs only decrypt under it now.
        service.enclave.crash("post-rotation kill")
        RecoveryCoordinator(provider, service).recover()
        assert service.enclave.master_key == self.NEW_MASTER
        self._query_all(service, records)
