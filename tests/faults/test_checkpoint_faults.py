"""Checkpoint integrity framing: round-trips, torn writes, loud failures."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import StorageError, TransientStorageError
from repro.faults import FaultInjector, FaultSpec
from repro.storage.checkpoint import (
    checkpoint_engine,
    read_framed,
    restore_engine,
    write_framed,
)
from repro.storage.engine import StorageEngine


def random_engine(seed: int) -> StorageEngine:
    """An engine with random tables, rows, and indexes."""
    rng = random.Random(f"ckpt-prop-{seed}")
    engine = StorageEngine(btree_order=rng.choice([8, 16, 64]))
    for t in range(rng.randrange(1, 4)):
        name = f"table_{t}"
        engine.create_table(name, ["index_key", "payload"])
        engine.create_index(name, "index_key")
        for r in range(rng.randrange(0, 30)):
            engine.insert(name, [rng.randbytes(12), rng.randbytes(20)])
        # Deletions leave row-id gaps the snapshot must preserve.
        for row in list(engine._tables[name].scan()):
            if rng.random() < 0.2:
                engine.delete(name, row.row_id)
    return engine


@pytest.mark.parametrize("seed", range(12))
def test_round_trip_property(tmp_path, seed):
    """Restore reproduces tables, rows, row-id state, and live indexes."""
    engine = random_engine(seed)
    path = checkpoint_engine(engine, tmp_path / "snap.ckpt")
    restored = restore_engine(path)

    assert restored.table_names() == engine.table_names()
    for name in engine.table_names():
        original, copy = engine._tables[name], restored._tables[name]
        assert copy.column_names == original.column_names
        assert copy._next_row_id == original._next_row_id
        assert {r.row_id: r.columns for r in copy.scan()} == {
            r.row_id: r.columns for r in original.scan()
        }
        # The rebuilt B+-tree index answers lookups identically.
        for row in original.scan():
            assert [
                r.columns for r in restored.lookup(name, "index_key", row.columns[0])
            ] == [
                r.columns for r in engine.lookup(name, "index_key", row.columns[0])
            ]


def test_checkpoint_overwrites_previous_snapshot_atomically(tmp_path):
    path = tmp_path / "snap.ckpt"
    first = random_engine(1)
    checkpoint_engine(first, path)
    second = random_engine(2)
    checkpoint_engine(second, path)
    assert restore_engine(path).table_names() == second.table_names()
    assert not path.with_name(path.name + ".tmp").exists()


class TestLoudFailures:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no checkpoint"):
            restore_engine(tmp_path / "absent.ckpt")

    def test_truncated_below_footer(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        checkpoint_engine(random_engine(3), path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(StorageError, match="truncated"):
            restore_engine(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        checkpoint_engine(random_engine(3), path)
        blob = path.read_bytes()
        # Drop payload bytes but keep the footer intact.
        path.write_bytes(blob[:-200] + blob[-56:])
        with pytest.raises(StorageError, match="truncated"):
            restore_engine(path)

    def test_flipped_byte(self, tmp_path):
        path = tmp_path / "snap.ckpt"
        checkpoint_engine(random_engine(4), path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(StorageError, match="SHA-256"):
            restore_engine(path)

    def test_legacy_unframed_pickle_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "legacy.ckpt"
        path.write_bytes(
            pickle.dumps({"version": 1, "tables": {}, "pad": b"x" * 128})
        )
        with pytest.raises(StorageError, match="no integrity footer"):
            restore_engine(path)

    def test_unknown_version_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "future.ckpt"
        write_framed(path, pickle.dumps({"version": 99}))
        with pytest.raises(StorageError, match="unsupported checkpoint version"):
            restore_engine(path)

    def test_valid_frame_invalid_pickle_rejected(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        write_framed(path, b"\x80\x05 definitely not a pickle")
        with pytest.raises(StorageError, match="failed to\\s+deserialise"):
            restore_engine(path)


def test_torn_write_fails_loudly_then_rejected_on_restore(tmp_path):
    """An injected mid-write crash leaves a file restore refuses to load."""
    injector = FaultInjector(
        0, [FaultSpec("storage.checkpoint.torn", probability=1.0)]
    )
    path = tmp_path / "torn.ckpt"
    with pytest.raises(TransientStorageError, match="torn mid-write"):
        checkpoint_engine(random_engine(5), path, fault_injector=injector)
    assert path.exists()  # the torn bytes are on disk...
    with pytest.raises(StorageError):  # ...and are rejected, not loaded
        restore_engine(path)

    # The fault spec is spent (max_fires=1): the retry succeeds and the
    # torn file is replaced wholesale.
    checkpoint_engine(random_engine(5), path, fault_injector=injector)
    assert restore_engine(path).table_names() == random_engine(5).table_names()


def test_read_framed_round_trip(tmp_path):
    path = tmp_path / "frame.bin"
    write_framed(path, b"payload bytes")
    assert read_framed(path) == b"payload bytes"
