"""Backoff jitter: explicitly threaded, seeded RNG; deterministic replay."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DeadlineExceeded, TransientStorageError
from repro.faults.clock import RetryPolicy, VirtualClock
from repro.replication import Deadline


def flaky(failures):
    state = {"left": failures}

    def fn():
        if state["left"]:
            state["left"] -= 1
            raise TransientStorageError("flaky")
        return "ok"

    return fn


def jittered_sleeps(seed):
    clock = VirtualClock()
    policy = RetryPolicy(
        attempts=4,
        base_delay=0.1,
        jitter=0.5,
        rng=random.Random(seed),
        clock=clock,
    )
    assert policy.call(flaky(3)) == "ok"
    return clock.sleeps


class TestSeededJitter:
    def test_same_seed_replays_the_same_backoff_schedule(self):
        assert jittered_sleeps(42) == jittered_sleeps(42)

    def test_different_seeds_decorrelate(self):
        assert jittered_sleeps(1) != jittered_sleeps(2)

    def test_jittered_delays_stay_within_the_nominal_envelope(self):
        clock = VirtualClock()
        policy = RetryPolicy(
            attempts=6,
            base_delay=0.1,
            max_delay=1.0,
            jitter=0.5,
            rng=random.Random(7),
            clock=clock,
        )
        with pytest.raises(TransientStorageError):
            policy.call(flaky(99))
        assert len(clock.sleeps) == 5
        for slept, nominal in zip(clock.sleeps, policy.delays()):
            assert nominal * 0.5 <= slept <= nominal

    def test_delays_reports_the_jitter_free_schedule(self):
        policy = RetryPolicy(
            attempts=4, base_delay=0.1, jitter=0.9, rng=random.Random(3)
        )
        assert policy.delays() == [0.1, 0.2, 0.4]

    def test_zero_jitter_sleeps_exactly_the_nominal_schedule(self):
        clock = VirtualClock()
        policy = RetryPolicy(attempts=4, base_delay=0.1, clock=clock)
        with pytest.raises(TransientStorageError):
            policy.call(flaky(99))
        assert clock.sleeps == policy.delays()

    def test_unthreaded_callers_fall_back_to_a_fixed_seed(self):
        first = RetryPolicy(jitter=0.5)
        second = RetryPolicy(jitter=0.5)
        assert [first._delay(k) for k in range(3)] == [
            second._delay(k) for k in range(3)
        ]

    def test_jitter_fraction_is_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestDeadlineInBackoff:
    def test_spent_budget_stops_the_backoff_loop(self):
        clock = VirtualClock()
        policy = RetryPolicy(attempts=5, base_delay=10.0, clock=clock)
        deadline = Deadline.after(clock, 5.0)
        clock.sleep(6.0)
        with pytest.raises(DeadlineExceeded):
            policy.call(flaky(99), deadline=deadline)
        # The failed attempt never slept: the budget died before backoff.
        assert clock.sleeps == [6.0]
