"""Fixtures for the fault-injection and recovery tests.

Everything here builds *small* stacks (one 4-minute epoch, 24 rows) so
individual fault scenarios stay fast enough to run hundreds of seeds.
"""

from __future__ import annotations

import random

from repro import (
    DataProvider,
    GridSpec,
    ServiceConfig,
    ServiceProvider,
    WIFI_SCHEMA,
)
from repro.enclave.enclave import Enclave, EnclaveConfig
from repro.faults import FaultInjector, VirtualClock
from repro.storage.engine import StorageEngine

MASTER_KEY = bytes(range(32))
EPOCH_DURATION = 240
TIME_STEP = 60
LOCATIONS = tuple(f"ap{i}" for i in range(4))
DEVICES = tuple(f"dev{i}" for i in range(6))


def small_epoch(epoch_start: int = 0, seed: int = 5) -> list[tuple]:
    """24 deterministic WiFi readings covering one epoch."""
    rng = random.Random(f"faults-epoch-{epoch_start}-{seed}")
    return [
        (LOCATIONS[rng.randrange(len(LOCATIONS))], epoch_start + t, device)
        for t in range(0, EPOCH_DURATION, TIME_STEP)
        for device in DEVICES
    ]


def faulted_stack(
    specs=(),
    seed: int = 1,
    verify: bool = True,
    ingest: bool = True,
):
    """A provisioned (provider, service, injector, records) quadruple.

    The injector is shared by the storage engine and the enclave, as in
    the chaos harness; ``specs`` arms it (empty = no faults).
    """
    injector = FaultInjector(seed, list(specs))
    spec = GridSpec(
        dimension_sizes=(len(LOCATIONS), EPOCH_DURATION // TIME_STEP),
        cell_id_count=16,
        epoch_duration=EPOCH_DURATION,
    )
    provider = DataProvider(
        WIFI_SCHEMA,
        spec,
        first_epoch_id=0,
        master_key=MASTER_KEY,
        time_granularity=TIME_STEP,
        rng=random.Random(seed),
    )
    service = ServiceProvider(
        WIFI_SCHEMA,
        ServiceConfig(verify=verify),
        engine=StorageEngine(fault_injector=injector),
        enclave=Enclave(EnclaveConfig(), fault_injector=injector),
        clock=VirtualClock(),
    )
    provider.provision_enclave(service.enclave)
    service.install_registry(provider.sealed_registry())
    records = small_epoch(0, seed=seed)
    if ingest:
        service.ingest_epoch(provider.encrypt_epoch(records, epoch_id=0))
    return provider, service, injector, records


def point_truth(records, location, timestamp) -> int:
    return sum(1 for r in records if r[0] == location and r[1] == timestamp)


def range_truth(records, location, t0, t1) -> int:
    return sum(1 for r in records if r[0] == location and t0 <= r[1] <= t1)
