"""The chaos corpus: hundreds of randomized fault schedules, zero lies.

Every run executes a seeded mix of epoch ingestion (inserts), point
queries, range queries, and checkpoint cycles while the injector fires
faults.  The single invariant: an operation either returns the oracle's
answer or raises a typed :class:`ConcealerError` — **never** a silently
wrong answer.  Any failure here replays exactly with
``python -m repro --chaos-seed <seed>``.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import ChaosRun, default_specs, run_chaos
from repro.faults.injector import FaultSpec

pytestmark = pytest.mark.chaos


def assert_never_silently_wrong(report):
    assert not report.silent_wrong, (
        f"SILENT WRONG answers under seed {report.seed} — replay with "
        f"`python -m repro --chaos-seed {report.seed}`: "
        + "; ".join(
            f"{o.op}: answer={o.answer!r} expected={o.expected!r}"
            for o in report.silent_wrong
        )
    )


def aggressive_specs():
    """Roughly doubled firing rates and budgets versus the default mix."""
    doubled = []
    for spec in default_specs():
        doubled.append(
            FaultSpec(
                spec.site,
                probability=min(1.0, spec.probability * 2),
                max_fires=None if spec.max_fires is None else spec.max_fires + 1,
            )
        )
    return doubled


def tamper_specs():
    """Malicious-host mix: heavy result tampering, nothing else."""
    return [
        FaultSpec("storage.row.corrupt", probability=0.5, max_fires=None),
        FaultSpec("storage.row.drop", probability=0.5, max_fires=None),
        FaultSpec("storage.row.duplicate", probability=0.5, max_fires=None),
    ]


class TestNoSilentWrongAnswers:
    """≥200 randomized fault-schedule runs across three fault mixes."""

    @pytest.mark.parametrize("seed", range(100))
    def test_default_mix(self, seed):
        assert_never_silently_wrong(run_chaos(seed, ops=8))

    @pytest.mark.parametrize("seed", range(100, 160))
    def test_aggressive_mix(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=8, specs=aggressive_specs())
        )

    @pytest.mark.parametrize("seed", range(200, 250))
    def test_tamper_only_mix(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=6, specs=tamper_specs())
        )


class TestCorpusCoverage:
    """The corpus must actually exercise faults, not vacuously pass."""

    def test_faults_fire_and_recoveries_happen(self):
        reports = [run_chaos(seed, ops=8) for seed in range(40)]
        assert sum(r.faults_fired for r in reports) >= 40
        assert any(r.recoveries for r in reports)
        assert any(r.failed_loudly for r in reports)
        # Most operations still succeed: faults degrade, not destroy.
        ok = sum(sum(o.ok for o in r.outcomes) for r in reports)
        total = sum(len(r.outcomes) for r in reports)
        assert ok / total > 0.5

    def test_tampering_is_detected_loudly(self):
        reports = [
            run_chaos(seed, ops=6, specs=tamper_specs())
            for seed in range(200, 220)
        ]
        errors = {
            o.error for r in reports for o in r.outcomes if o.error is not None
        }
        assert "IntegrityViolation" in errors

    def test_op_mix_covers_all_workloads(self):
        ops = set()
        for seed in range(30):
            report = run_chaos(seed, ops=10)
            ops.update(o.op for o in report.outcomes)
        assert {"ingest", "point", "range", "checkpoint"} <= ops


class TestDeterministicReplay:
    @pytest.mark.parametrize("seed", [3, 17, 104])
    def test_fingerprints_are_byte_identical(self, seed):
        first = run_chaos(seed, ops=10)
        second = run_chaos(seed, ops=10)
        assert first.schedule == second.schedule  # byte-identical schedule
        assert first.fingerprint() == second.fingerprint()

    def test_schedules_differ_across_seeds(self):
        schedules = {run_chaos(seed, ops=8).schedule for seed in range(12)}
        assert len(schedules) > 1

    def test_run_reports_full_schedule_even_on_crashes(self):
        run = ChaosRun(3)
        report = run.run(ops=10)
        assert report.faults_fired == len(run.injector.fired)
        assert report.schedule == run.injector.encode_schedule()
