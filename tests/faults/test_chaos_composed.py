"""The composed chaos corpus: sharded fleets of Byzantine replica groups.

≥200 seeded runs at ``--shards {2,3} --replicas 3`` drive the full
gauntlet at once: two-phase ingest and mid-stream key rotation across
shards, shard kills, slow shards, router crashes — while *inside* every
shard a three-replica group absorbs tampered rows, stale replays,
dropped bins, and replica stalls behind verify-then-failover.

Two invariants stack:

1. The fleet oracle is unchanged: every op either matches the oracle
   (honest partials included) or fails with a typed error — zero silent
   wrong, same as the unreplicated corpus.
2. The replica group is a *sub-router* failure domain: runs exist where
   replicas failed and were failed-over entirely in-shard — the router
   saw no ``PartialResult``, no degraded shard, nothing.  Only the
   public-size failover counter betrays that anything happened at all.

Any failure replays exactly with
``python -m repro --chaos-seed <seed> --shards <n> --replicas 3``.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import run_chaos
from repro.faults.chaos_sharded import composed_specs
from repro.faults.injector import FaultSpec
from tests.faults.test_chaos_sharded import assert_never_silently_wrong

pytestmark = pytest.mark.chaos

REPLICAS = 3


def hostile_composed_specs():
    """Shard, router, AND replica faults at elevated rates, few caps."""
    return [
        FaultSpec("shard.kill", probability=0.12, max_fires=None),
        FaultSpec("shard.slow", probability=0.08, max_fires=3),
        FaultSpec("router.crash", probability=0.08, max_fires=2),
        FaultSpec("enclave.kill.rotation", probability=0.05, max_fires=1),
        FaultSpec("replica.tamper", probability=0.20, max_fires=None),
        FaultSpec("replica.replay.stale", probability=0.15, max_fires=4),
        FaultSpec("replica.bin.drop", probability=0.15, max_fires=4),
        FaultSpec("replica.slow", probability=0.10, max_fires=3),
    ]


class TestNoSilentWrongAnswers:
    """≥230 composed runs across two fleet shapes and two fault mixes."""

    @pytest.mark.parametrize("seed", range(9000, 9105))
    def test_two_shards_of_three_replicas(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=12, shards=2, replicas=REPLICAS)
        )

    @pytest.mark.parametrize("seed", range(9200, 9305))
    def test_three_shards_of_three_replicas(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=10, shards=3, replicas=REPLICAS), shards=3
        )

    @pytest.mark.parametrize("seed", range(9400, 9420))
    def test_hostile_composed_mix(self, seed):
        assert_never_silently_wrong(
            run_chaos(
                seed,
                ops=10,
                shards=2,
                replicas=REPLICAS,
                specs=hostile_composed_specs(),
            )
        )


class TestCorpusCoverage:
    """The composed corpus exercises BOTH fault planes, not vacuously."""

    def test_both_fault_planes_fire_and_rotation_runs_mid_stream(self):
        reports = [
            run_chaos(seed, ops=12, shards=2, replicas=REPLICAS)
            for seed in range(9000, 9030)
        ]
        schedule = b"".join(r.schedule for r in reports)
        # Byzantine replica faults and whole-shard faults both landed …
        assert b"replica." in schedule
        assert b"shard." in schedule
        # … with the two-phase rotation running mid-stream under them.
        ops = {o.op for r in reports for o in r.outcomes}
        assert {"ingest", "point", "range", "rotate"} <= ops
        assert sum(r.faults_fired for r in reports) >= 30

    def test_in_shard_failover_is_invisible_to_the_router(self):
        # The acceptance witness: runs where replicas failed over
        # *inside* a shard and the router never noticed — every range
        # came back complete (no PartialResult anywhere in the stream)
        # while the failover counter proves replicas really failed.
        witnesses = 0
        for seed in range(9000, 9105):
            report = run_chaos(seed, ops=12, shards=2, replicas=REPLICAS)
            failovers = report.telemetry.total(
                "concealer_shard_replica_failovers_total"
            )
            partials = [o for o in report.outcomes if "partial" in o.op]
            if failovers > 0 and not partials:
                witnesses += 1
                if witnesses >= 3:
                    break
        assert witnesses >= 3, (
            "fewer than 3 composed corpus runs absorbed a replica "
            f"failover without surfacing any partial (got {witnesses})"
        )

    def test_anti_entropy_repair_runs_inside_the_op_stream(self):
        # The run loop interleaves fleet-wide repair sweeps with the
        # ops; across the corpus some must actually repair or fence.
        repairs = 0
        for seed in range(9200, 9230):
            report = run_chaos(seed, ops=10, shards=3, replicas=REPLICAS)
            repairs += report.telemetry.total(
                "concealer_replica_repairs_total"
            )
        assert repairs > 0

    def test_composed_runs_still_converge_to_verified_fleets(self):
        for seed in range(9400, 9410):
            report = run_chaos(
                seed,
                ops=10,
                shards=2,
                replicas=REPLICAS,
                specs=hostile_composed_specs(),
            )
            finals = [o for o in report.outcomes if o.op == "final-verify"]
            assert finals and all(o.ok for o in finals), (
                f"seed {seed}: final verification failed — replay with "
                f"`python -m repro --chaos-seed {seed} --shards 2 "
                f"--replicas 3`"
            )


class TestDeterministicReplay:
    @pytest.mark.parametrize(
        "seed,shards", [(9007, 2), (9211, 3), (9404, 2)]
    )
    def test_composed_fingerprints_are_byte_identical(self, seed, shards):
        first = run_chaos(seed, ops=10, shards=shards, replicas=REPLICAS)
        second = run_chaos(seed, ops=10, shards=shards, replicas=REPLICAS)
        assert first.schedule == second.schedule
        assert first.fingerprint() == second.fingerprint()

    def test_default_specs_compose_shard_and_replica_planes(self):
        sites = {spec.site for spec in composed_specs()}
        assert any(site.startswith("replica.") for site in sites)
        assert any(site.startswith("shard.") for site in sites)
