"""FaultInjector determinism, replay, caps, and the retry clock."""

from __future__ import annotations

import pytest

from repro.exceptions import TransientStorageError
from repro.faults import (
    FAULT_SITES,
    FaultEvent,
    FaultInjector,
    FaultSpec,
    NULL_INJECTOR,
    RetryPolicy,
    VirtualClock,
)


def drive(injector, consultations=40):
    """Consult every site a fixed number of times; return the schedule."""
    for _ in range(consultations):
        for site in FAULT_SITES:
            injector.fire(site)
    return injector.encode_schedule()


def some_specs():
    return [
        FaultSpec("storage.read.transient", probability=0.2, max_fires=3),
        FaultSpec("storage.row.corrupt", probability=0.1, max_fires=None),
        FaultSpec("enclave.kill.query", probability=0.05, max_fires=1),
    ]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = drive(FaultInjector(7, some_specs()))
        second = drive(FaultInjector(7, some_specs()))
        assert first == second
        assert first  # the chosen probabilities do fire something

    def test_different_seeds_diverge(self):
        schedules = {drive(FaultInjector(seed, some_specs())) for seed in range(8)}
        assert len(schedules) > 1

    def test_interleaving_independence(self):
        """A site's N-th decision ignores consultations of *other* sites."""
        solo = FaultInjector(3, some_specs())
        for _ in range(40):
            solo.fire("storage.read.transient")
        mixed = FaultInjector(3, some_specs())
        for _ in range(40):
            mixed.fire("enclave.kill.rotation")  # unarmed noise
            mixed.fire("storage.read.transient")
        assert [e.index for e in solo.fired if e.site == "storage.read.transient"] == [
            e.index for e in mixed.fired if e.site == "storage.read.transient"
        ]

    def test_corrupt_bytes_deterministic_and_corrupting(self):
        data = bytes(range(64))
        a = FaultInjector(9).corrupt_bytes(data)
        b = FaultInjector(9).corrupt_bytes(data)
        assert a == b
        assert a != data
        assert len(a) == len(data)


class TestReplay:
    def test_from_schedule_fires_exactly_the_recorded_points(self):
        original = FaultInjector(11, some_specs())
        drive(original)
        events = FaultInjector.decode_schedule(original.encode_schedule())
        assert events == original.fired

        replay = FaultInjector.from_schedule(events)
        assert drive(replay) == original.encode_schedule()

    def test_replay_ignores_probabilities(self):
        replay = FaultInjector.from_schedule(
            [FaultEvent("storage.read.transient", 2)]
        )
        assert replay.fire("storage.read.transient") is None  # index 0
        assert replay.fire("storage.read.transient") is None  # index 1
        assert replay.fire("storage.read.transient") is not None  # index 2
        assert replay.fire("storage.read.transient") is None  # index 3

    def test_encode_decode_round_trip_empty(self):
        assert FaultInjector.decode_schedule(b"") == []


class TestCapsAndValidation:
    def test_max_fires_caps_firings(self):
        injector = FaultInjector(
            0, [FaultSpec("storage.row.drop", probability=1.0, max_fires=2)]
        )
        fired = [injector.fire("storage.row.drop") for _ in range(10)]
        assert sum(spec is not None for spec in fired) == 2
        assert injector.consultations("storage.row.drop") == 10

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("storage.row.explode", probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("storage.row.drop", probability=1.5)

    def test_null_injector_never_fires_and_cannot_be_armed(self):
        for site in FAULT_SITES:
            assert NULL_INJECTOR.fire(site) is None
        with pytest.raises(ValueError, match="immutable"):
            NULL_INJECTOR.arm(FaultSpec("storage.row.drop", probability=1.0))


class TestRetryPolicy:
    def test_backoff_sequence_capped_and_virtual(self):
        clock = VirtualClock()
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, max_delay=0.3, clock=clock
        )
        calls = []

        def flaky():
            calls.append(1)
            raise TransientStorageError("disk hiccup")

        with pytest.raises(TransientStorageError):
            policy.call(flaky)
        assert len(calls) == 5
        # 0.1, 0.2, then capped at 0.3 — recorded, never actually slept.
        assert clock.sleeps == [0.1, 0.2, 0.3, 0.3]
        assert clock.sleeps == policy.delays()

    def test_succeeds_after_transient_faults(self):
        clock = VirtualClock()
        policy = RetryPolicy(attempts=3, base_delay=0.01, clock=clock)
        state = {"left": 2}

        def flaky():
            if state["left"]:
                state["left"] -= 1
                raise TransientStorageError("transient")
            return "answer"

        assert policy.call(flaky) == "answer"
        assert len(clock.sleeps) == 2

    def test_permanent_errors_are_not_retried(self):
        clock = VirtualClock()
        policy = RetryPolicy(attempts=4, clock=clock)
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(broken)
        assert len(calls) == 1
        assert clock.sleeps == []
