"""The sharded chaos corpus: ≥200 multi-enclave runs, zero silent lies.

Each run drives the whole sharded stack — two-phase ingest, scatter-
gather point/range queries, checkpoint cycles, a mid-stream two-phase
key rotation, router crashes and restarts — over 2/3/4 shards whose
enclaves are killed mid-query, mid-ingest, and mid-rotation under a
seeded schedule, with slow-shard deadline expiries layered on top.

The invariant is the same as every other corpus: an operation either
returns the oracle's answer (a :class:`PartialResult` must match the
oracle restricted to *exactly* its claimed served shards — an honest
partial, never a quiet undercount sold as complete) or fails with a
typed error.  Any failure replays exactly with
``python -m repro --chaos-seed <seed> --shards <n>``.
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.faults.chaos import run_chaos
from repro.faults.injector import FaultSpec

pytestmark = pytest.mark.chaos


def assert_never_silently_wrong(report, shards=2):
    assert not report.silent_wrong, (
        f"SILENT WRONG answers under seed {report.seed} — replay with "
        f"`python -m repro --chaos-seed {report.seed} --shards {shards}`: "
        + "; ".join(
            f"{o.op}: answer={o.answer!r} expected={o.expected!r}"
            for o in report.silent_wrong
        )
    )
    # Burn-rate alerts must trace back to injected faults: the SLO
    # engine stays quiet on every corpus run whose schedule gave it no
    # reason to page.  A false page here is a regression exactly like a
    # wrong answer.
    if report.faults_fired == 0:
        assert not report.slo_alerts, (
            f"seed {report.seed}: SLO alert on a fault-free run: "
            f"{[a.summary() for a in report.slo_alerts]}"
        )
    if b"shard.slow" not in report.schedule:
        latency_alerts = [
            a for a in report.slo_alerts if a.kind == "latency"
        ]
        assert not latency_alerts, (
            f"seed {report.seed}: latency alert without a shard stall "
            f"in the schedule: {[a.summary() for a in latency_alerts]}"
        )


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)


def hostile_shard_specs():
    """Shard and router faults at elevated, mostly unbounded rates."""
    return [
        FaultSpec("shard.kill", probability=0.15, max_fires=None),
        FaultSpec("shard.slow", probability=0.10, max_fires=4),
        FaultSpec("router.crash", probability=0.10, max_fires=2),
        FaultSpec("enclave.kill.rotation", probability=0.05, max_fires=1),
    ]


class TestNoSilentWrongAnswers:
    """≥220 seeded sharded runs across three fleet sizes and two mixes."""

    @pytest.mark.parametrize("seed", range(4000, 4080))
    def test_two_shard_default_mix(self, seed):
        assert_never_silently_wrong(run_chaos(seed, ops=14, shards=2))

    @pytest.mark.parametrize("seed", range(4100, 4180))
    def test_three_shard_default_mix(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=14, shards=3), shards=3
        )

    @pytest.mark.parametrize("seed", range(4200, 4240))
    def test_four_shard_default_mix(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=12, shards=4), shards=4
        )

    @pytest.mark.parametrize("seed", range(4300, 4330))
    def test_hostile_shard_mix(self, seed):
        assert_never_silently_wrong(
            run_chaos(seed, ops=12, shards=2, specs=hostile_shard_specs())
        )


class TestCorpusCoverage:
    """The corpus must exercise the sharded machinery, not vacuously pass."""

    def test_shard_faults_fire_and_partials_are_honest(self):
        reports = [
            run_chaos(seed, ops=14, shards=2) for seed in range(4000, 4030)
        ]
        assert sum(r.faults_fired for r in reports) >= 30
        assert any(b"shard." in r.schedule for r in reports)
        # Killed shards degrade ranges to *checked* partial answers …
        partial_ops = sum(
            sum(o.op == "range-partial" for o in r.outcomes) for r in reports
        )
        assert partial_ops > 0
        # … and re-admission brings every one of them back.
        readmissions = sum(r.recoveries for r in reports)
        assert readmissions > 0
        ok = sum(sum(o.ok for o in r.outcomes) for r in reports)
        total = sum(len(r.outcomes) for r in reports)
        assert ok / total > 0.6

    def test_router_crashes_and_restarts_mid_stream(self):
        ops = set()
        for seed in range(4100, 4125):
            report = run_chaos(seed, ops=14, shards=3)
            ops.update(o.op for o in report.outcomes)
        assert "router-restart" in ops
        assert {"ingest", "point", "range"} <= ops

    def test_rotation_and_second_epoch_run_with_shard_faults_armed(self):
        rotated = ingested_second = 0
        for seed in range(4000, 4020):
            report = run_chaos(seed, ops=14, shards=2)
            ops = [o.op for o in report.outcomes]
            rotated += "rotate" in ops
            ingested_second += ops.count("ingest") >= 2
        assert rotated > 0
        assert ingested_second > 0

    def test_every_run_converges_to_a_fully_verified_fleet(self):
        # The closing sweep (faults disarmed, fleet healed) must answer
        # every epoch completely — killed shards really were re-admitted.
        for seed in range(4200, 4215):
            report = run_chaos(seed, ops=12, shards=4)
            finals = [o for o in report.outcomes if o.op == "final-verify"]
            assert finals and all(o.ok for o in finals), (
                f"seed {seed}: final verification failed — replay with "
                f"`python -m repro --chaos-seed {seed} --shards 4`"
            )


class TestSLOAndTracing:
    """PR 7: burn-rate alerts and chaos-annotated trace trees."""

    def test_latency_alert_fires_within_one_window_on_injected_stall(self):
        # Arm only shard.slow: the stall burns 2x the 60s dispatch
        # deadline on the virtual clock, far past the 30s latency
        # threshold, so the very first evaluate() after the op stream
        # (one evaluation window) must page the latency objective.
        specs = [FaultSpec("shard.slow", probability=0.9, max_fires=2)]
        report = run_chaos(4500, ops=8, shards=2, specs=specs)
        assert b"shard.slow" in report.schedule
        latency_alerts = [
            a for a in report.slo_alerts if a.kind == "latency"
        ]
        assert latency_alerts, (
            f"injected stalls (schedule {report.schedule!r}) did not "
            f"trip the latency objective; alerts={report.slo_alerts}"
        )
        alert = latency_alerts[0]
        assert alert.long_burn >= alert.factor
        assert alert.short_burn >= alert.factor

    def test_shard_kill_mid_query_annotates_failed_subtree(self):
        # Satellite: across >=3 seeded corpus runs where shard.kill
        # fired mid-query, the assembled trace tree's failed dispatch
        # subtree carries the *typed* error name and the fault site.
        annotated_runs = 0
        for seed in range(4000, 4030):
            report = run_chaos(seed, ops=14, shards=2)
            if b"shard.kill" not in report.schedule:
                continue
            failed = [
                span
                for root in telemetry.assemble(report.traces)
                for span in _walk(root)
                if span.name == "shard.dispatch" and span.error
            ]
            killed = [
                span
                for span in failed
                if span.attributes.get("fault_site") == "shard.kill"
            ]
            if not killed:
                continue
            for span in killed:
                assert span.error == "EnclaveCrashed"
                assert "shard" in span.attributes
            annotated_runs += 1
            if annotated_runs >= 3:
                break
        assert annotated_runs >= 3, (
            "fewer than 3 corpus runs produced a shard.kill-annotated "
            f"trace subtree (got {annotated_runs})"
        )


class TestDeterministicReplay:
    @pytest.mark.parametrize("seed", [4007, 4111, 4303])
    def test_sharded_fingerprints_are_byte_identical(self, seed):
        first = run_chaos(seed, ops=12, shards=2)
        second = run_chaos(seed, ops=12, shards=2)
        assert first.schedule == second.schedule
        assert first.fingerprint() == second.fingerprint()

    def test_legacy_single_shard_path_is_untouched(self):
        # shards=1 must stay byte-identical to the pre-sharding harness
        # (the default), so old seeds keep replaying exactly.
        assert (
            run_chaos(3, ops=10).fingerprint()
            == run_chaos(3, ops=10, shards=1).fingerprint()
        )

    def test_shards_and_replicas_compose(self):
        # Once mutually exclusive; now every shard fronts its own
        # Byzantine replica group, and composed runs replay like any
        # other seeded schedule.
        first = run_chaos(1, ops=6, shards=2, replicas=3)
        second = run_chaos(1, ops=6, shards=2, replicas=3)
        assert not first.silent_wrong
        assert first.schedule == second.schedule
        assert first.fingerprint() == second.fingerprint()

    def test_schedules_differ_across_seeds(self):
        schedules = {
            run_chaos(seed, ops=12, shards=2).schedule
            for seed in range(4000, 4012)
        }
        assert len(schedules) > 1
