"""Tests for the page model and access-log bookkeeping."""

import pytest

from repro.storage.pager import AccessEvent, AccessKind, AccessLog, Pager


class TestPager:
    def test_page_of(self):
        pager = Pager(rows_per_page=10)
        assert pager.page_of(0) == 0
        assert pager.page_of(9) == 0
        assert pager.page_of(10) == 1
        assert pager.page_of(99) == 9

    def test_negative_row_rejected(self):
        with pytest.raises(ValueError):
            Pager().page_of(-1)

    def test_page_count_grows(self):
        pager = Pager(rows_per_page=4)
        assert pager.page_count == 0
        pager.note_row(0)
        assert pager.page_count == 1
        pager.note_row(7)
        assert pager.page_count == 2
        pager.note_row(3)  # no shrink
        assert pager.page_count == 2


class TestAccessLog:
    def test_record_and_filter(self):
        log = AccessLog()
        log.record(AccessKind.ROW_READ, "t", 1)
        log.record(AccessKind.ROW_WRITE, "t", 2)
        assert len(log.events(AccessKind.ROW_READ)) == 1
        assert len(log) == 2

    def test_query_scoping(self):
        log = AccessLog()
        q1 = log.begin_query()
        log.record(AccessKind.ROW_READ, "t", 1)
        log.end_query()
        log.record(AccessKind.ROW_READ, "t", 2)  # unscoped
        assert log.rows_fetched(q1) == 1
        assert log.row_ids_fetched(q1) == [1]

    def test_query_ids_monotonic(self):
        log = AccessLog()
        ids = [log.begin_query() for _ in range(3)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_volumes_ignore_writes(self):
        log = AccessLog()
        q = log.begin_query()
        log.record(AccessKind.ROW_WRITE, "t", 1)
        log.record(AccessKind.ROW_READ, "t", 2)
        log.end_query()
        assert log.per_query_volumes() == {q: 1}

    def test_iteration_yields_events(self):
        log = AccessLog()
        log.record(AccessKind.TABLE_SCAN, "t")
        events = list(log)
        assert isinstance(events[0], AccessEvent)
        assert events[0].kind == AccessKind.TABLE_SCAN

    def test_clear_preserves_query_counter(self):
        log = AccessLog()
        first = log.begin_query()
        log.end_query()
        log.clear()
        second = log.begin_query()
        assert second > first
