"""Tests for engine checkpoint / restore."""

import pytest

from repro.exceptions import StorageError
from repro.storage import StorageEngine, checkpoint_engine, restore_engine


@pytest.fixture
def engine():
    engine = StorageEngine(btree_order=8)
    engine.create_table("t", ["k", "v"])
    engine.create_index("t", "k")
    for i in range(50):
        engine.insert("t", [bytes([i % 7]), i])
    engine.delete("t", 10)  # a tombstone survives the roundtrip
    return engine


class TestRoundtrip:
    def test_tables_and_rows_restored(self, engine, tmp_path):
        path = checkpoint_engine(engine, tmp_path / "snap.db")
        restored = restore_engine(path)
        assert restored.table_names() == ["t"]
        assert restored.row_count("t") == 49
        assert 10 not in restored._tables["t"]

    def test_indexes_rebuilt_and_queryable(self, engine, tmp_path):
        path = checkpoint_engine(engine, tmp_path / "snap.db")
        restored = restore_engine(path)
        original = sorted(r[1] for r in engine.lookup("t", "k", bytes([3])))
        recovered = sorted(r[1] for r in restored.lookup("t", "k", bytes([3])))
        assert recovered == original

    def test_row_ids_not_reused_after_restore(self, engine, tmp_path):
        path = checkpoint_engine(engine, tmp_path / "snap.db")
        restored = restore_engine(path)
        new_id = restored.insert("t", [b"z", 999])
        assert new_id == 50  # next_row_id preserved

    def test_access_log_not_persisted(self, engine, tmp_path):
        engine.lookup("t", "k", bytes([1]))
        path = checkpoint_engine(engine, tmp_path / "snap.db")
        restored = restore_engine(path)
        assert len(restored.access_log) == 0


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            restore_engine(tmp_path / "missing.db")

    def test_bad_version(self, engine, tmp_path):
        import pickle

        path = tmp_path / "bad.db"
        with open(path, "wb") as handle:
            pickle.dump({"version": 99}, handle)
        with pytest.raises(StorageError):
            restore_engine(path)


class TestServiceRestart:
    def test_concealer_service_survives_restart(self, tmp_path):
        """End to end: snapshot SP storage, restore, query correctly."""
        import random

        from repro import (
            DataProvider,
            GridSpec,
            PointQuery,
            ServiceProvider,
            WIFI_SCHEMA,
        )

        records = [(f"ap{i % 4}", (i * 60) % 600, f"d{i % 5}") for i in range(60)]
        spec = GridSpec(dimension_sizes=(4, 8), cell_id_count=16, epoch_duration=600)
        provider = DataProvider(
            WIFI_SCHEMA, spec, 0, master_key=b"\x71" * 32,
            time_granularity=60, rng=random.Random(5),
        )
        service = ServiceProvider(WIFI_SCHEMA)
        provider.provision_enclave(service.enclave)
        package = provider.encrypt_epoch(records, 0)
        service.ingest_epoch(package)

        path = checkpoint_engine(service.engine, tmp_path / "sp.db")

        # "Restart": new service process restores storage; the enclave is
        # re-provisioned (re-attestation) and metadata re-shipped.
        restarted = ServiceProvider(WIFI_SCHEMA, engine=restore_engine(path))
        provider2 = DataProvider(
            WIFI_SCHEMA, spec, 0, master_key=b"\x71" * 32, rng=random.Random(6)
        )
        provider2.provision_enclave(restarted.enclave)
        restarted._packages[0] = package  # metadata blob re-shipped

        location, timestamp, _ = records[0]
        answer, _ = restarted.execute_point(
            PointQuery(index_values=(location,), timestamp=timestamp),
            epoch_id=0,
        )
        expected = sum(
            1 for r in records if r[0] == location and r[1] == timestamp
        )
        assert answer == expected
