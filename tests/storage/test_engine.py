"""Tests for the storage engine façade and its access log."""

import pytest

from repro.exceptions import IndexNotFoundError, StorageError, TableNotFoundError
from repro.storage.engine import StorageEngine
from repro.storage.pager import AccessKind


@pytest.fixture
def engine():
    engine = StorageEngine(btree_order=8)
    engine.create_table("t", ["k", "v"])
    engine.create_index("t", "k")
    return engine


class TestDdl:
    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.create_table("t", ["x"])

    def test_missing_table_rejected(self, engine):
        with pytest.raises(TableNotFoundError):
            engine.insert("missing", [1, 2])

    def test_duplicate_index_rejected(self, engine):
        with pytest.raises(StorageError):
            engine.create_index("t", "k")

    def test_missing_index_rejected(self, engine):
        with pytest.raises(IndexNotFoundError):
            engine.lookup("t", "v", b"x")

    def test_index_over_existing_rows(self):
        engine = StorageEngine()
        engine.create_table("t", ["k"])
        for i in range(10):
            engine.insert("t", [i % 3])
        engine.create_index("t", "k")
        assert len(engine.lookup("t", "k", 0)) == 4

    def test_drop_table(self, engine):
        engine.drop_table("t")
        assert not engine.has_table("t")
        with pytest.raises(TableNotFoundError):
            engine.row_count("t")


class TestDml:
    def test_insert_lookup(self, engine):
        engine.insert("t", [b"alpha", 1])
        engine.insert("t", [b"alpha", 2])
        engine.insert("t", [b"beta", 3])
        assert sorted(r[1] for r in engine.lookup("t", "k", b"alpha")) == [1, 2]

    def test_lookup_many_preserves_request_order(self, engine):
        engine.insert("t", [b"a", 1])
        engine.insert("t", [b"b", 2])
        rows = engine.lookup_many("t", "k", [b"b", b"a"])
        assert [r[1] for r in rows] == [2, 1]

    def test_delete_removes_index_entry(self, engine):
        rid = engine.insert("t", [b"a", 1])
        engine.delete("t", rid)
        assert engine.lookup("t", "k", b"a") == []

    def test_overwrite_moves_index_entry(self, engine):
        rid = engine.insert("t", [b"a", 1])
        engine.overwrite("t", rid, [b"z", 9])
        assert engine.lookup("t", "k", b"a") == []
        assert engine.lookup("t", "k", b"z")[0][1] == 9

    def test_range_lookup(self, engine):
        for i in range(10):
            engine.insert("t", [bytes([i]), i])
        rows = engine.range_lookup("t", "k", bytes([3]), bytes([6]))
        assert sorted(r[1] for r in rows) == [3, 4, 5, 6]

    def test_scan(self, engine):
        for i in range(5):
            engine.insert("t", [bytes([i]), i])
        assert len(list(engine.scan("t"))) == 5

    def test_counters(self, engine):
        for i in range(7):
            engine.insert("t", [bytes([i % 2]), i])
        assert engine.row_count("t") == 7
        assert engine.index_size("t", "k") == 7


class TestAccessLog:
    def test_row_reads_logged_per_query(self, engine):
        for i in range(6):
            engine.insert("t", [b"k", i])
        qid = engine.access_log.begin_query()
        engine.lookup("t", "k", b"k")
        engine.access_log.end_query()
        assert engine.access_log.rows_fetched(qid) == 6

    def test_row_ids_fetched_are_physical_ids(self, engine):
        rid = engine.insert("t", [b"k", 0])
        qid = engine.access_log.begin_query()
        engine.lookup("t", "k", b"k")
        engine.access_log.end_query()
        assert engine.access_log.row_ids_fetched(qid) == [rid]

    def test_events_outside_query_scope_untagged(self, engine):
        engine.insert("t", [b"k", 0])
        engine.lookup("t", "k", b"k")
        reads = engine.access_log.events(AccessKind.ROW_READ)
        assert all(event.query_id is None for event in reads)

    def test_per_query_volumes(self, engine):
        for i in range(4):
            engine.insert("t", [b"a", i])
        engine.insert("t", [b"b", 9])
        q1 = engine.access_log.begin_query()
        engine.lookup("t", "k", b"a")
        engine.access_log.end_query()
        q2 = engine.access_log.begin_query()
        engine.lookup("t", "k", b"b")
        engine.access_log.end_query()
        volumes = engine.access_log.per_query_volumes()
        assert volumes[q1] == 4
        assert volumes[q2] == 1

    def test_index_lookup_detail_is_the_opaque_key(self, engine):
        engine.insert("t", [b"opaque-trapdoor", 0])
        engine.lookup("t", "k", b"opaque-trapdoor")
        lookups = engine.access_log.events(AccessKind.INDEX_LOOKUP)
        assert lookups[-1].detail == b"opaque-trapdoor"

    def test_page_reads_logged(self, engine):
        engine.insert("t", [b"k", 0])
        engine.lookup("t", "k", b"k")
        assert engine.access_log.events(AccessKind.PAGE_READ)

    def test_clear(self, engine):
        engine.insert("t", [b"k", 0])
        engine.access_log.clear()
        assert len(engine.access_log) == 0
