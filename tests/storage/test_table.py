"""Tests for the append-only row store."""

import pytest

from repro.exceptions import StorageError
from repro.storage.table import Table


@pytest.fixture
def table():
    return Table("t", ["a", "b"])


class TestSchema:
    def test_requires_columns(self):
        with pytest.raises(StorageError):
            Table("t", [])

    def test_column_index(self, table):
        assert table.column_index("a") == 0
        assert table.column_index("b") == 1

    def test_unknown_column(self, table):
        with pytest.raises(StorageError):
            table.column_index("zzz")

    def test_arity_enforced(self, table):
        with pytest.raises(StorageError):
            table.insert([1])
        with pytest.raises(StorageError):
            table.insert([1, 2, 3])


class TestCrud:
    def test_insert_assigns_sequential_ids(self, table):
        ids = [table.insert([i, i]) for i in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_fetch(self, table):
        rid = table.insert(["x", "y"])
        row = table.fetch(rid)
        assert row.columns == ("x", "y")
        assert row[0] == "x"
        assert len(row) == 2

    def test_fetch_missing(self, table):
        with pytest.raises(StorageError):
            table.fetch(99)

    def test_overwrite(self, table):
        rid = table.insert(["x", "y"])
        table.overwrite(rid, ["p", "q"])
        assert table.fetch(rid).columns == ("p", "q")

    def test_overwrite_missing(self, table):
        with pytest.raises(StorageError):
            table.overwrite(5, ["p", "q"])

    def test_overwrite_arity(self, table):
        rid = table.insert(["x", "y"])
        with pytest.raises(StorageError):
            table.overwrite(rid, ["p"])

    def test_delete_tombstones_without_reuse(self, table):
        rid = table.insert(["x", "y"])
        table.delete(rid)
        assert rid not in table
        new_rid = table.insert(["p", "q"])
        assert new_rid != rid

    def test_delete_missing(self, table):
        with pytest.raises(StorageError):
            table.delete(12)

    def test_scan_order_and_liveness(self, table):
        ids = [table.insert([i, i]) for i in range(4)]
        table.delete(ids[1])
        assert [row.row_id for row in table.scan()] == [0, 2, 3]
        assert len(table) == 3
