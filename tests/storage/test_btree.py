"""Unit and property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.btree import BPlusTree


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree(order=4)
        assert tree.get(1) == []
        assert not tree.contains(1)
        assert len(tree) == 0
        assert tree.height() == 1

    def test_single_insert(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "v")
        assert tree.get(5) == ["v"]
        assert tree.contains(5)
        assert len(tree) == 1

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.get(5) == ["a", "b"]
        assert len(tree) == 2

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_bytes_keys(self):
        tree = BPlusTree(order=4)
        tree.insert(b"\x01", 1)
        tree.insert(b"\xff", 2)
        assert tree.get(b"\x01") == [1]
        assert [k for k, _ in tree.items()] == [b"\x01", b"\xff"]


class TestSplits:
    def test_many_inserts_sorted_items(self):
        tree = BPlusTree(order=4)
        keys = list(range(100))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(key, f"v{key}")
        assert [k for k, _ in tree.items()] == list(range(100))
        assert tree.height() > 1

    def test_all_values_retrievable_after_splits(self):
        tree = BPlusTree(order=4)
        for key in range(500):
            tree.insert(key, key * 2)
        for key in range(500):
            assert tree.get(key) == [key * 2]

    def test_reverse_insert_order(self):
        tree = BPlusTree(order=3)
        for key in reversed(range(200)):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(200))

    def test_node_reads_logarithmic(self):
        tree = BPlusTree(order=16)
        for key in range(10_000):
            tree.insert(key, key)
        before = tree.node_reads
        tree.get(5000)
        cost = tree.node_reads - before
        assert cost <= tree.height()


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys only
            tree.insert(key, key)
        return tree

    def test_inclusive_bounds(self, tree):
        assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self, tree):
        assert [k for k, _ in tree.range(11, 19)] == [12, 14, 16, 18]

    def test_empty_range(self, tree):
        assert list(tree.range(11, 11)) == []

    def test_full_range(self, tree):
        assert len(list(tree.range(-10, 1000))) == 50

    def test_range_values_correct(self, tree):
        for key, values in tree.range(0, 98):
            assert values == [key]


class TestDelete:
    def test_delete_single_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a") == 1
        assert tree.get(1) == ["b"]

    def test_delete_all_values_under_key(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1) == 2
        assert tree.get(1) == []
        assert len(tree) == 0

    def test_delete_missing_key(self):
        tree = BPlusTree(order=4)
        assert tree.delete(42) == 0

    def test_delete_missing_value(self):
        tree = BPlusTree(order=4)
        tree.insert(1, "a")
        assert tree.delete(1, "zzz") == 0
        assert tree.get(1) == ["a"]

    def test_delete_then_reinsert(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        for key in range(0, 50, 2):
            tree.delete(key)
        for key in range(0, 50, 2):
            tree.insert(key, -key)
        for key in range(50):
            expected = [-key] if key % 2 == 0 and key else [key] if key % 2 else [0]
            assert tree.get(key) == expected


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300))
    def test_items_always_sorted(self, keys):
        tree = BPlusTree(order=5)
        for key in keys:
            tree.insert(key, key)
        listed = [k for k, _ in tree.items()]
        assert listed == sorted(set(keys))
        assert len(tree) == len(keys)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=200),
        st.data(),
    )
    def test_lookup_matches_reference_dict(self, keys, data):
        tree = BPlusTree(order=4)
        reference: dict[bytes, list[int]] = {}
        for index, key in enumerate(keys):
            tree.insert(key, index)
            reference.setdefault(key, []).append(index)
        probe = data.draw(st.sampled_from(keys))
        assert tree.get(probe) == reference[probe]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=100), st.data())
    def test_range_matches_reference(self, keys, data):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key, key)
        low = data.draw(st.integers(-5, 105))
        high = data.draw(st.integers(low, 110))
        got = [k for k, _ in tree.range(low, high)]
        expected = sorted({k for k in keys if low <= k <= high})
        assert got == expected
