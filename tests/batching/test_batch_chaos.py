"""Chaos coverage for the batched path: faults mid-batch, zero lies.

The chaos workload includes a ``batch`` operation (overlapping point
probes plus a multipoint range through ``execute_batch``) and runs the
service with the bin cache enabled, so every schedule exercises
fault-during-prefetch, fault-during-cache-fill, and cache invalidation
across enclave crashes and checkpoint restores.  The invariant is the
corpus-wide one: oracle answer or typed error, never a silent lie —
and every run replays byte-identically from its seed.
"""

from __future__ import annotations

import pytest

from repro.faults.chaos import run_chaos
from tests.faults.test_chaos import (
    aggressive_specs,
    assert_never_silently_wrong,
    tamper_specs,
)

pytestmark = pytest.mark.chaos


class TestBatchedChaos:
    @pytest.mark.parametrize("seed", range(300, 340))
    def test_single_engine_batches_never_lie(self, seed):
        report = run_chaos(seed, ops=10, specs=aggressive_specs())
        assert_never_silently_wrong(report)

    @pytest.mark.parametrize("seed", range(340, 360))
    def test_tampered_batches_fail_loudly(self, seed):
        report = run_chaos(seed, ops=8, specs=tamper_specs())
        assert_never_silently_wrong(report)
        for outcome in report.outcomes:
            if outcome.op == "batch" and outcome.error is not None:
                assert outcome.error in (
                    "IntegrityViolation",
                    "TransientStorageError",
                    "StorageUnavailable",
                    "EnclaveCrashed",
                    "DeadlineExceeded",
                )

    @pytest.mark.parametrize("seed", range(360, 372))
    def test_replicated_batches_never_lie(self, seed):
        report = run_chaos(seed, ops=8, replicas=3)
        assert_never_silently_wrong(report)


class TestBatchCoverage:
    def test_batch_ops_actually_run_and_mostly_succeed(self):
        reports = [run_chaos(seed, ops=12) for seed in range(300, 320)]
        batches = [
            o for r in reports for o in r.outcomes if o.op == "batch"
        ]
        assert len(batches) >= 10, "corpus never drew the batch op"
        ok = sum(o.ok for o in batches)
        assert ok > 0, "no batch ever succeeded under faults"
        # Batch answers are list-valued; a successful one matched the
        # oracle element-for-element.
        for outcome in batches:
            if outcome.ok:
                assert isinstance(outcome.answer, list)

    def test_batches_replay_deterministically(self):
        for seed in (303, 311):
            first = run_chaos(seed, ops=12)
            second = run_chaos(seed, ops=12)
            assert first.schedule == second.schedule
            assert first.fingerprint() == second.fingerprint()
