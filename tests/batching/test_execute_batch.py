"""End-to-end tests for the batched query engine.

The acceptance bar from the issue: a batched workload whose queries
overlap in ≥4× of their bins performs at least 2× fewer storage reads
than running the same queries sequentially — with byte-identical
answers, because batching only changes *where* whole bins come from
(the shared overlay), never what a query computes from them.
"""

import random

import pytest

from repro import GridSpec
from repro.core.queries import PointQuery, RangeQuery
from repro.core.registry import unseal_answer
from repro.exceptions import EpochError, QueryError
from repro.telemetry import audit_run
from tests.conftest import TIME_STEP, ground_truth_count, make_stack

EPOCH_DURATION = 3600
SPEC = GridSpec(
    dimension_sizes=(4, 12), cell_id_count=24, epoch_duration=EPOCH_DURATION
)
LOCATIONS = [f"ap{i}" for i in range(4)]


def _records(seed=5):
    rng = random.Random(seed)
    return [
        (LOCATIONS[rng.randrange(4)], t, f"dev{d}")
        for t in range(0, EPOCH_DURATION, TIME_STEP)
        for d in range(8)
    ]


def _overlapping_queries(records, probes=4, repeats=4):
    """``probes`` distinct point probes, each asked ``repeats`` times —
    a ≥``repeats``× bin-overlap workload by construction."""
    rng = random.Random(11)
    chosen = []
    seen = set()
    while len(chosen) < probes:
        location, timestamp, _ = records[rng.randrange(len(records))]
        if (location, timestamp) in seen:
            continue
        seen.add((location, timestamp))
        chosen.append((location, timestamp))
    return [
        PointQuery(index_values=(location,), timestamp=timestamp)
        for _ in range(repeats)
        for location, timestamp in chosen
    ]


RECORDS = _records()
READS = "concealer_storage_rows_read_total"


class TestDedup:
    @pytest.mark.parametrize("verify", [False, True])
    def test_4x_overlap_halves_storage_reads(self, verify):
        queries = _overlapping_queries(RECORDS, probes=4, repeats=4)

        def sequential():
            _, service = make_stack(SPEC, RECORDS, verify=verify)
            return [service.execute_point(q)[0] for q in queries]

        def batched():
            _, service = make_stack(SPEC, RECORDS, verify=verify)
            return [a for a, _ in service.execute_batch(queries)]

        seq = audit_run(sequential)
        bat = audit_run(batched)
        assert bat.result == seq.result  # byte-identical answers
        seq_reads = seq.registry.total(READS)
        bat_reads = bat.registry.total(READS)
        assert bat_reads * 2 <= seq_reads, (
            f"batched={bat_reads} sequential={seq_reads}"
        )

    def test_plan_reports_the_dedup_factor(self):
        _, service = make_stack(SPEC, RECORDS)
        from repro.batching import QueryBatcher

        plan = QueryBatcher(service).plan(
            _overlapping_queries(RECORDS, probes=2, repeats=4)
        )
        assert len(plan.items) == 8
        assert plan.bin_references >= len(plan.units) * 4
        assert plan.dedup_factor >= 4.0


class TestAnswers:
    def test_mixed_batch_matches_oracle_and_order(self):
        _, service = make_stack(SPEC, RECORDS, verify=True)
        location, timestamp, _ = RECORDS[10]
        queries = [
            PointQuery(index_values=(location,), timestamp=timestamp),
            (
                RangeQuery(
                    index_values=(location,), time_start=0, time_end=600
                ),
                "multipoint",
            ),
            PointQuery(index_values=(location,), timestamp=timestamp),
            (
                RangeQuery(
                    index_values=(location,), time_start=0, time_end=600
                ),
                "ebpb",
            ),
        ]
        results = service.execute_batch(queries)
        assert len(results) == len(queries)
        point_truth = ground_truth_count(
            RECORDS, location=location, t0=timestamp, t1=timestamp
        )
        range_truth = ground_truth_count(RECORDS, location=location, t0=0, t1=600)
        answers = [a for a, _ in results]
        assert answers == [point_truth, range_truth, point_truth, range_truth]
        for _, stats in results:
            assert stats.verified

    def test_batch_answers_equal_sequential_for_every_method(self):
        _, service = make_stack(SPEC, RECORDS, verify=True)
        location = LOCATIONS[1]
        ranged = RangeQuery(index_values=(location,), time_start=0, time_end=900)
        for method in ("multipoint", "ebpb", "winsecrange"):
            solo, _ = service.execute_range(ranged, method=method)
            (batched, _), = service.execute_batch([(ranged, method)])
            assert batched == solo

    def test_empty_batch(self):
        _, service = make_stack(SPEC, RECORDS)
        assert service.execute_batch([]) == []

    def test_epoch_spanning_range_is_rejected(self):
        _, service = make_stack(SPEC, RECORDS)
        with pytest.raises(QueryError, match="spans multiple epochs"):
            service.execute_batch(
                [
                    (
                        RangeQuery(
                            index_values=(LOCATIONS[0],),
                            time_start=EPOCH_DURATION - 600,
                            time_end=EPOCH_DURATION + 600,
                        ),
                        "multipoint",
                    )
                ]
            )

    def test_never_ingested_epoch_fails_loudly(self):
        _, service = make_stack(SPEC, RECORDS)
        location, timestamp, _ = RECORDS[0]
        with pytest.raises(EpochError):
            service.execute_batch(
                [
                    PointQuery(
                        index_values=(location,),
                        timestamp=timestamp + EPOCH_DURATION,
                    )
                ]
            )

    def test_unknown_method_is_rejected(self):
        _, service = make_stack(SPEC, RECORDS)
        ranged = RangeQuery(index_values=(LOCATIONS[0],), time_start=0, time_end=60)
        with pytest.raises(QueryError):
            service.execute_batch([(ranged, "bogus")])


class TestSealedBatch:
    def test_every_answer_sealed_for_the_user(self, grid_spec):
        provider, service = make_stack(SPEC, RECORDS)
        credential = provider.register_user("alice")
        service.install_registry(provider.sealed_registry())
        challenge = service.challenge()
        entry = service.authenticate(
            credential, challenge, credential.answer_challenge(challenge)
        )
        location, timestamp, _ = RECORDS[3]
        queries = _overlapping_queries(RECORDS, probes=2, repeats=2)
        sealed = service.execute_batch_sealed(queries, entry)
        assert len(sealed) == len(queries)
        for (blob, _), query in zip(sealed, queries):
            truth = ground_truth_count(
                RECORDS,
                location=query.index_values[0],
                t0=query.timestamp,
                t1=query.timestamp,
            )
            assert unseal_answer(credential.secret, blob) == truth


class TestWorkers:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_count_does_not_change_answers(self, workers):
        queries = _overlapping_queries(RECORDS, probes=3, repeats=3)
        _, service = make_stack(
            SPEC, RECORDS, verify=True, batch_workers=workers
        )
        answers = [a for a, _ in service.execute_batch(queries)]
        for query, answer in zip(queries, answers):
            assert answer == ground_truth_count(
                RECORDS,
                location=query.index_values[0],
                t0=query.timestamp,
                t1=query.timestamp,
            )
