"""Leakage audit: the aggregate-tree path adds no data channel.

The tree answers long-window aggregates from O(log range) fixed-width
encrypted nodes instead of whole bins, but every host-visible quantity
must remain a pure function of public inputs — the query's time span,
the grid spec, and the epoch's sealed (public) tree shape.  Three
claims:

1. **Across datasets** — two datasets of equal public size (identical
   (location, timestamp) multisets, disjoint devices) produce
   byte-identical public-size metric views under a cold-then-warm
   tree workload, absent combinations included (decoy entities make an
   empty combination fetch the same node count as a full one).
2. **Tree families are public** — the node-fetch and planner-decision
   counters sit in the public view: they may be disclosed to the host
   without weakening Theorem 4.1's volume-hiding argument.
3. **Cold vs warm tree cache** — cache state changes only public-size
   families (hits, misses, storage reads); the per-query node-fetch
   count and every data-dependent family are untouched.
"""

from repro import GridSpec
from repro.core.queries import Aggregate, RangeQuery
from repro.telemetry import assert_equal_public_view, audit_run, public_view
from tests.conftest import make_stack

EPOCH_DURATION = 600
LOCATIONS = tuple(f"ap{i}" for i in range(4))
# Prefix 8 ≥ 4 combinations, so every epoch ships a tree; 10 time
# buckets of 60 s match the record timestamps exactly.
SPEC = GridSpec(
    dimension_sizes=(8, 10), cell_id_count=16, epoch_duration=EPOCH_DURATION
)


def _records(prefix):
    """Equal-public-size datasets: only device names vary with prefix."""
    return [
        (LOCATIONS[(t // 60 + d) % 4], t, f"{prefix}{d}")
        for t in range(0, EPOCH_DURATION, 60)
        for d in range(6)
    ]


def _tree_mix(service):
    """One pass of the audit workload: long windows (auto picks the
    tree), a pinned tree query, and an absent combination."""
    long_window = RangeQuery(
        index_values=("ap1",), time_start=0, time_end=EPOCH_DURATION - 1
    )
    summed = RangeQuery(
        index_values=("ap2",),
        time_start=0,
        time_end=539,
        aggregate=Aggregate.SUM,
        target="time",
    )
    absent = RangeQuery(
        index_values=("ap-absent",), time_start=0, time_end=EPOCH_DURATION - 1
    )
    answers = [service.execute_range(long_window, method="auto")[0]]
    answers.append(service.execute_range(summed, method="tree")[0])
    answers.append(service.execute_range(absent, method="tree")[0])
    return answers


def _cold_then_warm(records):
    """The same tree mix twice against one cached, verifying service."""

    def run():
        _, service = make_stack(SPEC, records, verify=True, bin_cache_bins=16)
        answers = []
        for _ in range(2):  # pass 1 cold, pass 2 warm
            answers.extend(_tree_mix(service))
        return answers

    return run


class TestEqualPublicSizeDatasets:
    def test_tree_views_identical_across_device_disjoint_datasets(self):
        report_a = audit_run(_cold_then_warm(_records("A")))
        report_b = audit_run(_cold_then_warm(_records("B")))
        assert report_a.result == report_b.result
        assert_equal_public_view(report_a, report_b)

    def test_tree_families_are_public_size(self):
        report = audit_run(_cold_then_warm(_records("A")))
        view = public_view(report.registry)
        for family in (
            "concealer_tree_nodes_fetched_total",
            "concealer_planner_decisions_total",
        ):
            assert family in view, family
            assert report.registry.total(family) > 0, family


class TestColdVersusWarmTreeCache:
    def test_warm_tree_run_differs_only_in_public_size_families(self):
        records = _records("A")

        def once(cache_bins):
            def run():
                _, service = make_stack(
                    SPEC, records, verify=True, bin_cache_bins=cache_bins
                )
                return [_tree_mix(service) for _ in range(3)]

            return run

        cold = audit_run(once(cache_bins=0))
        warm = audit_run(once(cache_bins=16))
        assert cold.result == warm.result
        # The executor counts nodes per query before consulting the
        # cache, so the fetch count is cache-state independent …
        assert cold.registry.total(
            "concealer_tree_nodes_fetched_total"
        ) == warm.registry.total("concealer_tree_nodes_fetched_total")
        # … while the cache absorbs actual storage reads.
        assert (
            warm.registry.total("concealer_storage_rows_read_total")
            < cold.registry.total("concealer_storage_rows_read_total")
        )
        for family in (
            "concealer_rows_matched_total",
            "concealer_rows_decrypted_total",
        ):
            assert _private_total(cold, family) == _private_total(warm, family)


def _private_total(report, family):
    """Total of a family that must stay out of the public view."""
    if report.registry.get(family) is None:
        return None
    assert family not in public_view(report.registry)
    return report.registry.total(family)
