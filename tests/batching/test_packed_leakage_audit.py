"""Leakage audit: the packed (columnar) path adds no data channel.

The packed layout changes *how* bins transit the pipeline — contiguous
byte arrays, batched kernels, bin-granular cache entries — but every
host-visible quantity must remain exactly the public function of bin
membership it was on the scalar path.  Three claims:

1. **Across datasets** — two datasets of equal public size (identical
   (location, timestamp) multisets, disjoint devices) produce
   byte-identical public-size metric views under a cold-then-warm
   packed-cache workload.
2. **Cold vs warm packed cache** — cache state changes only
   public-size families (hits, misses, storage reads); every
   data-dependent family is untouched.
3. **Packed vs scalar** — for one dataset and one query mix, the two
   paths' public views agree on the volume-hiding core: storage rows
   read and trapdoors derived.
"""

from repro import GridSpec
from repro.core.queries import PointQuery, RangeQuery
from repro.telemetry import assert_equal_public_view, audit_run, public_view
from tests.conftest import make_stack

EPOCH_DURATION = 600
LOCATIONS = tuple(f"ap{i}" for i in range(4))
SPEC = GridSpec(
    dimension_sizes=(4, 10), cell_id_count=16, epoch_duration=EPOCH_DURATION
)


def _records(prefix):
    """Equal-public-size datasets: only device names vary with prefix."""
    return [
        (LOCATIONS[(t // 60 + d) % 4], t, f"{prefix}{d}")
        for t in range(0, EPOCH_DURATION, 60)
        for d in range(6)
    ]


def _cold_then_warm(records):
    """The same query mix twice against one packed, cached service."""

    def run():
        _, service = make_stack(
            SPEC, records, verify=True, bin_cache_bins=16, packed_bins=True
        )
        queries = [
            PointQuery(index_values=("ap0",), timestamp=60),
            PointQuery(index_values=("ap2",), timestamp=120),
        ]
        ranged = RangeQuery(index_values=("ap1",), time_start=0, time_end=240)
        answers = []
        for _ in range(2):  # pass 1 cold, pass 2 warm
            answers.extend(service.execute_point(q)[0] for q in queries)
            answers.append(
                service.execute_range(ranged, method="multipoint")[0]
            )
        return answers

    return run


class TestEqualPublicSizeDatasets:
    def test_packed_views_identical_across_device_disjoint_datasets(self):
        report_a = audit_run(_cold_then_warm(_records("A")))
        report_b = audit_run(_cold_then_warm(_records("B")))
        assert report_a.result == report_b.result
        assert_equal_public_view(report_a, report_b)


class TestColdVersusWarmPackedCache:
    def test_warm_packed_run_differs_only_in_public_size_families(self):
        records = _records("A")

        def once(cache_bins):
            def run():
                _, service = make_stack(
                    SPEC,
                    records,
                    verify=True,
                    bin_cache_bins=cache_bins,
                    packed_bins=True,
                )
                return [
                    service.execute_point(
                        PointQuery(index_values=("ap0",), timestamp=60)
                    )[0]
                    for _ in range(3)
                ]

            return run

        cold = audit_run(once(cache_bins=0))
        warm = audit_run(once(cache_bins=16))
        assert cold.result == warm.result
        assert (
            warm.registry.total("concealer_storage_rows_read_total")
            < cold.registry.total("concealer_storage_rows_read_total")
        )
        # Packed-cache state moves host-visible volume accounting only;
        # every data-dependent family is identical across cache states.
        for family in (
            "concealer_rows_matched_total",
            "concealer_rows_decrypted_total",
        ):
            cold_total = _private_total(cold, family)
            warm_total = _private_total(warm, family)
            assert cold_total == warm_total


class TestPackedVersusScalar:
    def test_volume_hiding_core_is_path_independent(self):
        records = _records("A")

        def once(packed):
            def run():
                _, service = make_stack(
                    SPEC, records, verify=True, packed_bins=packed
                )
                queries = [
                    PointQuery(index_values=("ap0",), timestamp=60),
                    PointQuery(index_values=("ap3",), timestamp=300),
                ]
                return [service.execute_point(q)[0] for q in queries]

            return run

        scalar = audit_run(once(packed=False))
        packed = audit_run(once(packed=True))
        assert scalar.result == packed.result
        for family in (
            "concealer_storage_rows_read_total",
            "concealer_trapdoors_generated_total",
            "concealer_tuples_fetched_total",
        ):
            if scalar.registry.get(family) is None:
                continue
            assert scalar.registry.total(family) == packed.registry.total(
                family
            ), family


def _private_total(report, family):
    """Total of a family that must stay out of the public view."""
    if report.registry.get(family) is None:
        return None
    assert family not in public_view(report.registry)
    return report.registry.total(family)
